//! Reinsurance contracts.

use serde::{Deserialize, Serialize};

use catrisk_finterms::terms::LayerTerms;
use catrisk_finterms::treaty::Treaty;

/// Identifier of a contract within a portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContractId(pub u32);

impl std::fmt::Display for ContractId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A reinsurance contract: a treaty written over a set of exposure ELTs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contract {
    /// Identifier of the contract.
    pub id: ContractId,
    /// Cedant / programme name.
    pub name: String,
    /// The treaty structure (Cat XL, Aggregate XL, ...).
    pub treaty: Treaty,
    /// Indices of the covered ELTs within the portfolio's ELT list.
    pub elt_indices: Vec<usize>,
    /// Share of the layer written by this reinsurer, in `[0, 1]`.
    pub written_share: f64,
    /// Annual premium charged for the written share.
    pub premium: f64,
}

impl Contract {
    /// Creates a contract with 100% share and zero premium (to be priced).
    pub fn new(
        id: ContractId,
        name: impl Into<String>,
        treaty: Treaty,
        elt_indices: Vec<usize>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            treaty,
            elt_indices,
            written_share: 1.0,
            premium: 0.0,
        }
    }

    /// Sets the written share.
    pub fn with_share(mut self, share: f64) -> Self {
        self.written_share = share;
        self
    }

    /// Sets the premium.
    pub fn with_premium(mut self, premium: f64) -> Self {
        self.premium = premium;
        self
    }

    /// The layer terms implied by the treaty.
    pub fn layer_terms(&self) -> LayerTerms {
        self.treaty.layer_terms()
    }

    /// Validates the contract against the number of available ELTs.
    pub fn validate(&self, available_elts: usize) -> crate::Result<()> {
        self.treaty
            .validate()
            .map_err(|e| crate::PortfolioError::Invalid(format!("{}: {e}", self.id)))?;
        if self.elt_indices.is_empty() {
            return Err(crate::PortfolioError::Invalid(format!(
                "{}: no covered ELTs",
                self.id
            )));
        }
        if let Some(&bad) = self.elt_indices.iter().find(|&&i| i >= available_elts) {
            return Err(crate::PortfolioError::Invalid(format!(
                "{}: ELT index {bad} out of range ({available_elts} available)",
                self.id
            )));
        }
        if !(0.0..=1.0).contains(&self.written_share) {
            return Err(crate::PortfolioError::Invalid(format!(
                "{}: written share {} outside [0, 1]",
                self.id, self.written_share
            )));
        }
        if !(self.premium.is_finite() && self.premium >= 0.0) {
            return Err(crate::PortfolioError::Invalid(format!(
                "{}: premium {} must be non-negative",
                self.id, self.premium
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contract() -> Contract {
        Contract::new(
            ContractId(1),
            "Gulf Wind 2012",
            Treaty::cat_xl(10.0e6, 40.0e6),
            vec![0, 1, 2],
        )
        .with_share(0.25)
        .with_premium(3.0e6)
    }

    #[test]
    fn construction_and_terms() {
        let c = contract();
        assert_eq!(c.id.to_string(), "C1");
        assert_eq!(c.written_share, 0.25);
        assert_eq!(c.premium, 3.0e6);
        assert_eq!(c.layer_terms().occ_retention, 10.0e6);
        assert_eq!(c.layer_terms().occ_limit, 40.0e6);
        c.validate(3).unwrap();
    }

    #[test]
    fn validation_failures() {
        assert!(contract().validate(2).is_err(), "ELT index out of range");
        let mut c = contract();
        c.elt_indices.clear();
        assert!(c.validate(5).is_err());
        let mut c = contract();
        c.written_share = 1.5;
        assert!(c.validate(5).is_err());
        let mut c = contract();
        c.premium = f64::NAN;
        assert!(c.validate(5).is_err());
        let mut c = contract();
        c.treaty = Treaty::cat_xl(-1.0, 1.0);
        assert!(c.validate(5).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = contract();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Contract>(&json).unwrap(), c);
    }
}
