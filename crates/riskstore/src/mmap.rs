//! Raw `mmap(2)` bindings for the reader's column region.
//!
//! The build environment vendors no `libc`/`memmap2` crates, so the two
//! syscalls the reader needs are declared here directly.  Everything
//! unsafe about mapping files lives in this module; the safety *contract*
//! the rest of the crate relies on (append-only committed bytes, bounds
//! and alignment validated before any slice is handed out) is documented
//! on [`MapExtent`] and enforced by its API.
//!
//! Platform support: shared read-only maps are implemented for Linux and
//! macOS little-endian hosts.  Elsewhere [`MapExtent::map`] returns
//! `Unsupported` and the reader falls back to its heap-loaded region —
//! the on-disk format is little-endian, so a big-endian host must copy
//! and byte-swap anyway.

use std::fs::File;
use std::io;

/// Whether this build can serve [`MapExtent`]s at all.
pub(crate) const fn supported() -> bool {
    cfg!(all(
        unix,
        target_endian = "little",
        any(target_os = "linux", target_os = "macos")
    ))
}

#[cfg(all(
    unix,
    target_endian = "little",
    any(target_os = "linux", target_os = "macos")
))]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn sysconf(name: i32) -> i64;
    }

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 0x01;
    #[cfg(target_os = "linux")]
    const SC_PAGESIZE: i32 = 30;
    #[cfg(target_os = "macos")]
    const SC_PAGESIZE: i32 = 29;

    /// The system page size (cached; mmap offsets must be multiples of it).
    pub fn page_size() -> u64 {
        static PAGE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        *PAGE.get_or_init(|| {
            // SAFETY: sysconf takes an integer selector and returns -1 on
            // error; it touches no caller memory.
            let raw = unsafe { sysconf(SC_PAGESIZE) };
            if raw > 0 {
                raw as u64
            } else {
                4096
            }
        })
    }

    /// An owned read-only shared mapping of a file range.
    #[derive(Debug)]
    pub struct RawMap {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ) and owned; it can be
    // read from any thread, and unmapping happens exactly once on drop.
    unsafe impl Send for RawMap {}
    unsafe impl Sync for RawMap {}

    impl RawMap {
        /// Maps `len` bytes of `file` starting at the page-aligned
        /// `offset` as a read-only shared mapping.
        pub fn map(file: &File, offset: u64, len: usize) -> io::Result<RawMap> {
            debug_assert_eq!(offset % page_size(), 0, "mmap offset must be page-aligned");
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map zero bytes",
                ));
            }
            // SAFETY: fd is a valid open file descriptor for the lifetime
            // of this call (mmap keeps the mapping alive past close), the
            // offset is page-aligned, and we request a fresh read-only
            // shared mapping at a kernel-chosen address.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    offset as i64,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(RawMap {
                ptr: ptr.cast::<u8>(),
                len,
            })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live mapping we own; the mapping
            // is read-only and stays valid until drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }

        /// Mapped length in bytes.
        pub fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

#[cfg(not(all(
    unix,
    target_endian = "little",
    any(target_os = "linux", target_os = "macos")
)))]
mod sys {
    use std::fs::File;
    use std::io;

    pub fn page_size() -> u64 {
        4096
    }

    /// Stub on platforms without shared-map support; never constructed.
    #[derive(Debug)]
    pub struct RawMap {}

    impl RawMap {
        pub fn map(_file: &File, _offset: u64, _len: usize) -> io::Result<RawMap> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap-backed store regions are not supported on this platform",
            ))
        }

        pub fn as_slice(&self) -> &[u8] {
            &[]
        }

        pub fn len(&self) -> usize {
            0
        }
    }
}

/// One read-only shared mapping covering a file byte range, addressed by
/// *absolute file offsets*.
///
/// ## Safety contract (why handing out `&[u8]` from a shared map is sound)
///
/// A `MapExtent` only ever covers bytes inside the *committed* prefix of a
/// store file, and the commit protocol (crate docs) guarantees committed
/// bytes are append-only: a well-behaved writer never rewrites or
/// truncates them, so the bytes behind the mapping are stable for the
/// extent's lifetime and a `&[u8]` view is as immutable as a heap buffer.
/// The two ways an external process can violate that contract are:
///
/// * **Replacement** (new inode at the same path): invisible to a live
///   mapping — the old inode stays alive until unmapped, so existing
///   slices keep serving the old committed bytes.  Refresh detects the
///   divergence through the header/footer fingerprint and reloads.
/// * **In-place truncation or rewrite** (same inode): truncation below a
///   mapped offset makes later page faults deliver `SIGBUS`; a rewrite
///   silently changes bytes under the map.  Neither can be fully guarded
///   against from userspace, but both are detectable at refresh time —
///   the reader probes the committed length (header + file size) before
///   trusting or extending any mapping and surfaces a typed
///   [`StoreError`](crate::StoreError) instead of faulting wherever the
///   violation is visible in metadata.  CRC verification at map time
///   faults every page in while the bounds just probed still hold.
pub(crate) struct MapExtent {
    map: sys::RawMap,
    /// Absolute file offset of the first mapped byte (page-aligned).
    file_start: u64,
}

impl std::fmt::Debug for MapExtent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapExtent")
            .field("file_start", &self.file_start)
            .field("len", &self.map.len())
            .finish()
    }
}

impl MapExtent {
    /// Maps the file range `[start, end)` (absolute offsets), widening
    /// the start down to a page boundary as `mmap` requires.  The caller
    /// must have validated `end <= file length`.
    pub fn map(file: &File, start: u64, end: u64) -> io::Result<MapExtent> {
        let page = sys::page_size();
        let file_start = start - (start % page);
        let len = usize::try_from(end - file_start)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "map range too large"))?;
        Ok(MapExtent {
            map: sys::RawMap::map(file, file_start, len)?,
            file_start,
        })
    }

    /// The mapped bytes at absolute file offsets `[offset, offset + len)`,
    /// or `None` when the range falls outside this extent.
    pub fn slice(&self, offset: u64, len: usize) -> Option<&[u8]> {
        let start = usize::try_from(offset.checked_sub(self.file_start)?).ok()?;
        let end = start.checked_add(len)?;
        self.map.as_slice().get(start..end)
    }

    /// Mapped length in bytes (address space, not necessarily resident).
    pub fn len(&self) -> usize {
        self.map.len()
    }
}
