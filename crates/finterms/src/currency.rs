//! Currencies and exchange-rate tables.
//!
//! Each ELT carries metadata "including information about currency exchange
//! rates ... applied at the level of each individual event loss" (paper
//! §II.A).  The engine therefore converts every looked-up loss into the
//! analysis base currency by multiplying with the ELT's exchange rate.

use serde::{Deserialize, Serialize};

/// ISO-4217-style currency identifier for the currencies commonly seen in
/// catastrophe reinsurance programmes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Currency {
    /// United States dollar (the conventional base currency).
    Usd,
    /// Euro.
    Eur,
    /// Pound sterling.
    Gbp,
    /// Japanese yen.
    Jpy,
    /// Canadian dollar.
    Cad,
    /// Australian dollar.
    Aud,
    /// Swiss franc.
    Chf,
}

impl Currency {
    /// All supported currencies.
    pub const ALL: [Currency; 7] = [
        Currency::Usd,
        Currency::Eur,
        Currency::Gbp,
        Currency::Jpy,
        Currency::Cad,
        Currency::Aud,
        Currency::Chf,
    ];

    /// Three-letter code.
    pub fn code(&self) -> &'static str {
        match self {
            Currency::Usd => "USD",
            Currency::Eur => "EUR",
            Currency::Gbp => "GBP",
            Currency::Jpy => "JPY",
            Currency::Cad => "CAD",
            Currency::Aud => "AUD",
            Currency::Chf => "CHF",
        }
    }
}

impl std::fmt::Display for Currency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A table of exchange rates into a base currency.
///
/// `rate(c)` is the multiplier converting an amount denominated in `c` into
/// the base currency: `amount_base = amount_c * rate(c)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeRates {
    base: Currency,
    rates: Vec<(Currency, f64)>,
}

impl ExchangeRates {
    /// Creates an empty table with the given base currency (rate 1.0).
    pub fn new(base: Currency) -> Self {
        Self {
            base,
            rates: vec![(base, 1.0)],
        }
    }

    /// A representative USD-based table useful for tests and synthetic data.
    pub fn representative() -> Self {
        let mut t = Self::new(Currency::Usd);
        t.set(Currency::Eur, 1.08);
        t.set(Currency::Gbp, 1.27);
        t.set(Currency::Jpy, 0.0065);
        t.set(Currency::Cad, 0.73);
        t.set(Currency::Aud, 0.66);
        t.set(Currency::Chf, 1.12);
        t
    }

    /// Base currency of this table.
    pub fn base(&self) -> Currency {
        self.base
    }

    /// Sets (or replaces) the rate converting `currency` into the base.
    pub fn set(&mut self, currency: Currency, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exchange rate must be positive"
        );
        if let Some(slot) = self.rates.iter_mut().find(|(c, _)| *c == currency) {
            slot.1 = rate;
        } else {
            self.rates.push((currency, rate));
        }
    }

    /// Returns the rate converting `currency` into the base, if known.
    pub fn rate(&self, currency: Currency) -> Option<f64> {
        self.rates
            .iter()
            .find(|(c, _)| *c == currency)
            .map(|(_, r)| *r)
    }

    /// Converts an amount from `currency` into the base currency.
    pub fn convert(&self, amount: f64, currency: Currency) -> crate::Result<f64> {
        self.rate(currency)
            .map(|r| amount * r)
            .ok_or(crate::TermsError::UnknownCurrency(currency))
    }

    /// Number of currencies with known rates (including the base).
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when only the base currency is known.
    pub fn is_empty(&self) -> bool {
        self.rates.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_three_letters() {
        let mut codes: Vec<&str> = Currency::ALL.iter().map(|c| c.code()).collect();
        assert!(codes.iter().all(|c| c.len() == 3));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Currency::ALL.len());
        assert_eq!(format!("{}", Currency::Eur), "EUR");
    }

    #[test]
    fn base_rate_is_identity() {
        let t = ExchangeRates::new(Currency::Usd);
        assert_eq!(t.base(), Currency::Usd);
        assert_eq!(t.rate(Currency::Usd), Some(1.0));
        assert_eq!(t.convert(250.0, Currency::Usd).unwrap(), 250.0);
        assert!(t.is_empty());
    }

    #[test]
    fn convert_uses_rate() {
        let t = ExchangeRates::representative();
        assert!(!t.is_empty());
        assert!(t.len() >= 7);
        let eur = t.convert(100.0, Currency::Eur).unwrap();
        assert!((eur - 108.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_currency_is_an_error() {
        let t = ExchangeRates::new(Currency::Usd);
        assert_eq!(
            t.convert(1.0, Currency::Jpy),
            Err(crate::TermsError::UnknownCurrency(Currency::Jpy))
        );
    }

    #[test]
    fn set_replaces_existing_rate() {
        let mut t = ExchangeRates::representative();
        t.set(Currency::Eur, 2.0);
        assert_eq!(t.rate(Currency::Eur), Some(2.0));
        let n = t.len();
        t.set(Currency::Eur, 3.0);
        assert_eq!(t.len(), n, "replacing must not grow the table");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_panics() {
        ExchangeRates::new(Currency::Usd).set(Currency::Eur, 0.0);
    }
}
