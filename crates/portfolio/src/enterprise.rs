//! Enterprise risk roll-up: stage 3 of the analytical pipeline.
//!
//! "These metrics then flow into the final stage in the risk analysis
//! pipeline, namely Enterprise Risk Management, where liability, asset, and
//! other forms of risks are combined and correlated to generate an
//! enterprise wide view of risk" (paper §I).  Because every business unit is
//! simulated against the same Year Event Table, combining them is a
//! per-trial sum and the dependence between units is captured exactly.

use serde::{Deserialize, Serialize};

use catrisk_metrics::report::RiskReport;
use catrisk_metrics::var::{tvar, var};

/// One business unit's simulated annual losses (aligned to the common YET).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusinessUnit {
    /// Name of the unit (e.g. "US property cat", "International marine").
    pub name: String,
    /// Per-trial annual losses.
    pub losses: Vec<f64>,
}

impl BusinessUnit {
    /// Creates a unit.
    pub fn new(name: impl Into<String>, losses: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            losses,
        }
    }

    /// Expected annual loss of the unit.
    pub fn expected_loss(&self) -> f64 {
        if self.losses.is_empty() {
            0.0
        } else {
            self.losses.iter().sum::<f64>() / self.losses.len() as f64
        }
    }
}

/// The enterprise-wide view across business units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnterpriseView {
    units: Vec<BusinessUnit>,
    total_losses: Vec<f64>,
    /// Confidence level used for capital.
    pub capital_level: f64,
}

impl EnterpriseView {
    /// Combines business units that share the same trial set.
    pub fn new(units: Vec<BusinessUnit>, capital_level: f64) -> crate::Result<Self> {
        if units.is_empty() {
            return Err(crate::PortfolioError::Invalid("no business units".into()));
        }
        let trials = units[0].losses.len();
        if trials == 0 {
            return Err(crate::PortfolioError::Invalid(
                "business units have no trials".into(),
            ));
        }
        if units.iter().any(|u| u.losses.len() != trials) {
            return Err(crate::PortfolioError::Invalid(
                "all business units must share the same trial count".into(),
            ));
        }
        if !(capital_level > 0.0 && capital_level < 1.0) {
            return Err(crate::PortfolioError::Invalid(format!(
                "capital level must be in (0, 1), got {capital_level}"
            )));
        }
        let mut total = vec![0.0; trials];
        for unit in &units {
            for (acc, l) in total.iter_mut().zip(&unit.losses) {
                *acc += l;
            }
        }
        Ok(Self {
            units,
            total_losses: total,
            capital_level,
        })
    }

    /// The combined per-trial enterprise losses.
    pub fn total_losses(&self) -> &[f64] {
        &self.total_losses
    }

    /// The business units.
    pub fn units(&self) -> &[BusinessUnit] {
        &self.units
    }

    /// Enterprise capital requirement: TVaR of the combined losses at the
    /// capital level.
    pub fn required_capital(&self) -> f64 {
        tvar(&self.total_losses, self.capital_level)
    }

    /// Sum of the units' standalone TVaRs (the undiversified capital).
    pub fn standalone_capital(&self) -> f64 {
        self.units
            .iter()
            .map(|u| tvar(&u.losses, self.capital_level))
            .sum()
    }

    /// Diversification benefit: `1 − required / standalone` (0 when there is
    /// no standalone capital).
    pub fn diversification_benefit(&self) -> f64 {
        let standalone = self.standalone_capital();
        if standalone <= 0.0 {
            0.0
        } else {
            1.0 - self.required_capital() / standalone
        }
    }

    /// Allocates the enterprise capital to units by their co-TVaR: each
    /// unit's average loss in the trials where the enterprise loss is at or
    /// beyond its VaR.  The allocations sum to the required capital.
    pub fn capital_allocation(&self) -> Vec<(String, f64)> {
        let threshold = var(&self.total_losses, self.capital_level);
        let tail_trials: Vec<usize> = self
            .total_losses
            .iter()
            .enumerate()
            .filter(|(_, &l)| l >= threshold)
            .map(|(i, _)| i)
            .collect();
        if tail_trials.is_empty() {
            return self.units.iter().map(|u| (u.name.clone(), 0.0)).collect();
        }
        let co_tvars: Vec<f64> = self
            .units
            .iter()
            .map(|u| {
                tail_trials.iter().map(|&i| u.losses[i]).sum::<f64>() / tail_trials.len() as f64
            })
            .collect();
        // Scale so the allocation adds up to the reported required capital
        // (co-TVaR of the sum equals the sum of co-TVaRs up to the tie-break
        // at the threshold, so the scaling is a small correction).
        let total_co: f64 = co_tvars.iter().sum();
        let required = self.required_capital();
        let scale = if total_co > 0.0 {
            required / total_co
        } else {
            0.0
        };
        self.units
            .iter()
            .zip(co_tvars)
            .map(|(u, c)| (u.name.clone(), c * scale))
            .collect()
    }

    /// Pearson correlation between two units' annual losses.
    pub fn correlation(&self, a: usize, b: usize) -> f64 {
        let x = &self.units[a].losses;
        let y = &self.units[b].losses;
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (xi, yi) in x.iter().zip(y) {
            cov += (xi - mx) * (yi - my);
            vx += (xi - mx).powi(2);
            vy += (yi - my).powi(2);
        }
        if vx <= 0.0 || vy <= 0.0 {
            0.0
        } else {
            cov / (vx.sqrt() * vy.sqrt())
        }
    }

    /// Full correlation matrix between units.
    pub fn correlation_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.units.len();
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 1.0 } else { self.correlation(i, j) })
                    .collect()
            })
            .collect()
    }

    /// Risk report of the combined enterprise losses.
    pub fn report(&self) -> RiskReport {
        RiskReport::from_losses("enterprise", &self.total_losses, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_simkit::rng::RngFactory;

    fn units(n_trials: usize) -> Vec<BusinessUnit> {
        let factory = RngFactory::new(5);
        let mut us = Vec::new();
        let mut eu = Vec::new();
        let mut marine = Vec::new();
        for i in 0..n_trials {
            let mut rng = factory.stream(i as u64);
            let shared_event = rng.uniform() < 0.05;
            let shared_loss = if shared_event {
                50.0 + 100.0 * rng.uniform()
            } else {
                0.0
            };
            us.push(shared_loss * 2.0 + if rng.uniform() < 0.1 { 30.0 } else { 0.0 });
            eu.push(shared_loss + if rng.uniform() < 0.1 { 20.0 } else { 0.0 });
            marine.push(if rng.uniform() < 0.08 {
                25.0 * rng.uniform()
            } else {
                0.0
            });
        }
        vec![
            BusinessUnit::new("US cat", us),
            BusinessUnit::new("EU cat", eu),
            BusinessUnit::new("Marine", marine),
        ]
    }

    #[test]
    fn enterprise_aggregation_and_capital() {
        let view = EnterpriseView::new(units(10_000), 0.99).unwrap();
        assert_eq!(view.units().len(), 3);
        assert_eq!(view.total_losses().len(), 10_000);
        // Total expected loss equals the sum of units.
        let total_mean = view.total_losses().iter().sum::<f64>() / 10_000.0;
        let unit_sum: f64 = view.units().iter().map(|u| u.expected_loss()).sum();
        assert!((total_mean - unit_sum).abs() < 1e-9);
        // Sub-additivity of the tail measure.
        assert!(view.required_capital() <= view.standalone_capital() + 1e-9);
        assert!(view.diversification_benefit() >= 0.0);
        assert!(view.diversification_benefit() < 1.0);
    }

    #[test]
    fn capital_allocation_sums_to_required() {
        let view = EnterpriseView::new(units(10_000), 0.99).unwrap();
        let allocation = view.capital_allocation();
        assert_eq!(allocation.len(), 3);
        let sum: f64 = allocation.iter().map(|(_, c)| c).sum();
        assert!((sum - view.required_capital()).abs() < 1e-6);
        // The correlated, larger US book should consume the most capital.
        let us = allocation.iter().find(|(n, _)| n == "US cat").unwrap().1;
        let marine = allocation.iter().find(|(n, _)| n == "Marine").unwrap().1;
        assert!(us > marine);
    }

    #[test]
    fn correlation_structure() {
        let view = EnterpriseView::new(units(20_000), 0.99).unwrap();
        let m = view.correlation_matrix();
        assert_eq!(m.len(), 3);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
        }
        // US and EU share the common shock; marine is independent.
        assert!(m[0][1] > 0.3, "US-EU correlation {}", m[0][1]);
        assert!(m[0][2].abs() < 0.1, "US-Marine correlation {}", m[0][2]);
        assert!((m[0][1] - m[1][0]).abs() < 1e-12, "symmetry");
    }

    #[test]
    fn report_covers_total() {
        let view = EnterpriseView::new(units(5_000), 0.99).unwrap();
        let report = view.report();
        assert_eq!(report.trials, 5_000);
        assert_eq!(report.name, "enterprise");
    }

    #[test]
    fn validation_errors() {
        assert!(EnterpriseView::new(vec![], 0.99).is_err());
        assert!(EnterpriseView::new(vec![BusinessUnit::new("a", vec![])], 0.99).is_err());
        let mismatched = vec![
            BusinessUnit::new("a", vec![1.0, 2.0]),
            BusinessUnit::new("b", vec![1.0]),
        ];
        assert!(EnterpriseView::new(mismatched, 0.99).is_err());
        let ok = vec![BusinessUnit::new("a", vec![1.0, 2.0])];
        assert!(EnterpriseView::new(ok.clone(), 1.5).is_err());
        assert!(EnterpriseView::new(ok, 0.9).is_ok());
    }

    #[test]
    fn constant_unit_has_zero_correlation() {
        let u = vec![
            BusinessUnit::new("const", vec![5.0; 100]),
            BusinessUnit::new("varying", (0..100).map(f64::from).collect()),
        ];
        let view = EnterpriseView::new(u, 0.9).unwrap();
        assert_eq!(view.correlation(0, 1), 0.0);
    }
}
