//! The flight recorder: a fixed-capacity ring of recent structured events.
//!
//! Where histograms answer "how long does this stage usually take", the
//! recorder answers "what exactly happened just before things went wrong":
//! it keeps the last N interesting events (batches executed, refreshes
//! observed, cache purges, stitch fallbacks, overload rejections, slow
//! batches) with a sequence number and a relative timestamp, and can be
//! dumped on demand — over the wire via the `recorder` protocol command or
//! into a CI artifact when a smoke test fails.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventValue {
    /// Unsigned quantity (counts, microseconds, generations).
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Free-form text (query shapes, reasons).
    Str(String),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::U64(v)
    }
}

impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        EventValue::U64(v as u64)
    }
}

impl From<u32> for EventValue {
    fn from(v: u32) -> Self {
        EventValue::U64(u64::from(v))
    }
}

impl From<i64> for EventValue {
    fn from(v: i64) -> Self {
        EventValue::I64(v)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}

impl From<String> for EventValue {
    fn from(v: String) -> Self {
        EventValue::Str(v)
    }
}

/// One recorded event.  `seq` increments per event over the recorder's
/// lifetime (so gaps reveal how much the ring evicted); `micros` is the
/// time since the recorder was created.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotonic event sequence number (0-based, never reused).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    /// Event kind (see `docs/OBSERVABILITY.md` for the taxonomy).
    pub kind: String,
    /// Structured payload as ordered `(name, value)` pairs.
    pub fields: Vec<(String, EventValue)>,
}

struct Inner {
    next_seq: u64,
    events: VecDeque<EventRecord>,
}

/// Fixed-capacity ring buffer of [`EventRecord`]s.
///
/// Recording takes a short mutex (events are rare — per batch, not per
/// request sample) and never allocates beyond the configured capacity.
/// A capacity of 0 disables the recorder entirely.
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            capacity,
            inner: Mutex::new(Inner {
                next_seq: 0,
                events: VecDeque::with_capacity(capacity.min(1024)),
            }),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest when full.  No-op when the
    /// capacity is 0.
    pub fn record<'a, I>(&self, kind: &str, fields: I)
    where
        I: IntoIterator<Item = (&'a str, EventValue)>,
    {
        if self.capacity == 0 {
            return;
        }
        let micros = self.start.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(EventRecord {
            seq,
            micros,
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
        });
    }

    /// Copies the ring contents, oldest first.
    pub fn dump(&self) -> Vec<EventRecord> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Copies the events with `seq >= since`, oldest first — the
    /// incremental scrape behind the `recorder since <seq>` wire command.
    /// A client that has seen up to sequence number `S` asks for
    /// `since = S + 1` and receives only what it is missing; `since = 0`
    /// is a full dump.  Because `seq` is never reused, repeated scrapes
    /// correlate and deduplicate exactly even after the ring wraps.
    pub fn dump_since(&self, since: u64) -> Vec<EventRecord> {
        self.inner
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|e| e.seq >= since)
            .cloned()
            .collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record("tick", [("i", EventValue::from(i))]);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(
            dump.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(rec.recorded(), 5);
        assert_eq!(dump[0].fields, vec![("i".to_string(), EventValue::U64(2))]);
    }

    #[test]
    fn dump_since_is_an_exact_incremental_scrape() {
        let rec = FlightRecorder::new(4);
        for i in 0..6u64 {
            rec.record("tick", [("i", EventValue::from(i))]);
        }
        // Ring holds seqs 2..=5.  A client that saw up to 3 asks since=4.
        let fresh = rec.dump_since(4);
        assert_eq!(fresh.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        // since=0 is the full dump; a future seq yields nothing.
        assert_eq!(rec.dump_since(0), rec.dump());
        assert!(rec.dump_since(100).is_empty());
    }

    #[test]
    fn zero_capacity_disables() {
        let rec = FlightRecorder::new(0);
        rec.record("tick", []);
        assert!(rec.dump().is_empty());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn timestamps_do_not_go_backwards() {
        let rec = FlightRecorder::new(8);
        rec.record("a", []);
        rec.record("b", []);
        let dump = rec.dump();
        assert!(dump[0].micros <= dump[1].micros);
    }
}
