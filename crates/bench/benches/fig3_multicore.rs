//! Fig. 3 — the multi-core (OpenMP-analogue) engine: runtime vs worker
//! threads (3a) and vs logical-thread oversubscription on a fixed core
//! count (3b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_engine::parallel::ParallelEngine;

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 50_000,
        trials: 2_000,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 5_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    }
}

fn fig3a_cores(c: &mut Criterion) {
    let input = build_input(&workload());
    let mut group = c.benchmark_group("fig3a_cores");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| ParallelEngine::with_threads(threads).run(&input)),
        );
    }
    group.finish();
}

fn fig3b_oversubscription(c: &mut Criterion) {
    let input = build_input(&workload());
    let mut group = c.benchmark_group("fig3b_threads_per_core");
    group.sample_size(10);
    for items in [1usize, 4, 16, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(8 * items),
            &items,
            |b, &items| b.iter(|| ParallelEngine::oversubscribed(8, items).run(&input)),
        );
    }
    group.finish();
}

criterion_group!(fig3, fig3a_cores, fig3b_oversubscription);
criterion_main!(fig3);
