//! Minimal stand-in for the `rand` crate: the `RngCore` / `SeedableRng`
//! core traits plus the `Rng::gen_range` extension, which is all this
//! workspace uses (the generators and distributions themselves are
//! implemented in `catrisk-simkit`).

use std::ops::Range;

/// Error type for fallible byte filling (never produced here).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// Core random number generation trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;
    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds the generator from a 64-bit state.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Unbiased uniform draw from `[0, bound)` via widening-multiply rejection
/// (Lemire 2019).
fn below<G: RngCore + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut l = m as u64;
    if l < bound {
        let t = bound.wrapping_neg() % bound;
        while l < t {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            l = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! sample_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $ty
            }
        }
    )*};
}

sample_int_range!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..17);
            assert!((10..17).contains(&v));
        }
        let f = rng.gen_range(-2.0..3.0);
        assert!((-2.0..3.0).contains(&f));
    }
}
