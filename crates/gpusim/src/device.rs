//! Device specifications.

use serde::{Deserialize, Serialize};

/// Static description of a simulated many-core device.
///
/// The defaults model the NVIDIA Tesla C2075 used in the paper's evaluation:
/// 448 CUDA cores organised as 14 streaming multiprocessors of 32 lanes,
/// 5.375 GB of global memory, 48 KB of shared memory and 64 KB of constant
/// memory per SM, and Fermi-generation occupancy limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name of the device.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Scalar lanes (CUDA cores) per SM.
    pub lanes_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Usable global memory in bytes.
    pub global_mem_bytes: u64,
    /// Latency of an uncached global memory access, in cycles.
    pub global_latency_cycles: f64,
    /// Peak global memory bandwidth in GB/s.
    pub global_bandwidth_gbps: f64,
    /// Size of a global memory transaction in bytes (the granularity at
    /// which random accesses consume bandwidth).
    pub transaction_bytes: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Constant memory in bytes.
    pub constant_mem_bytes: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum outstanding global-memory requests per SM that can be used to
    /// hide latency (memory-level parallelism across the SM's resident
    /// threads).
    pub max_outstanding_requests: u32,
    /// Fixed scheduling overhead per launched block, in cycles.
    pub block_overhead_cycles: f64,
}

impl DeviceSpec {
    /// The NVIDIA Tesla C2075 (Fermi) used in the paper's evaluation.
    pub fn tesla_c2075() -> Self {
        Self {
            name: "Tesla C2075 (simulated)".to_string(),
            num_sms: 14,
            lanes_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.15,
            global_mem_bytes: 5_375 * 1024 * 1024,
            global_latency_cycles: 600.0,
            global_bandwidth_gbps: 144.0,
            transaction_bytes: 128,
            shared_mem_per_sm: 48 * 1024,
            constant_mem_bytes: 64 * 1024,
            max_threads_per_sm: 1_536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1_024,
            max_outstanding_requests: 2_048,
            block_overhead_cycles: 2_000.0,
        }
    }

    /// A smaller embedded-class device used by tests that need low limits.
    pub fn small_test_device() -> Self {
        Self {
            name: "test device".to_string(),
            num_sms: 2,
            lanes_per_sm: 8,
            warp_size: 8,
            clock_ghz: 1.0,
            global_mem_bytes: 64 * 1024 * 1024,
            global_latency_cycles: 100.0,
            global_bandwidth_gbps: 10.0,
            transaction_bytes: 32,
            shared_mem_per_sm: 4 * 1024,
            constant_mem_bytes: 4 * 1024,
            max_threads_per_sm: 128,
            max_blocks_per_sm: 4,
            max_threads_per_block: 64,
            max_outstanding_requests: 64,
            block_overhead_cycles: 100.0,
        }
    }

    /// Total scalar lanes across the device.
    pub fn total_lanes(&self) -> u32 {
        self.num_sms * self.lanes_per_sm
    }

    /// Cycles per second.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1.0e9
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> crate::Result<()> {
        let positive = [
            ("num_sms", f64::from(self.num_sms)),
            ("lanes_per_sm", f64::from(self.lanes_per_sm)),
            ("warp_size", f64::from(self.warp_size)),
            ("clock_ghz", self.clock_ghz),
            ("global_latency_cycles", self.global_latency_cycles),
            ("global_bandwidth_gbps", self.global_bandwidth_gbps),
            ("transaction_bytes", f64::from(self.transaction_bytes)),
            ("max_threads_per_sm", f64::from(self.max_threads_per_sm)),
            ("max_blocks_per_sm", f64::from(self.max_blocks_per_sm)),
            (
                "max_threads_per_block",
                f64::from(self.max_threads_per_block),
            ),
            (
                "max_outstanding_requests",
                f64::from(self.max_outstanding_requests),
            ),
        ];
        for (field, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(crate::GpuError::InvalidLaunch(format!(
                    "device field {field} must be positive, got {value}"
                )));
            }
        }
        if self.max_threads_per_block > self.max_threads_per_sm {
            return Err(crate::GpuError::InvalidLaunch(
                "max_threads_per_block cannot exceed max_threads_per_sm".into(),
            ));
        }
        Ok(())
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::tesla_c2075()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_preset_matches_paper_hardware() {
        let d = DeviceSpec::tesla_c2075();
        d.validate().unwrap();
        assert_eq!(d.total_lanes(), 448, "448 processor cores");
        assert_eq!(d.num_sms, 14, "14 streaming multiprocessors");
        assert_eq!(d.lanes_per_sm, 32, "32 symmetric multiprocessors each");
        assert!(
            d.global_mem_bytes >= 5 * 1024 * 1024 * 1024,
            "5.375 GB global memory"
        );
        assert_eq!(d.shared_mem_per_sm, 48 * 1024);
        assert_eq!(d.constant_mem_bytes, 64 * 1024);
        assert!((d.clock_hz() - 1.15e9).abs() < 1.0);
        assert_eq!(DeviceSpec::default(), d);
    }

    #[test]
    fn small_device_valid() {
        DeviceSpec::small_test_device().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut d = DeviceSpec::tesla_c2075();
        d.clock_ghz = 0.0;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_c2075();
        d.max_threads_per_block = d.max_threads_per_sm + 1;
        assert!(d.validate().is_err());
        let mut d = DeviceSpec::tesla_c2075();
        d.global_latency_cycles = f64::NAN;
        assert!(d.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let d = DeviceSpec::tesla_c2075();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<DeviceSpec>(&json).unwrap(), d);
    }
}
