//! Minimal stand-in for `rayon` implemented over `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the rayon API the workspace uses: `into_par_iter` /
//! `par_iter` with the `map`, `map_init`, `filter_map` and `fold` adapters,
//! the `collect` / `reduce` / `sum` terminals, and explicit thread pools
//! (`ThreadPoolBuilder`, `ThreadPool::install`).
//!
//! Execution model: terminals split the materialised items into one
//! contiguous chunk per worker and run each chunk on a scoped thread.
//! Results are concatenated (or reduced) **in chunk order**, so `collect`
//! preserves input order exactly like rayon's indexed collect, and `reduce`
//! combines partial results deterministically for a fixed thread count.
//! There is no work stealing; the engines in this workspace parallelise
//! over uniformly sized trials, where static chunking is a good fit.

use std::cell::Cell;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads terminals on this thread will use: the
/// innermost installed pool's size, or the number of logical CPUs.
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by the
/// shim; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicit-size [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = one per logical CPU).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A "thread pool": in the shim, a resolved worker count that terminals
/// running under [`ThreadPool::install`] will use.  Threads are spawned
/// scoped per terminal rather than kept alive, which keeps the shim tiny at
/// the cost of per-call spawn overhead.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

struct ThreadsGuard {
    prev: usize,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count active on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let guard = ThreadsGuard {
            prev: CURRENT_THREADS.with(Cell::get),
        };
        CURRENT_THREADS.with(|c| c.set(self.threads));
        let result = op();
        drop(guard);
        result
    }

    /// This pool's worker-thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------------
// Parallel execution core
// ---------------------------------------------------------------------------

/// Splits `items` into one contiguous chunk per worker, runs `per_chunk` on
/// each chunk on a scoped thread, and returns the per-chunk results in
/// chunk order.
fn run_chunks<T: Send, R: Send>(items: Vec<T>, per_chunk: impl Fn(Vec<T>) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return vec![per_chunk(items)];
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let per_chunk = &per_chunk;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || per_chunk(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim: worker thread panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// A materialised parallel iterator: the source of every adapter chain.
pub struct IterBase<T> {
    items: Vec<T>,
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator over its elements.
    fn into_par_iter(self) -> IterBase<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IterBase<T> {
        IterBase { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for Range<$ty> {
            type Item = $ty;
            fn into_par_iter(self) -> IterBase<$ty> {
                IterBase { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize);

/// Borrowing conversion for slices and vectors (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send;
    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&'a self) -> IterBase<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters and terminals
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct Map<T, F> {
    items: Vec<T>,
    f: F,
}

/// `map_init` adapter.
pub struct MapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

/// `filter_map` adapter.
pub struct FilterMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// `fold` adapter: a parallel iterator of per-chunk accumulators.
pub struct Fold<T, ID, F> {
    items: Vec<T>,
    identity: ID,
    fold: F,
}

impl<T: Send> IterBase<T> {
    /// Maps each element through `f`.
    pub fn map<O, F: Fn(T) -> O + Sync>(self, f: F) -> Map<T, F> {
        Map {
            items: self.items,
            f,
        }
    }

    /// Maps with per-worker scratch state created by `init`.
    pub fn map_init<S, O, INIT, F>(self, init: INIT, f: F) -> MapInit<T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> O + Sync,
    {
        MapInit {
            items: self.items,
            init,
            f,
        }
    }

    /// Maps and filters in one pass.
    pub fn filter_map<O, F: Fn(T) -> Option<O> + Sync>(self, f: F) -> FilterMap<T, F> {
        FilterMap {
            items: self.items,
            f,
        }
    }

    /// Folds each worker's chunk into a private accumulator.
    pub fn fold<A, ID, F>(self, identity: ID, fold: F) -> Fold<T, ID, F>
    where
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        Fold {
            items: self.items,
            identity,
            fold,
        }
    }

    /// Collects the elements unchanged.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> Map<T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        let f = &self.f;
        let chunks = run_chunks(self.items, |chunk| {
            chunk.into_iter().map(f).collect::<Vec<O>>()
        });
        C::from(chunks.into_iter().flatten().collect())
    }

    /// Reduces mapped elements with `combine`, starting each worker (and the
    /// final combination) from `identity()`.  Partial results are combined
    /// in chunk order.
    pub fn reduce<ID, C>(self, identity: ID, combine: C) -> O
    where
        ID: Fn() -> O + Sync,
        C: Fn(O, O) -> O + Sync,
    {
        let f = &self.f;
        let id = &identity;
        let combine_ref = &combine;
        let partials = run_chunks(self.items, |chunk| {
            chunk.into_iter().map(f).fold(id(), combine_ref)
        });
        partials.into_iter().fold(identity(), combine)
    }

    /// Sums the mapped elements (combined in input order).
    pub fn sum<S: std::iter::Sum<O> + std::iter::Sum<S> + Send>(self) -> S {
        let f = &self.f;
        let partials = run_chunks(self.items, |chunk| chunk.into_iter().map(f).sum::<S>());
        partials.into_iter().sum()
    }
}

impl<T, S, O, INIT, F> MapInit<T, INIT, F>
where
    T: Send,
    O: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> O + Sync,
{
    /// Runs the map in parallel (one scratch state per worker) and collects
    /// results in input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        let f = &self.f;
        let init = &self.init;
        let chunks = run_chunks(self.items, |chunk| {
            let mut state = init();
            chunk
                .into_iter()
                .map(|item| f(&mut state, item))
                .collect::<Vec<O>>()
        });
        C::from(chunks.into_iter().flatten().collect())
    }
}

impl<T: Send, O: Send, F: Fn(T) -> Option<O> + Sync> FilterMap<T, F> {
    /// Runs the filter-map in parallel and collects retained results in
    /// input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        let f = &self.f;
        let chunks = run_chunks(self.items, |chunk| {
            chunk.into_iter().filter_map(f).collect::<Vec<O>>()
        });
        C::from(chunks.into_iter().flatten().collect())
    }
}

impl<T, A, ID, F> Fold<T, ID, F>
where
    T: Send,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, T) -> A + Sync,
{
    /// Combines the per-chunk accumulators in chunk order.
    pub fn reduce<ID2, C>(self, identity: ID2, combine: C) -> A
    where
        ID2: Fn() -> A + Sync,
        C: Fn(A, A) -> A + Sync,
    {
        let fold = &self.fold;
        let id = &self.identity;
        let partials = run_chunks(self.items, |chunk| chunk.into_iter().fold(id(), fold));
        partials.into_iter().fold(identity(), combine)
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn fold_reduce_sums() {
        let id = || 0u64;
        let total = (0..10_000u64)
            .into_par_iter()
            .fold(&id, |acc, i| acc + i)
            .reduce(&id, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_reduce_deterministic() {
        let out =
            (0..100usize)
                .into_par_iter()
                .map(|i| vec![i])
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn filter_map_drops_elements() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 2 == 0).then_some(i))
            .collect();
        assert_eq!(out.len(), 50);
        assert_eq!(out[1], 2);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i
            })
            .collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
