//! Query execution: the rayon-parallel scan pipeline and aggregate
//! finalisation.
//!
//! ## Determinism
//!
//! The scan parallelises over **trial blocks** (the long axis), not over
//! segments: each worker owns a disjoint trial window and accumulates every
//! surviving segment *in segment order* within it.  The per-block partials
//! are therefore disjoint and merge by concatenation — an exact monoid
//! `combine` with no floating-point interaction — so query results are
//! bit-identical to a single-threaded scan for any thread count, mirroring
//! the engine crate's bit-identical guarantee across its parallel variants.

use rayon::prelude::*;

use catrisk_metrics::ep::ExceedanceCurve;
use catrisk_simkit::stats::{
    max_or_zero, mean_or_zero, population_std_dev, positive_fraction, quantile_sorted,
    tail_mean_sorted,
};

use crate::kernel;
use crate::plan::QueryPlan;
use crate::query::{Aggregate, Basis, LossRange, Query};
use crate::result::{AggValue, QueryResult, ResultRow};
use crate::store::SegmentSource;
use crate::Result;

/// Per-group accumulated loss vectors over one trial window: the "partial
/// aggregate" of the QuPARA mapper stage.
///
/// Year losses of a group sum across its segments within a trial (all
/// segments see the same trial); occurrence losses take the per-trial
/// maximum, which is what an OEP curve of the combined group means.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAggregate {
    /// `year[group][t]`: summed year loss of `group` in relative trial `t`.
    pub year: Vec<Vec<f64>>,
    /// `maxocc[group][t]`: largest single-occurrence loss of `group`.
    pub maxocc: Vec<Vec<f64>>,
}

impl PartialAggregate {
    /// The monoid identity over `groups` groups and `trials` trials: zero
    /// losses everywhere (losses are non-negative, so 0 is also the `max`
    /// identity).
    pub fn identity(groups: usize, trials: usize) -> Self {
        Self {
            year: vec![vec![0.0; trials]; groups],
            maxocc: vec![vec![0.0; trials]; groups],
        }
    }

    /// A partial with `groups` groups and *no* trials materialised yet —
    /// the starting state for [`accumulate_or_init`](Self::accumulate_or_init),
    /// which lets a block's first segment per group write the vectors
    /// directly instead of accumulating into freshly zeroed ones.
    pub fn empty(groups: usize) -> Self {
        Self {
            year: vec![Vec::new(); groups],
            maxocc: vec![Vec::new(); groups],
        }
    }

    /// Accumulates one segment's loss slices into `group` through the
    /// fused add/max kernel ([`kernel::accumulate_fused`]).  The group's
    /// vectors must already be the slice length.
    #[inline]
    pub fn accumulate(&mut self, group: usize, year: &[f64], maxocc: &[f64]) {
        kernel::accumulate_fused(&mut self.year[group], &mut self.maxocc[group], year, maxocc);
    }

    /// [`accumulate`](Self::accumulate) that initialises an untouched
    /// group from its first segment (bit-identical to accumulating into
    /// the zero identity, without allocating and zeroing it first).
    #[inline]
    pub fn accumulate_or_init(&mut self, group: usize, year: &[f64], maxocc: &[f64]) {
        if self.year[group].is_empty() && !year.is_empty() {
            kernel::init_fused(&mut self.year[group], &mut self.maxocc[group], year, maxocc);
        } else {
            self.accumulate(group, year, maxocc);
        }
    }

    /// Zero-fills any group no segment touched, so a partial built with
    /// [`empty`](Self::empty) + [`accumulate_or_init`](Self::accumulate_or_init)
    /// ends exactly where `identity` + `accumulate` would.
    pub(crate) fn fill_untouched(&mut self, trials: usize) {
        for (year, maxocc) in self.year.iter_mut().zip(&mut self.maxocc) {
            if year.is_empty() && trials > 0 {
                year.resize(trials, 0.0);
                maxocc.resize(trials, 0.0);
            }
        }
    }

    /// Merges a partial covering the trial window immediately after this
    /// one (disjoint windows ⇒ exact concatenation).
    pub fn combine_adjacent(mut self, next: PartialAggregate) -> Self {
        for (acc, mut block) in self.year.iter_mut().zip(next.year) {
            acc.append(&mut block);
        }
        for (acc, mut block) in self.maxocc.iter_mut().zip(next.maxocc) {
            acc.append(&mut block);
        }
        self
    }

    /// Drops, group by group, the trials whose summed year loss lies
    /// outside `range` — the scan-side evaluation of a
    /// [`LossRange`] predicate.  Both columns keep exactly the surviving
    /// trials (the occurrence column is masked by the *year* losses, so a
    /// group's OEP statistics are conditioned on the same years as its AEP
    /// statistics).  Compaction preserves trial order, so adjacent-window
    /// concatenation stays exact.
    pub fn retain_by_year(&mut self, range: LossRange) {
        for (year, maxocc) in self.year.iter_mut().zip(&mut self.maxocc) {
            kernel::retain_fused(year, maxocc, range);
        }
    }

    /// Merges a partial covering the *same* trial window (element-wise sum
    /// and max) — used when sharding by segments instead of trials; order
    /// of combination then affects the last ulp, which is why the scan
    /// shards by trials instead.
    pub fn combine_overlapping(mut self, other: &PartialAggregate) -> Self {
        for (acc, block) in self.year.iter_mut().zip(&other.year) {
            for (a, v) in acc.iter_mut().zip(block) {
                *a += v;
            }
        }
        for (acc, block) in self.maxocc.iter_mut().zip(&other.maxocc) {
            for (a, v) in acc.iter_mut().zip(block) {
                *a = a.max(*v);
            }
        }
        self
    }
}

/// Splits `[start, end)` into at most `parts` contiguous non-empty
/// blocks, then further splits every block at the interior `cuts` (a
/// source's [`SegmentSource::trial_cuts`]) so no block straddles a
/// backing-allocation boundary.  Extra splits cannot change results: the
/// per-block partials merge by exact concatenation.
pub(crate) fn trial_blocks_cut(
    start: usize,
    end: usize,
    parts: usize,
    cuts: &[usize],
) -> Vec<(usize, usize)> {
    let blocks = trial_blocks(start, end, parts);
    if cuts.is_empty() {
        return blocks;
    }
    let mut split = Vec::with_capacity(blocks.len() + cuts.len());
    for (block_start, block_end) in blocks {
        let mut at = block_start;
        for &cut in cuts {
            if cut <= at {
                continue;
            }
            if cut >= block_end {
                break;
            }
            split.push((at, cut));
            at = cut;
        }
        split.push((at, block_end));
    }
    split
}

/// Splits `span` trials into at most `parts` contiguous non-empty blocks.
pub(crate) fn trial_blocks(start: usize, end: usize, parts: usize) -> Vec<(usize, usize)> {
    let span = end - start;
    if span == 0 {
        return vec![];
    }
    let parts = parts.clamp(1, span);
    let base = span / parts;
    let extra = span % parts;
    let mut blocks = Vec::with_capacity(parts);
    let mut at = start;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        blocks.push((at, at + len));
        at += len;
    }
    blocks
}

/// Runs the planned scan: per-trial-block partial aggregation in parallel,
/// merged by exact concatenation.  A loss-range predicate in the plan is
/// evaluated per block, after all segments have been accumulated into the
/// block's group totals and while those totals are still cache-hot.
pub(crate) fn scan<S: SegmentSource + ?Sized>(store: &S, plan: &QueryPlan) -> PartialAggregate {
    scan_window(store, plan, plan.trial_start, plan.trial_end)
}

/// [`scan`] restricted to the sub-window `[start, end)` of the plan's
/// trial window — the per-shard half of trial-axis sharding: a sharded
/// serving layer scans each shard's window separately (caching the
/// partials) and stitches them with the same adjacent-window monoid the
/// blocks below merge by, so the stitched result is bit-identical to one
/// scan of the whole window.
pub(crate) fn scan_window<S: SegmentSource + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    start: usize,
    end: usize,
) -> PartialAggregate {
    debug_assert!(plan.trial_start <= start && end <= plan.trial_end && start <= end);
    let groups = plan.num_groups();
    // Finer blocks than workers (see `kernel::scan_parts`) give the
    // shim's self-scheduling claim loop room to rebalance skewed blocks;
    // block boundaries never change bits.
    let blocks = trial_blocks_cut(start, end, kernel::scan_parts(), &store.trial_cuts());
    let partials: Vec<PartialAggregate> = blocks
        .into_par_iter()
        .map(|(block_start, block_end)| {
            let len = block_end - block_start;
            let mut partial = PartialAggregate::empty(groups);
            for (&segment, &group) in plan.segments.iter().zip(&plan.groups) {
                let year = store.year_losses_in(segment, block_start, block_end);
                let occ = store.max_occ_losses_in(segment, block_start, block_end);
                partial.accumulate_or_init(group, year, occ);
            }
            partial.fill_untouched(len);
            if let Some(range) = plan.loss {
                partial.retain_by_year(range);
            }
            partial
        })
        .collect();
    partials
        .into_iter()
        .reduce(PartialAggregate::combine_adjacent)
        .unwrap_or_else(|| PartialAggregate::identity(groups, 0))
}

/// One fused pass over the trial window `[start, end)` serving every plan
/// in `plans`: within each trial block, each segment's loss slices are
/// read once and accumulated into every plan that selected the segment —
/// the shared scan core behind both [`QuerySession`](crate::QuerySession)
/// batches and the fused trial-partial path
/// ([`scan_trial_partials_fused`](crate::partial::scan_trial_partials_fused)).
///
/// Returns one [`PartialAggregate`] per plan, in input order, each
/// bit-identical to [`scan_window`] of that plan alone: the fusion only
/// changes *when* a loss slice is read, never the per-plan accumulation
/// order, and block boundaries cannot change bits (the adjacent-window
/// monoid).  Every plan's trial window must contain `[start, end)`.
pub(crate) fn fused_scan_plans<S: SegmentSource + ?Sized>(
    store: &S,
    plans: &[&QueryPlan],
    start: usize,
    end: usize,
) -> Vec<PartialAggregate> {
    for plan in plans {
        debug_assert!(plan.trial_start <= start && end <= plan.trial_end && start <= end);
    }
    // Routing table: segment -> [(plan index, group)].
    let mut routing: Vec<Vec<(u32, u32)>> = vec![Vec::new(); store.num_segments()];
    for (pi, plan) in plans.iter().enumerate() {
        for (&segment, &group) in plan.segments.iter().zip(&plan.groups) {
            routing[segment].push((pi as u32, group as u32));
        }
    }
    let touched: Vec<usize> = (0..store.num_segments())
        .filter(|&s| !routing[s].is_empty())
        .collect();
    let group_counts: Vec<usize> = plans.iter().map(|plan| plan.num_groups()).collect();

    // Finer blocks than workers (see `kernel::scan_parts`) give the
    // shim's self-scheduling claim loop room to rebalance skewed blocks;
    // block boundaries never change bits.
    let blocks = trial_blocks_cut(start, end, kernel::scan_parts(), &store.trial_cuts());
    let partial_sets: Vec<Vec<PartialAggregate>> = blocks
        .into_par_iter()
        .map(|(block_start, block_end)| {
            let len = block_end - block_start;
            let mut partials: Vec<PartialAggregate> = group_counts
                .iter()
                .map(|&g| PartialAggregate::empty(g))
                .collect();
            for &segment in &touched {
                let year = store.year_losses_in(segment, block_start, block_end);
                let occ = store.max_occ_losses_in(segment, block_start, block_end);
                for &(pi, group) in &routing[segment] {
                    partials[pi as usize].accumulate_or_init(group as usize, year, occ);
                }
            }
            for (partial, plan) in partials.iter_mut().zip(plans) {
                partial.fill_untouched(len);
                if let Some(range) = plan.loss {
                    partial.retain_by_year(range);
                }
            }
            partials
        })
        .collect();

    // Adjacent-window concatenation per plan, in block order.
    let mut iter = partial_sets.into_iter();
    let mut merged = match iter.next() {
        Some(first) => first,
        None => group_counts
            .iter()
            .map(|&g| PartialAggregate::identity(g, 0))
            .collect(),
    };
    for set in iter {
        merged = merged
            .into_iter()
            .zip(set)
            .map(|(acc, block)| acc.combine_adjacent(block))
            .collect();
    }
    merged
}

/// Sorted copies of a group's loss vectors, computed lazily — VaR, TVaR,
/// PML and EP curves all need order statistics over the same data.
#[derive(Debug, Default)]
pub(crate) struct SortedCache {
    year: Option<Vec<f64>>,
    maxocc: Option<Vec<f64>>,
}

impl SortedCache {
    pub(crate) fn sorted<'a>(
        &'a mut self,
        basis: Basis,
        partial: &PartialAggregate,
        group: usize,
    ) -> &'a [f64] {
        let (slot, source) = match basis {
            Basis::Aep => (&mut self.year, &partial.year[group]),
            Basis::Oep => (&mut self.maxocc, &partial.maxocc[group]),
        };
        slot.get_or_insert_with(|| {
            let mut sorted = source.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite losses"));
            sorted
        })
    }
}

/// Finalises one group's aggregates from its accumulated loss vectors.
///
/// Every aggregate goes through the shared kernels a direct YLT
/// computation uses — `catrisk-simkit`'s scalar kernels (`mean_or_zero`,
/// `population_std_dev`, `max_or_zero`, `positive_fraction`, the same
/// functions behind `YearLossTable::mean_loss` and friends) and
/// `quantile_sorted` / `tail_mean_sorted` plus `catrisk-metrics`'
/// `ExceedanceCurve` for the order statistics — so a query result is
/// bit-identical to brute-force aggregation over the raw Year Loss Tables
/// by construction.
pub(crate) fn finalize_group(
    aggregates: &[Aggregate],
    partial: &PartialAggregate,
    group: usize,
    cache: &mut SortedCache,
) -> Vec<AggValue> {
    let year = &partial.year[group];
    if year.is_empty() {
        // A loss-range filter can condition a group on zero trials (the
        // scan itself never produces an empty window otherwise).  Losses
        // over an empty year set are zero; curves are empty.
        return aggregates
            .iter()
            .map(|aggregate| match aggregate {
                Aggregate::EpCurve { .. } => AggValue::Curve(Vec::new()),
                _ => AggValue::Scalar(0.0),
            })
            .collect();
    }
    aggregates
        .iter()
        .map(|aggregate| match aggregate {
            Aggregate::Mean => AggValue::Scalar(mean_or_zero(year)),
            Aggregate::StdDev => AggValue::Scalar(population_std_dev(year)),
            Aggregate::MaxLoss => AggValue::Scalar(max_or_zero(year)),
            Aggregate::AttachProb => AggValue::Scalar(positive_fraction(year)),
            Aggregate::Var { level } => AggValue::Scalar(quantile_sorted(
                cache.sorted(Basis::Aep, partial, group),
                *level,
            )),
            Aggregate::Tvar { level } => AggValue::Scalar(tail_mean_sorted(
                cache.sorted(Basis::Aep, partial, group),
                *level,
            )),
            Aggregate::Pml {
                return_period,
                basis,
            } => {
                let sorted = cache.sorted(*basis, partial, group);
                let curve = ExceedanceCurve::from_sorted(sorted.to_vec());
                AggValue::Scalar(curve.loss_at_return_period(*return_period))
            }
            Aggregate::EpCurve { basis, points } => {
                let sorted = cache.sorted(*basis, partial, group);
                let curve = ExceedanceCurve::from_sorted(sorted.to_vec());
                AggValue::Curve(curve.curve_points(*points))
            }
        })
        .collect()
}

/// Per-spec state reusable across the queries sharing one scan: group
/// segment counts, canonical row order, and the lazily sorted loss copies.
pub(crate) struct SpecState {
    segment_counts: Vec<usize>,
    row_order: Vec<usize>,
    caches: Vec<SortedCache>,
}

impl SpecState {
    pub(crate) fn new(plan: &QueryPlan) -> Self {
        let mut segment_counts = vec![0usize; plan.num_groups()];
        for &group in &plan.groups {
            segment_counts[group] += 1;
        }
        Self {
            segment_counts,
            row_order: plan.sorted_group_order(),
            caches: (0..plan.num_groups())
                .map(|_| SortedCache::default())
                .collect(),
        }
    }
}

/// Assembles the final result: rows in canonical key order.
pub(crate) fn assemble(
    query: &Query,
    plan: &QueryPlan,
    partial: &PartialAggregate,
    state: &mut SpecState,
) -> QueryResult {
    let rows: Vec<ResultRow> = state
        .row_order
        .iter()
        .map(|&group| ResultRow {
            key: plan.keys[group].clone(),
            segments: state.segment_counts[group],
            values: finalize_group(&query.aggregates, partial, group, &mut state.caches[group]),
        })
        .collect();
    QueryResult {
        group_by: query.group_by.clone(),
        aggregates: query.aggregates.clone(),
        trials: plan.num_trials(),
        rows,
    }
}

/// Executes one query against any [`SegmentSource`] — the in-memory
/// [`ResultStore`](crate::store::ResultStore) or a persistent reader such
/// as `catrisk-riskstore`'s `StoreReader`.
///
/// Pipeline: plan (filter pushdown over dictionary codes) → parallel scan
/// (per-trial-block partial aggregation, exact combine) → finalisation
/// (metric kernels per group).
pub fn execute<S: SegmentSource + ?Sized>(store: &S, query: &Query) -> Result<QueryResult> {
    let plan = QueryPlan::new(store, query)?;
    let partial = scan(store, &plan);
    Ok(assemble(query, &plan, &partial, &mut SpecState::new(&plan)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::{Dimension, LineOfBusiness, SegmentMeta};
    use crate::query::QueryBuilder;
    use crate::store::ResultStore;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;

    fn outcome(year: f64, occ: f64) -> TrialOutcome {
        TrialOutcome {
            year_loss: year,
            max_occurrence_loss: occ,
            nonzero_events: 0,
        }
    }

    fn store() -> ResultStore {
        let mut store = ResultStore::new(4);
        let segs = [
            (
                Peril::Hurricane,
                Region::Europe,
                vec![(1.0, 1.0), (0.0, 0.0), (4.0, 3.0), (2.0, 2.0)],
            ),
            (
                Peril::Hurricane,
                Region::Japan,
                vec![(2.0, 2.0), (1.0, 1.0), (0.0, 0.0), (0.0, 0.0)],
            ),
            (
                Peril::Flood,
                Region::Europe,
                vec![(0.0, 0.0), (5.0, 4.0), (1.0, 1.0), (3.0, 3.0)],
            ),
        ];
        for (i, (peril, region, data)) in segs.into_iter().enumerate() {
            let outcomes = data.into_iter().map(|(y, o)| outcome(y, o)).collect();
            store
                .ingest(
                    &YearLossTable::new(LayerId(i as u32), outcomes),
                    SegmentMeta::new(LayerId(i as u32), peril, region, LineOfBusiness::Property),
                )
                .unwrap();
        }
        store
    }

    #[test]
    fn filter_only_totals() {
        let store = store();
        let query = QueryBuilder::new()
            .with_perils([Peril::Hurricane])
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        assert_eq!(row.segments, 2);
        // Summed hurricane year losses: [3, 1, 4, 2] -> mean 2.5, max 4.
        assert_eq!(row.values[0], AggValue::Scalar(2.5));
        assert_eq!(row.values[1], AggValue::Scalar(4.0));
        assert_eq!(row.values[2], AggValue::Scalar(1.0));
    }

    #[test]
    fn group_by_peril_sums_within_trials() {
        let store = store();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        assert_eq!(result.rows.len(), 2);
        // Canonical order: Hurricane (variant 0) before Flood (variant 2).
        assert_eq!(result.rows[0].key[0].to_string(), "HU");
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(10.0 / 4.0));
        assert_eq!(result.rows[1].key[0].to_string(), "FL");
        assert_eq!(result.rows[1].values[0], AggValue::Scalar(9.0 / 4.0));
    }

    #[test]
    fn oep_uses_max_merge() {
        let store = store();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 2,
            })
            .aggregate(Aggregate::Pml {
                return_period: 2.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        // Per-trial max occurrence across segments: [2, 4, 3, 3].
        let curve = result.rows[0].values[0].as_curve().unwrap();
        assert_eq!(curve.len(), 2);
        let pml = result.rows[0].values[1].as_scalar().unwrap();
        let expected = ExceedanceCurve::new(vec![2.0, 4.0, 3.0, 3.0]).loss_at_return_period(2.0);
        assert_eq!(pml, expected);
    }

    #[test]
    fn trial_window_restricts_scan() {
        let store = store();
        let query = QueryBuilder::new()
            .trials(1..3)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        // Trials 1..3 total year losses: [6, 5] -> mean 5.5.
        assert_eq!(result.trials, 2);
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(5.5));
    }

    #[test]
    fn empty_selection_yields_no_rows() {
        let store = store();
        let query = QueryBuilder::new()
            .with_perils([Peril::Tornado])
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        assert!(result.rows.is_empty());
    }

    #[test]
    fn scan_is_block_count_invariant() {
        let store = store();
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        let reference = {
            let mut partial = PartialAggregate::identity(plan.num_groups(), plan.num_trials());
            for (&segment, &group) in plan.segments.iter().zip(&plan.groups) {
                partial.accumulate(
                    group,
                    store.year_losses(segment),
                    store.max_occ_losses(segment),
                );
            }
            partial
        };
        let scanned = scan(&store, &plan);
        assert_eq!(
            scanned, reference,
            "parallel scan must equal the sequential scan bitwise"
        );
    }

    #[test]
    fn loss_range_conditions_each_group() {
        let store = store();
        // Total year losses across the three segments: [3, 6, 5, 5].
        let query = QueryBuilder::new()
            .loss_at_least(5.0)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        // Surviving trials: [6, 5, 5] -> mean 16/3, max 6.
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(16.0 / 3.0));
        assert_eq!(result.rows[0].values[1], AggValue::Scalar(6.0));

        // Bounded range keeps only the two 5s.
        let query = QueryBuilder::new()
            .loss_in(4.0, 5.0)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(5.0));

        // A range matching no trial yields zero-trial aggregates — zero
        // scalars and empty curves, not a panic (order statistics over an
        // empty tail are otherwise undefined).
        let query = QueryBuilder::new()
            .loss_at_least(1.0e9)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 3,
            })
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(0.0));
        assert_eq!(result.rows[0].values[1], AggValue::Scalar(0.0));
        assert_eq!(result.rows[0].values[2], AggValue::Curve(Vec::new()));
    }

    #[test]
    fn loss_range_masks_occurrence_column_by_year_losses() {
        let store = store();
        // Grouped by peril, hurricane year totals: [3, 1, 4, 2]; keeping
        // trials with year loss >= 2 retains trials {0, 2, 3} whose
        // occurrence maxima are [2, 3, 2].
        let query = QueryBuilder::new()
            .with_perils([Peril::Hurricane])
            .group_by(Dimension::Peril)
            .loss_at_least(2.0)
            .aggregate(Aggregate::Pml {
                return_period: 2.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap();
        let result = execute(&store, &query).unwrap();
        let expected = ExceedanceCurve::new(vec![2.0, 3.0, 2.0]).loss_at_return_period(2.0);
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(expected));
    }

    #[test]
    fn loss_range_scan_is_block_count_invariant() {
        let store = store();
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_in(1.0, 5.0)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        let reference = {
            let mut partial = PartialAggregate::identity(plan.num_groups(), plan.num_trials());
            for (&segment, &group) in plan.segments.iter().zip(&plan.groups) {
                partial.accumulate(
                    group,
                    crate::store::SegmentSource::year_losses(&store, segment),
                    crate::store::SegmentSource::max_occ_losses(&store, segment),
                );
            }
            partial.retain_by_year(plan.loss.unwrap());
            partial
        };
        for threads in [1, 2, 3, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let scanned = pool.install(|| scan(&store, &plan));
            assert_eq!(scanned, reference, "threads={threads}");
        }
    }

    #[test]
    fn combine_overlapping_is_elementwise() {
        let mut a = PartialAggregate::identity(1, 2);
        a.accumulate(0, &[1.0, 2.0], &[1.0, 5.0]);
        let mut b = PartialAggregate::identity(1, 2);
        b.accumulate(0, &[10.0, 20.0], &[3.0, 4.0]);
        let c = a.combine_overlapping(&b);
        assert_eq!(c.year[0], vec![11.0, 22.0]);
        assert_eq!(c.maxocc[0], vec![3.0, 5.0]);
    }

    #[test]
    fn trial_blocks_partition_exactly() {
        for (start, end, parts) in [(0, 10, 3), (5, 6, 4), (0, 0, 2), (2, 100, 7)] {
            let blocks = trial_blocks(start, end, parts);
            let total: usize = blocks.iter().map(|(s, e)| e - s).sum();
            assert_eq!(total, end - start);
            let mut at = start;
            for (s, e) in blocks {
                assert_eq!(s, at);
                assert!(e > s);
                at = e;
            }
            assert_eq!(at, end.max(start));
        }
    }
}
