//! Fused multi-query partial scans: one shard-window walk for the whole
//! batch vs one walk per query.
//!
//! The workload is the tentpole's acceptance shape: 50 distinct queries
//! (10 unique plans × 5 aggregate variants) over a 4-window trial-axis
//! catalog.  The per-query path scans `queries × windows = 200` times;
//! the fused planner groups the batch by `(shard, clipped window)` and
//! scans each window **once**, so the served batch performs at most 8
//! shard scans (4 per batch, tolerating one batch split).  The
//! `fused_equivalence` target asserts bit-identity first — every fused
//! partial equals its lone per-query scan and every stitched result
//! equals the in-memory session — then gates the fused path at ≥3× the
//! per-query throughput and pins the `fused_partial_scans` counter.
//! `CATRISK_BENCH_QUICK=1` shrinks the workload for smoke runs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::Region;
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_riskquery::{
    combine_trial_partial_refs, scan_trial_partial, scan_trial_partials_fused, QueryPlan,
    TrialPartial,
};
use catrisk_riskserve::{Server, ServerConfig, ShardAxis, StoreCatalog};
use catrisk_riskstore::{StoreOptions, StoreWriter};
use catrisk_simkit::rng::RngFactory;

fn quick() -> bool {
    std::env::var("CATRISK_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

fn trials() -> usize {
    if quick() {
        4_000
    } else {
        20_000
    }
}

/// A CI-sized production-shaped store (same construction as the
/// trial-sharded bench, so the reports are comparable).
fn build_store(trials: usize, books: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("fused-partials-bench");
    let mut store = ResultStore::new(trials);
    let mut segment = 0u64;
    for book in 0..books {
        let region = Region::ALL[book % Region::ALL.len()];
        let lob = LineOfBusiness::ALL[book % LineOfBusiness::ALL.len()];
        for peril in region.active_perils() {
            let mut rng = factory.stream(segment);
            segment += 1;
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(LayerId(book as u32), *peril, region, lob);
            store
                .ingest(&YearLossTable::new(LayerId(book as u32), outcomes), meta)
                .expect("ingest");
        }
    }
    store
}

/// 50 distinct full-axis queries that dedup to 10 unique plans: five
/// grouping shapes × (no clip | a per-shape loss threshold), each asked
/// with five different aggregate sets.  This is the dashboard-fleet
/// shape the fusion exists for — many queries, few distinct scans.
fn query_fleet(count: usize) -> Vec<Query> {
    let dims = [
        None,
        Some(Dimension::Region),
        Some(Dimension::Peril),
        Some(Dimension::Lob),
        Some(Dimension::Layer),
    ];
    (0..count)
        .map(|index| {
            let mut builder = QueryBuilder::new();
            if let Some(dim) = dims[index % dims.len()] {
                builder = builder.group_by(dim);
            }
            let shape = index % 10;
            if shape >= 5 {
                builder = builder.loss_at_least(1.0e5 * (shape - 4) as f64);
            }
            let builder = match index / 10 {
                0 => builder.aggregate(Aggregate::Mean),
                1 => builder.aggregate(Aggregate::Tvar { level: 0.99 }),
                2 => builder.aggregate(Aggregate::Var { level: 0.99 }),
                3 => builder.aggregate(Aggregate::MaxLoss).aggregate(Aggregate::AttachProb),
                _ => builder.aggregate(Aggregate::EpCurve {
                    basis: Basis::Aep,
                    points: 8,
                }),
            };
            builder.build().expect("query")
        })
        .collect()
}

/// Equal trial cuts: the 4 windows the catalog (and the raw-scan
/// benches) shard the axis into.
fn window_cuts(trials: usize, windows: usize) -> Vec<(usize, usize)> {
    let per_window = trials / windows;
    let extra = trials % windows;
    let mut cuts = Vec::with_capacity(windows);
    let mut start = 0usize;
    for window in 0..windows {
        let end = start + per_window + usize::from(window < extra);
        cuts.push((start, end));
        start = end;
    }
    cuts
}

/// Cuts the base store into `windows` trial shard files and opens them
/// as a trial-axis catalog.
fn write_trial_catalog(
    base: &ResultStore,
    windows: usize,
    tag: &str,
) -> (Vec<PathBuf>, StoreCatalog) {
    let mut paths = Vec::new();
    for (window, &(start, end)) in window_cuts(base.num_trials(), windows).iter().enumerate() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-fused-bench-{}-{tag}-{windows}-{window}.clm",
            std::process::id()
        ));
        let mut writer = StoreWriter::create_with(
            &path,
            end - start,
            StoreOptions {
                trial_offset: start as u64,
                ..StoreOptions::default()
            },
        )
        .expect("create window shard");
        for segment in 0..base.num_segments() {
            writer
                .append_segment(
                    *base.meta(segment),
                    &base.year_losses(segment)[start..end],
                    &base.max_occ_losses(segment)[start..end],
                )
                .expect("append");
        }
        writer.finish().expect("commit window shard");
        paths.push(path);
    }
    let catalog = StoreCatalog::open(&paths).expect("open trial catalog");
    assert_eq!(catalog.axis(), ShardAxis::Trial);
    (paths, catalog)
}

fn remove(paths: &[PathBuf]) {
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

/// All 50 queries' partials for every window through the fused scan:
/// 4 walks total.
fn fused_partials(
    store: &ResultStore,
    plans: &[QueryPlan],
    cuts: &[(usize, usize)],
) -> Vec<Vec<TrialPartial>> {
    let plan_refs: Vec<&QueryPlan> = plans.iter().collect();
    let mut parts: Vec<Vec<TrialPartial>> = (0..plans.len()).map(|_| Vec::new()).collect();
    for &(start, end) in cuts {
        for (per_query, partial) in parts
            .iter_mut()
            .zip(scan_trial_partials_fused(store, &plan_refs, start, end))
        {
            per_query.push(partial);
        }
    }
    parts
}

/// The same partials through the lone per-query scan: `plans × windows`
/// walks.
fn solo_partials(
    store: &ResultStore,
    plans: &[QueryPlan],
    cuts: &[(usize, usize)],
) -> Vec<Vec<TrialPartial>> {
    plans
        .iter()
        .map(|plan| {
            cuts.iter()
                .map(|&(start, end)| scan_trial_partial(store, plan, start, end))
                .collect()
        })
        .collect()
}

fn fused_partials_scan(c: &mut Criterion) {
    let store = build_store(trials(), 8, 2012);
    let queries = query_fleet(50);
    let plans: Vec<QueryPlan> = queries
        .iter()
        .map(|query| QueryPlan::new(&store, query).expect("plan"))
        .collect();
    let cuts = window_cuts(store.num_trials(), 4);

    let mut group = c.benchmark_group("fused_partials");
    group.sample_size(10);
    group.bench_function("fused_50_queries_4_windows", |b| {
        b.iter(|| criterion::black_box(fused_partials(&store, &plans, &cuts)))
    });
    group.bench_function("per_query_50_queries_4_windows", |b| {
        b.iter(|| criterion::black_box(solo_partials(&store, &plans, &cuts)))
    });
    group.finish();
}

/// Prints the acceptance numbers and pins the contracts: bit-identity
/// first (fused ≡ per-query ≡ the in-memory session), then the ≥3×
/// throughput gate, then the served batch's ≤8 shard scans for the
/// 50 × 4 workload.
fn fused_equivalence(_c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_fleet(50);
    let expected = QuerySession::new(&*base).run(&queries).expect("reference");
    let plans: Vec<QueryPlan> = queries
        .iter()
        .map(|query| QueryPlan::new(&*base, query).expect("plan"))
        .collect();
    let cuts = window_cuts(base.num_trials(), 4);

    // Bit-equality is asserted before any throughput claim.  The gate
    // compares each path's best of three runs, so a noisy-neighbour
    // stall on CI cannot fake (or hide) a regression.
    let mut fused = Vec::new();
    let mut fused_elapsed = Duration::MAX;
    let mut solo = Vec::new();
    let mut solo_elapsed = Duration::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        fused = fused_partials(&base, &plans, &cuts);
        fused_elapsed = fused_elapsed.min(started.elapsed());
        let started = Instant::now();
        solo = solo_partials(&base, &plans, &cuts);
        solo_elapsed = solo_elapsed.min(started.elapsed());
    }
    assert_eq!(
        fused, solo,
        "fused partials must be bit-identical to the per-query scans"
    );
    for ((query, parts), expected) in queries.iter().zip(&fused).zip(&expected) {
        let refs: Vec<&TrialPartial> = parts.iter().collect();
        assert_eq!(
            &combine_trial_partial_refs(query, &refs).expect("stitch"),
            expected,
            "stitched fused partials must match the in-memory session"
        );
    }
    let speedup = solo_elapsed.as_secs_f64() / fused_elapsed.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 3.0,
        "fused scan must be >=3x the per-query path, got {speedup:.2}x \
         (fused {fused_elapsed:?} vs per-query {solo_elapsed:?})"
    );

    // The served batch: 50 queries, 4 windows, at most 8 shard scans
    // (one per window per batch, tolerating one batch split).
    let (paths, catalog) = write_trial_catalog(&base, 4, "serve");
    let server = Server::new(
        catalog,
        ServerConfig {
            max_batch: 64,
            batch_window: Duration::from_millis(50),
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = queries
        .iter()
        .map(|query| server.submit(query.clone()).expect("admitted"))
        .collect();
    for (ticket, expected) in tickets.into_iter().zip(&expected) {
        assert_eq!(
            &ticket.wait().expect("served").result,
            expected,
            "served fused batch diverged from the in-memory session"
        );
    }
    let stats = server.stats();
    assert_eq!(
        stats.partial_misses,
        (queries.len() * cuts.len()) as u64,
        "every (query, window) pair misses cold: {stats:?}"
    );
    assert!(
        stats.fused_partial_scans <= 8,
        "50 queries x 4 windows must fuse to at most 8 shard scans: {stats:?}"
    );
    println!(
        "fused_equivalence: {} queries x {} windows bit-identical; \
         {} fused shard scans answered {} partial misses; \
         fused scan {:.1}x the per-query path ({:?} vs {:?})",
        queries.len(),
        cuts.len(),
        stats.fused_partial_scans,
        stats.partial_misses,
        speedup,
        fused_elapsed,
        solo_elapsed
    );
    server.shutdown();
    remove(&paths);
}

criterion_group!(benches, fused_partials_scan, fused_equivalence);
criterion_main!(benches);
