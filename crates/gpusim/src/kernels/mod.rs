//! The aggregate-analysis kernels and the device-side analysis driver.
//!
//! Both kernels launch **one thread per trial**, exactly as the paper's
//! implementations do, and both produce Year Loss Tables bit-identical to
//! the CPU engines (this is asserted by the cross-engine integration tests).
//! They differ only in how intermediate per-occurrence losses are staged:
//!
//! * [`BasicAreKernel`] keeps every intermediate (`lx_d`, `lox_d`) in global
//!   memory, "adding considerable overhead" (paper §III.B.2);
//! * [`ChunkedAreKernel`] stages intermediates through per-block shared
//!   memory in fixed-size chunks and reads the financial/layer terms from
//!   constant memory.

mod basic;
mod chunked;

pub use basic::BasicAreKernel;
pub use chunked::ChunkedAreKernel;

use catrisk_engine::input::AnalysisInput;
use catrisk_engine::ylt::{AnalysisOutput, YearLossTable};

use crate::executor::{Executor, LaunchResult};
use crate::kernel::LaunchConfig;
use crate::Result;

/// Which kernel variant the device-side analysis should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVariant {
    /// All intermediates in global memory.
    Basic,
    /// Intermediates staged through shared memory in chunks of the given size.
    Chunked {
        /// Events staged per chunk.
        chunk_size: usize,
    },
}

/// Runs a full aggregate analysis on the simulated device: one kernel launch
/// per layer.  Returns the assembled output (identical to the CPU engines)
/// plus the per-launch simulation results (traffic counters and simulated
/// timings), whose total simulated time is what the Fig. 4–6 harnesses
/// report.
pub fn run_gpu_analysis(
    executor: &Executor,
    input: &AnalysisInput,
    variant: GpuVariant,
    config: LaunchConfig,
) -> Result<(AnalysisOutput, Vec<LaunchResult>)> {
    let mut ylts = Vec::with_capacity(input.layers().len());
    let mut launches = Vec::with_capacity(input.layers().len());
    for layer_index in 0..input.layers().len() {
        let (outcomes, launch) = match variant {
            GpuVariant::Basic => {
                let kernel = BasicAreKernel::new(input, layer_index);
                let launch = executor.launch(&kernel, config)?;
                (kernel.into_outcomes(), launch)
            }
            GpuVariant::Chunked { chunk_size } => {
                let kernel = ChunkedAreKernel::new(input, layer_index, chunk_size);
                let launch = executor.launch(&kernel, config)?;
                (kernel.into_outcomes(), launch)
            }
        };
        ylts.push(YearLossTable::new(input.layers()[layer_index].id, outcomes));
        launches.push(launch);
    }
    Ok((AnalysisOutput::new(ylts), launches))
}

/// Total simulated seconds across a set of launches.
pub fn total_simulated_seconds(launches: &[LaunchResult]) -> f64 {
    launches.iter().map(|l| l.simulated_seconds()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::input::AnalysisInputBuilder;
    use catrisk_engine::sequential::SequentialEngine;
    use catrisk_finterms::terms::{FinancialTerms, LayerTerms};

    fn small_input() -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        let trials: Vec<Vec<(u32, f32)>> = (0..300)
            .map(|t: u32| {
                (0..(t % 17))
                    .map(|i| ((t.wrapping_mul(13).wrapping_add(i * 5)) % 2_000, i as f32))
                    .collect()
            })
            .collect();
        b.set_yet_from_trials(2_000, trials);
        let pairs_a: Vec<(u32, f64)> = (0..2_000)
            .step_by(3)
            .map(|e| (e, 500.0 + 3.0 * f64::from(e)))
            .collect();
        let pairs_b: Vec<(u32, f64)> = (0..2_000)
            .step_by(7)
            .map(|e| (e, 200.0 + f64::from(e)))
            .collect();
        let a = b.add_elt(
            &pairs_a,
            FinancialTerms::new(100.0, 5_000.0, 0.9, 1.0).unwrap(),
        );
        let c = b.add_elt(&pairs_b, FinancialTerms::pass_through());
        b.add_layer_over(
            &[a, c],
            LayerTerms::new(500.0, 3_000.0, 1_000.0, 20_000.0).unwrap(),
        );
        b.add_layer_over(&[a], LayerTerms::unlimited());
        b.build().unwrap()
    }

    #[test]
    fn both_variants_match_the_cpu_engine() {
        let input = small_input();
        let reference = SequentialEngine::new().run(&input);
        let executor = Executor::tesla_c2075();
        let config = LaunchConfig::with_block_size(256);

        let (basic_out, basic_launches) =
            run_gpu_analysis(&executor, &input, GpuVariant::Basic, config).unwrap();
        assert_eq!(reference.max_abs_difference(&basic_out), 0.0);
        assert_eq!(basic_launches.len(), 2);

        let (chunked_out, chunked_launches) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Chunked { chunk_size: 4 },
            config,
        )
        .unwrap();
        assert_eq!(reference.max_abs_difference(&chunked_out), 0.0);
        assert!(total_simulated_seconds(&chunked_launches) > 0.0);
    }

    #[test]
    fn chunked_variant_is_simulated_faster_than_basic() {
        let input = small_input();
        let executor = Executor::tesla_c2075();
        let (_, basic) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Basic,
            LaunchConfig::with_block_size(256),
        )
        .unwrap();
        let (_, chunked) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Chunked { chunk_size: 4 },
            LaunchConfig::with_block_size(64),
        )
        .unwrap();
        let t_basic = total_simulated_seconds(&basic);
        let t_chunked = total_simulated_seconds(&chunked);
        assert!(
            t_chunked < t_basic,
            "chunked {t_chunked} should beat basic {t_basic} (paper: 38.47s vs 22.72s)"
        );
    }
}
