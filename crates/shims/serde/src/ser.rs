//! Serialization half of the shim.

use crate::value::{to_value, Value};

/// A value that can be serialized into the shim's data model.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Consumer of serialized values.
///
/// Unlike real serde this is value-based: implementors receive one fully
/// built [`Value`] tree.  The `serialize_some` / `serialize_none` helpers
/// exist because hand-written `#[serde(with = "...")]` modules in this
/// workspace call them.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type (never produced by the built-in serializers).
    type Error;

    /// Consumes a fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes `Some(value)`; the shim drops the `Some` wrapper exactly
    /// like serde's JSON representation of options.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(to_value(value))
    }

    /// Serializes `None` as null.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    serializer.serialize_value(Value::U64(v as u64))
                } else {
                    serializer.serialize_value(Value::I64(v))
                }
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Seq(vec![$(to_value(&self.$idx)),+]))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
