//! The sequential reference engine.
//!
//! This is the paper's "basic algorithm" run on a single core: the outer
//! loop over layers, the loop over trials, and the per-trial kernel of
//! [`crate::steps`].  It doubles as the correctness reference for every
//! other engine variant and, in its instrumented form, produces the phase
//! breakdown of Fig. 6b.

use catrisk_simkit::timing::{PhaseTimer, Stopwatch};

use crate::input::AnalysisInput;
use crate::phases::{PHASE_EVENT_FETCH, PHASE_FINANCIAL_TERMS, PHASE_LAYER_TERMS, PHASE_LOOKUP};
use crate::steps;
use crate::ylt::{AnalysisOutput, TrialOutcome, YearLossTable};

/// Single-threaded aggregate analysis engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialEngine;

impl SequentialEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self
    }

    /// Runs the analysis: one YLT per layer.
    pub fn run(&self, input: &AnalysisInput) -> AnalysisOutput {
        let yet = input.yet();
        let mut scratch = Vec::new();
        let ylts = input
            .layers()
            .iter()
            .map(|layer| {
                let elts = input.layer_elts(layer);
                let outcomes: Vec<TrialOutcome> = (0..yet.num_trials())
                    .map(|t| {
                        steps::trial_outcome(
                            &elts,
                            &layer.terms,
                            yet.trial(t).occurrences,
                            &mut scratch,
                        )
                    })
                    .collect();
                YearLossTable::new(layer.id, outcomes)
            })
            .collect();
        AnalysisOutput::new(ylts)
    }

    /// Runs the analysis with per-phase instrumentation.
    ///
    /// The computation is organised in the paper's pass structure (fetch
    /// events, look up each ELT, apply financial terms, apply layer terms)
    /// so each pass can be timed separately; the produced Year Loss Table is
    /// identical to [`SequentialEngine::run`] because the per-occurrence
    /// accumulation order is unchanged.
    pub fn run_instrumented(&self, input: &AnalysisInput) -> (AnalysisOutput, PhaseTimer) {
        let yet = input.yet();
        let mut timer = PhaseTimer::new();
        // Scratch buffers reused across trials.
        let mut events: Vec<u32> = Vec::new();
        let mut gross: Vec<f64> = Vec::new(); // [elt][event] row-major
        let mut occurrence_losses: Vec<f64> = Vec::new();

        let mut ylts = Vec::with_capacity(input.layers().len());
        for layer in input.layers() {
            let elts = input.layer_elts(layer);
            let mut outcomes = Vec::with_capacity(yet.num_trials());
            for t in 0..yet.num_trials() {
                let trial = yet.trial(t).occurrences;

                // Phase 1: fetch the trial's events from the YET.
                let sw = Stopwatch::start();
                events.clear();
                events.extend(trial.iter().map(|o| o.event));
                timer.add(PHASE_EVENT_FETCH, sw.elapsed());

                // Phase 2: look up each event's loss in every covered ELT.
                let sw = Stopwatch::start();
                gross.clear();
                gross.resize(elts.len() * events.len(), 0.0);
                for (e_idx, elt) in elts.iter().enumerate() {
                    let row = &mut gross[e_idx * events.len()..(e_idx + 1) * events.len()];
                    for (slot, &event) in row.iter_mut().zip(&events) {
                        *slot = elt.lookup.get(event);
                    }
                }
                timer.add(PHASE_LOOKUP, sw.elapsed());

                // Phase 3: financial terms + accumulation across ELTs.
                let sw = Stopwatch::start();
                occurrence_losses.clear();
                occurrence_losses.resize(events.len(), 0.0);
                for (e_idx, elt) in elts.iter().enumerate() {
                    let row = &gross[e_idx * events.len()..(e_idx + 1) * events.len()];
                    for (slot, &g) in occurrence_losses.iter_mut().zip(row) {
                        if g > 0.0 {
                            *slot += elt.terms.apply(g);
                        }
                    }
                }
                timer.add(PHASE_FINANCIAL_TERMS, sw.elapsed());

                // Phase 4: occurrence and aggregate layer terms.
                let sw = Stopwatch::start();
                let outcome = steps::apply_layer_terms(&mut occurrence_losses, &layer.terms);
                timer.add(PHASE_LAYER_TERMS, sw.elapsed());

                outcomes.push(outcome);
            }
            ylts.push(YearLossTable::new(layer.id, outcomes));
        }
        (AnalysisOutput::new(ylts), timer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AnalysisInputBuilder;
    use catrisk_finterms::terms::{FinancialTerms, LayerTerms};

    fn small_input() -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        b.set_yet_from_trials(
            50,
            vec![
                vec![(1, 10.0), (3, 40.0), (7, 100.0)],
                vec![(2, 5.0)],
                vec![],
                vec![(1, 1.0), (1, 2.0), (3, 3.0), (9, 4.0)],
            ],
        );
        let a = b.add_elt(
            &[(1, 100.0), (3, 400.0), (9, 30.0)],
            FinancialTerms::new(10.0, 1_000.0, 0.8, 1.0).unwrap(),
        );
        let c = b.add_elt(&[(2, 75.0), (7, 900.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[a, c], LayerTerms::new(50.0, 400.0, 100.0, 600.0).unwrap());
        b.add_layer_over(&[a], LayerTerms::unlimited());
        b.build().unwrap()
    }

    #[test]
    fn run_produces_one_ylt_per_layer() {
        let input = small_input();
        let output = SequentialEngine::new().run(&input);
        assert_eq!(output.num_layers(), 2);
        assert_eq!(output.layer(0).num_trials(), 4);
        assert_eq!(output.layer(1).num_trials(), 4);
        // Layer 2 (unlimited terms over ELT a): trial 0 sees events 1 and 3 =
        // (100-10)*0.8 + (400-10)*0.8 = 72 + 312 = 384.
        let losses = output.layer(1).losses();
        assert!((losses[0] - 384.0).abs() < 1e-9);
        // Trial 2 is empty.
        assert_eq!(losses[2], 0.0);
        // Trial 3 sees event 1 twice and events 3, 9: 72 + 72 + 312 + 16 = 472.
        assert!((losses[3] - 472.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trial_has_zero_loss() {
        let input = small_input();
        let output = SequentialEngine::new().run(&input);
        for ylt in output.layers() {
            assert_eq!(ylt.outcomes()[2].year_loss, 0.0);
            assert_eq!(ylt.outcomes()[2].nonzero_events, 0);
        }
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        let input = small_input();
        let engine = SequentialEngine::new();
        let plain = engine.run(&input);
        let (instrumented, timer) = engine.run_instrumented(&input);
        assert_eq!(plain.max_abs_difference(&instrumented), 0.0);
        // All four phases were recorded.
        for phase in crate::phases::ALL_PHASES {
            assert!(
                timer.get(phase) > std::time::Duration::ZERO,
                "{phase} not recorded"
            );
        }
    }

    #[test]
    fn layer_terms_reduce_losses() {
        let input = small_input();
        let output = SequentialEngine::new().run(&input);
        // Layer 0 has real terms over a superset of ELT a's coverage, so each
        // trial's loss must not exceed the aggregate limit.
        for outcome in output.layer(0).outcomes() {
            assert!(outcome.year_loss <= 600.0);
            assert!(outcome.max_occurrence_loss <= 400.0);
        }
    }
}
