//! Latency accounting and server counters.

use std::sync::Arc;

use catrisk_telemetry::{Counter, Gauge, Registry};
use serde::{Deserialize, Serialize};

/// Per-request timing attribution, attached to every successful reply.
///
/// `queue_micros` covers admission to batch-execution start — it includes
/// the batch window the scheduler deliberately held the request for.
/// `exec_micros` is the wall-clock of the fused batch scan the request rode
/// in (shared by every request of the batch, not divided among them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTimings {
    /// Microseconds between `submit` and the start of the batch execution.
    pub queue_micros: u64,
    /// Microseconds the batch execution took.
    pub exec_micros: u64,
    /// Number of requests coalesced into the batch this request rode in.
    pub batch_size: u32,
}

/// The server counters, as lock-free handles registered in the server's
/// metric [`Registry`] — the same values surface both as the legacy
/// [`StatsSnapshot`] (`stats` command) and through the registry's
/// `metrics` exposition, from one set of atomics.  Maxima are gauges
/// (Prometheus semantics for non-monotonic values); everything else is a
/// monotonic counter.
#[derive(Debug)]
pub(crate) struct Counters {
    pub submitted: Arc<Counter>,
    pub rejected: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub largest_batch: Arc<Gauge>,
    pub max_queue_depth: Arc<Gauge>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub partial_hits: Arc<Counter>,
    pub partial_misses: Arc<Counter>,
    pub refreshes: Arc<Counter>,
    pub traces_started: Arc<Counter>,
    pub traces_retained: Arc<Counter>,
}

impl Counters {
    /// Registers every counter under its [`StatsSnapshot`] field name and
    /// returns the resolved handles.
    pub fn register(registry: &Registry) -> Self {
        Self {
            submitted: registry.counter("submitted"),
            rejected: registry.counter("rejected"),
            completed: registry.counter("completed"),
            failed: registry.counter("failed"),
            batches: registry.counter("batches"),
            largest_batch: registry.gauge("largest_batch"),
            max_queue_depth: registry.gauge("max_queue_depth"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            partial_hits: registry.counter("partial_hits"),
            partial_misses: registry.counter("partial_misses"),
            refreshes: registry.counter("refreshes"),
            traces_started: registry.counter("traces_started"),
            traces_retained: registry.counter("traces_retained"),
        }
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            batches: self.batches.get(),
            largest_batch: self.largest_batch.get().max(0) as u64,
            max_queue_depth: self.max_queue_depth.get().max(0) as u64,
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            partial_hits: self.partial_hits.get(),
            partial_misses: self.partial_misses.get(),
            refreshes: self.refreshes.get(),
            traces_started: self.traces_started.get(),
            traces_retained: self.traces_retained.get(),
        }
    }
}

/// A point-in-time copy of the server counters (the `stats` protocol
/// command returns this as JSON).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (`Overloaded`).
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error after admission.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub largest_batch: u64,
    /// Deepest queue observed at submit time.
    pub max_queue_depth: u64,
    /// Unique batch queries answered from the generation-keyed result
    /// cache without scanning.  Post-v1 field: defaults to 0 when absent,
    /// so a newer client can parse an older server's snapshot.
    #[serde(default)]
    pub cache_hits: u64,
    /// Unique batch queries that had to scan (then populated the cache).
    /// Post-v1 field, defaults to 0.
    #[serde(default)]
    pub cache_misses: u64,
    /// Per-shard partial aggregates reused from the partial cache on a
    /// trial-sharded catalog: each hit is one shard's trial window that
    /// did **not** need rescanning for a query that missed the result
    /// cache.  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub partial_hits: u64,
    /// Per-shard trial windows that had to be rescanned (then populated
    /// the partial cache).  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub partial_misses: u64,
    /// Store refreshes that made newly committed segments visible.
    /// Post-v1 field, defaults to 0.
    #[serde(default)]
    pub refreshes: u64,
    /// Requests admitted with a trace id assigned.  With sampling set to
    /// "always" (`trace_sample_every = 1`) this equals `submitted`
    /// exactly — the id is allocated inside the admission critical
    /// section, next to the `submitted` bump.  Post-v1 field, defaults
    /// to 0.
    #[serde(default)]
    pub traces_started: u64,
    /// Completed traces retained by the trace store (recency ring or
    /// slowest pool).  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub traces_retained: u64,
}

impl StatsSnapshot {
    /// Mean requests per executed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }

    /// Fraction of unique batch queries answered from the result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-shard trial windows served from cached partials
    /// (trial-sharded catalogs only; 0 when the partial path never ran).
    pub fn partial_hit_rate(&self) -> f64 {
        let total = self.partial_hits + self.partial_misses;
        if total == 0 {
            0.0
        } else {
            self.partial_hits as f64 / total as f64
        }
    }
}

/// The `p`-th percentile (0–100) of an **ascending-sorted** sample set,
/// by the nearest-rank method.  Returns 0 for an empty set.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn stats_snapshot_parses_v1_wire_shape() {
        // A protocol-v1 server sends only the seven original counters; every
        // later field must default to 0 instead of failing the parse.
        let v1 = r#"{"submitted":5,"rejected":1,"completed":4,"failed":0,
                     "batches":2,"largest_batch":3,"max_queue_depth":2}"#;
        let snap: StatsSnapshot = serde_json::from_str(v1).expect("v1 stats must parse");
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.largest_batch, 3);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(snap.partial_hits, 0);
        assert_eq!(snap.partial_misses, 0);
        assert_eq!(snap.refreshes, 0);
        assert_eq!(snap.traces_started, 0);
        assert_eq!(snap.traces_retained, 0);
    }

    #[test]
    fn snapshot_mean_batch() {
        let registry = Registry::new();
        let counters = Counters::register(&registry);
        assert_eq!(counters.snapshot().mean_batch(), 0.0);
        counters.completed.add(30);
        counters.batches.add(10);
        counters.largest_batch.bump_max(5);
        counters.largest_batch.bump_max(3);
        let snap = counters.snapshot();
        assert_eq!(snap.mean_batch(), 3.0);
        assert_eq!(snap.largest_batch, 5);
        // The same atomics surface through the registry's exposition.
        let metrics = registry.snapshot();
        assert_eq!(metrics.counter("completed"), Some(30));
        assert_eq!(metrics.gauge("largest_batch"), Some(5));
    }
}
