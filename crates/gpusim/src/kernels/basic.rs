//! The basic aggregate-analysis kernel: all intermediates in global memory.

use std::sync::OnceLock;

use catrisk_engine::input::{AnalysisInput, PreparedElt};
use catrisk_engine::steps;
use catrisk_engine::ylt::TrialOutcome;
use catrisk_finterms::terms::LayerTerms;

use crate::kernel::{Kernel, ThreadTracker};

/// The paper's basic GPU implementation of the aggregate analysis for one
/// layer: one thread per trial, every data structure (the YET, the direct
/// access tables, and the intermediate per-occurrence loss vectors `lx_d`
/// and `lox_d`) resident in global memory.
///
/// "In the basic implementation, `lx_d` and `lox_d` are represented in the
/// global memory and therefore, in each step while applying the financial
/// and layer terms the global memory has to be accessed and updated adding
/// considerable overhead" (paper §III.B.2).
pub struct BasicAreKernel<'a> {
    input: &'a AnalysisInput,
    elts: Vec<&'a PreparedElt>,
    terms: LayerTerms,
    outcomes: Vec<OnceLock<TrialOutcome>>,
}

impl<'a> BasicAreKernel<'a> {
    /// Creates the kernel for one layer of the analysis.
    pub fn new(input: &'a AnalysisInput, layer_index: usize) -> Self {
        let layer = &input.layers()[layer_index];
        let elts = input.layer_elts(layer);
        let outcomes = (0..input.num_trials()).map(|_| OnceLock::new()).collect();
        Self {
            input,
            elts,
            terms: layer.terms,
            outcomes,
        }
    }

    /// Extracts the per-trial outcomes after the launch.
    pub fn into_outcomes(self) -> Vec<TrialOutcome> {
        self.outcomes
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_default())
            .collect()
    }
}

impl Kernel for BasicAreKernel<'_> {
    fn name(&self) -> &str {
        "are-basic"
    }

    fn total_threads(&self) -> usize {
        self.input.num_trials()
    }

    fn shared_mem_per_block(&self, _threads_per_block: u32) -> u32 {
        // The basic kernel does not use shared memory.
        0
    }

    fn memory_parallelism(&self) -> f64 {
        // Every intermediate update is a read-modify-write on global memory,
        // serialising the thread's memory operations.
        1.0
    }

    fn execute_thread(&self, tracker: &mut ThreadTracker) {
        let trial_index = tracker.thread_id;
        let trial = self.input.yet().trial(trial_index).occurrences;
        let k = trial.len() as u64;
        let m = self.elts.len() as u64;

        // --- Functional execution (identical arithmetic to the CPU engines).
        let mut scratch = Vec::new();
        let outcome = steps::trial_outcome(&self.elts, &self.terms, trial, &mut scratch);
        self.outcomes[trial_index]
            .set(outcome)
            .expect("each trial is executed exactly once");

        // --- Memory accounting.
        // Trial boundaries.
        tracker.global_read(16);
        // Event fetch: the trial's (event, time) pairs, read once; the L1
        // cache serves the re-reads of later passes.
        for _ in 0..k {
            tracker.global_read(8);
        }
        // Lookup + financial-term pass per ELT: one random lookup per
        // (event, ELT) plus a read-modify-write of the global `lox_d`
        // accumulator.
        for _ in 0..(k * m) {
            tracker.global_read(8); // direct access table lookup
            tracker.global_read(8); // lox_d read
            tracker.global_write(8); // lox_d write
            tracker.compute(6);
        }
        // Layer-term passes over `lox_d` in global memory: occurrence terms,
        // cumulative sum, aggregate terms, differencing, final sum.
        for _ in 0..(5 * k) {
            tracker.global_read(8);
            tracker.compute(3);
        }
        for _ in 0..(4 * k) {
            tracker.global_write(8);
        }
        // Layer terms live in global memory for the basic kernel.
        tracker.global_read(32);
        // Result write.
        tracker.global_write(8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::kernel::LaunchConfig;
    use catrisk_engine::input::AnalysisInputBuilder;
    use catrisk_engine::sequential::SequentialEngine;
    use catrisk_finterms::terms::FinancialTerms;

    fn input() -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        b.set_yet_from_trials(
            100,
            vec![
                vec![(1, 10.0), (3, 40.0), (7, 100.0)],
                vec![(2, 5.0)],
                vec![],
                vec![(1, 1.0), (3, 3.0), (9, 4.0)],
            ],
        );
        let a = b.add_elt(
            &[(1, 100.0), (3, 400.0), (9, 30.0)],
            FinancialTerms::pass_through(),
        );
        let c = b.add_elt(&[(2, 75.0), (7, 900.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[a, c], LayerTerms::per_occurrence(50.0, 500.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn kernel_matches_cpu_engine() {
        let input = input();
        let reference = SequentialEngine::new().run(&input);
        let kernel = BasicAreKernel::new(&input, 0);
        let executor = Executor::tesla_c2075();
        executor
            .launch(&kernel, LaunchConfig::with_block_size(32))
            .unwrap();
        let outcomes = kernel.into_outcomes();
        assert_eq!(outcomes.len(), 4);
        for (a, b) in outcomes.iter().zip(reference.layer(0).outcomes()) {
            assert_eq!(a.year_loss, b.year_loss);
            assert_eq!(a.max_occurrence_loss, b.max_occurrence_loss);
        }
    }

    #[test]
    fn traffic_scales_with_events_and_elts() {
        let input = input();
        let kernel = BasicAreKernel::new(&input, 0);
        let executor = Executor::tesla_c2075();
        let result = executor
            .launch(&kernel, LaunchConfig::with_block_size(32))
            .unwrap();
        // 7 events total, 2 ELTs: at least k*m*3 = 42 global accesses for the
        // lookup pass alone, plus fetches and layer passes.
        assert!(
            result.counters.global_reads > 60,
            "{}",
            result.counters.global_reads
        );
        assert_eq!(
            result.counters.shared_accesses, 0,
            "basic kernel uses no shared memory"
        );
        assert!(result.counters.compute_ops > 0);
    }

    #[test]
    fn empty_trial_default_outcome() {
        let input = input();
        let kernel = BasicAreKernel::new(&input, 0);
        Executor::tesla_c2075()
            .launch(&kernel, LaunchConfig::with_block_size(32))
            .unwrap();
        let outcomes = kernel.into_outcomes();
        assert_eq!(outcomes[2].year_loss, 0.0);
        assert_eq!(outcomes[2].nonzero_events, 0);
    }
}
