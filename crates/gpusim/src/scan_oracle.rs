//! Bit-identity oracle for the CPU scan kernels in `catrisk-riskquery`.
//!
//! The [`executor`](crate::executor) layer already checks the simulated
//! device kernels bit-for-bit against the sequential CPU engine (every
//! launch asserts `max_abs_difference == 0.0`).  This module extends
//! that oracle contract to the host-side vectorized scan kernels: every
//! SIMD lane width must reproduce the scalar reference **bit-for-bit**
//! on the fused add/max accumulation, the lazy first-segment
//! initialisation, and the loss-range compaction — and whole query
//! results must stay bit-identical across thread counts, scheduling
//! granularities, and lane widths.
//!
//! The kernel-level checks compare raw `f64::to_bits`, so even the
//! `±0.0` ties that value equality would hide are pinned.  The inputs
//! deliberately mix zeros, `-0.0`, denormals and huge magnitudes, at
//! lengths that exercise every vector tail path.

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::kernel::{self, SimdLevel};
use catrisk_riskquery::prelude::*;

/// What one [`verify_scan_kernels`] pass covered.
#[derive(Debug, Clone)]
pub struct ScanOracleReport {
    /// Lane widths verified against the scalar reference on this
    /// machine.
    pub levels: Vec<SimdLevel>,
    /// `(slice length, lane width)` kernel cases checked bit-for-bit.
    pub kernel_cases: usize,
    /// `(query, threads, granularity, lane width)` whole-pipeline
    /// configurations checked against the sequential reference.
    pub pipeline_cases: usize,
}

/// Slice lengths covering every lane-width tail path (0..=8 remainders)
/// plus a few cache-line-straddling sizes.
const LENGTHS: [usize; 16] = [0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 129, 1021];

/// Deterministic pseudo-random losses with awkward cases mixed in:
/// zeros, `-0.0`, denormals and huge magnitudes.
fn loss_slices(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = (state >> 11) as f64 / (1u64 << 53) as f64;
        match state % 11 {
            0 => 0.0,
            1 => -0.0,
            2 => 5e-324,
            3 => 1.0e18 * x,
            _ => 1.0e6 * x,
        }
    };
    (
        (0..n).map(|_| next()).collect(),
        (0..n).map(|_| next()).collect(),
    )
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Restores the global kernel knobs on scope exit, so a failed check
/// cannot leak a forced lane width or granularity into the rest of the
/// process.
struct RestoreKnobs;

impl Drop for RestoreKnobs {
    fn drop(&mut self) {
        kernel::force_level(None);
        kernel::set_scan_chunks_per_thread(None);
    }
}

/// Verifies the scan kernels bit-for-bit, the same contract the
/// simulated device kernels are held to.
///
/// Two layers:
///
/// 1. **Kernel slices** — for every available [`SimdLevel`] and every
///    tail-exercising length, the fused accumulate must match the
///    scalar reference on raw bits; lazy initialisation must match
///    accumulating into the zero identity (including `-0.0 → +0.0`
///    normalisation); the branchless compaction must match the branchy
///    reference.
/// 2. **Whole pipeline** — a mixed query batch over a generated store
///    must return identical results for every combination of thread
///    count (1/2/8), scan granularity (1 = the old static split, and
///    the self-scheduling default) and lane width.
///
/// Returns what was covered, or the first divergence as an error.
pub fn verify_scan_kernels(seed: u64) -> std::result::Result<ScanOracleReport, String> {
    let levels = kernel::available_levels();
    let mut kernel_cases = 0usize;

    // Layer 1: kernel slices against the scalar reference, on raw bits.
    for (case, &n) in LENGTHS.iter().enumerate() {
        let (year, occ) = loss_slices(n, seed.wrapping_add(case as u64));
        let (acc_year0, acc_occ0) = loss_slices(n, seed.wrapping_add(1000 + case as u64));
        let (mut ref_year, mut ref_occ) = (acc_year0.clone(), acc_occ0.clone());
        kernel::accumulate_fused_at(SimdLevel::Scalar, &mut ref_year, &mut ref_occ, &year, &occ);
        for &level in &levels {
            let (mut got_year, mut got_occ) = (acc_year0.clone(), acc_occ0.clone());
            kernel::accumulate_fused_at(level, &mut got_year, &mut got_occ, &year, &occ);
            if bits(&got_year) != bits(&ref_year) || bits(&got_occ) != bits(&ref_occ) {
                return Err(format!(
                    "accumulate_fused at {} diverges from scalar on length {n}",
                    level.name()
                ));
            }
            kernel_cases += 1;
        }

        // Lazy init ≡ accumulate into the zero identity, bit for bit.
        let (mut init_year, mut init_occ) = (Vec::new(), Vec::new());
        kernel::init_fused(&mut init_year, &mut init_occ, &year, &occ);
        let (mut zero_year, mut zero_occ) = (vec![0.0; n], vec![0.0; n]);
        kernel::accumulate_fused_at(
            SimdLevel::Scalar,
            &mut zero_year,
            &mut zero_occ,
            &year,
            &occ,
        );
        if bits(&init_year) != bits(&zero_year) || bits(&init_occ) != bits(&zero_occ) {
            return Err(format!(
                "init_fused diverges from zero-identity accumulate on length {n}"
            ));
        }
        kernel_cases += 1;

        // Branchless compaction ≡ the branchy reference.
        let range = LossRange {
            min: 1.0e4,
            max: 9.0e5,
        };
        let (mut ref_keep_year, mut ref_keep_occ) = (Vec::new(), Vec::new());
        for (&y, &o) in year.iter().zip(&occ) {
            if range.contains(y) {
                ref_keep_year.push(y);
                ref_keep_occ.push(o);
            }
        }
        let (mut got_year, mut got_occ) = (year.clone(), occ.clone());
        kernel::retain_fused(&mut got_year, &mut got_occ, range);
        if bits(&got_year) != bits(&ref_keep_year) || bits(&got_occ) != bits(&ref_keep_occ) {
            return Err(format!("retain_fused diverges on length {n}"));
        }
        kernel_cases += 1;
    }

    // Layer 2: whole queries across thread counts × granularities ×
    // lane widths, against the single-threaded scalar static reference.
    let store = oracle_store(101, 9, seed);
    let queries = oracle_queries(101);
    let _restore = RestoreKnobs;

    kernel::force_level(Some(SimdLevel::Scalar));
    kernel::set_scan_chunks_per_thread(Some(1));
    let reference_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| e.to_string())?;
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|q| reference_pool.install(|| execute(&store, q).expect("reference query")))
        .collect();

    let mut pipeline_cases = 0usize;
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| e.to_string())?;
        for granularity in [1usize, 4] {
            kernel::set_scan_chunks_per_thread(Some(granularity));
            for &level in &levels {
                kernel::force_level(Some(level));
                for (query, expected) in queries.iter().zip(&reference) {
                    let got = pool
                        .install(|| execute(&store, query))
                        .map_err(|e| format!("oracle query failed: {e:?}"))?;
                    if &got != expected {
                        return Err(format!(
                            "pipeline diverges at threads={threads} granularity={granularity} \
                             level={}",
                            level.name()
                        ));
                    }
                    pipeline_cases += 1;
                }
            }
        }
    }

    Ok(ScanOracleReport {
        levels,
        kernel_cases,
        pipeline_cases,
    })
}

/// A store shaped like production output: several segments per peril and
/// region, sparse losses, a non-round trial count.
fn oracle_store(trials: usize, segments: usize, seed: u64) -> ResultStore {
    let mut store = ResultStore::new(trials);
    for s in 0..segments {
        let (year, occ) = loss_slices(trials, seed.wrapping_add(5000 + s as u64));
        let outcomes: Vec<TrialOutcome> = year
            .iter()
            .zip(&occ)
            .map(|(&y, &o)| TrialOutcome {
                year_loss: y.abs(),
                max_occurrence_loss: o.abs().min(y.abs()),
                nonzero_events: u32::from(y != 0.0),
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId((s / 2) as u32),
            Peril::ALL[s % Peril::ALL.len()],
            Region::ALL[s % Region::ALL.len()],
            LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
        );
        store
            .ingest(&YearLossTable::new(LayerId((s / 2) as u32), outcomes), meta)
            .expect("oracle ingest");
    }
    store
}

/// A query batch touching every kernel: plain accumulation, grouping,
/// loss-range compaction (both columns), trial windows and order
/// statistics.
fn oracle_queries(trials: usize) -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .expect("query"),
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_at_least(1.0e4)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Pml {
                return_period: 25.0,
                basis: Basis::Oep,
            })
            .build()
            .expect("query"),
        QueryBuilder::new()
            .trials(3..trials - 2)
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 7,
            })
            .aggregate(Aggregate::StdDev)
            .build()
            .expect("query"),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .build()
            .expect("query"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_kernels_pass_the_bit_identity_oracle() {
        let report = verify_scan_kernels(2012).expect("oracle must pass");
        assert!(report.levels.contains(&SimdLevel::Scalar));
        assert!(report.kernel_cases >= LENGTHS.len() * (report.levels.len() + 2));
        assert!(report.pipeline_cases > 0);
    }

    #[test]
    fn oracle_covers_every_available_level() {
        let report = verify_scan_kernels(77).expect("oracle must pass");
        assert_eq!(report.levels, kernel::available_levels());
    }
}
