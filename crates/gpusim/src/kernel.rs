//! Kernel and launch abstractions.

use serde::{Deserialize, Serialize};

use crate::memory::MemoryCounters;

/// A kernel launch configuration: the CUDA `<<<grid, block, shared>>>`
/// triple of the paper's implementations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// A launch with the given block size.
    pub fn with_block_size(threads_per_block: u32) -> Self {
        Self { threads_per_block }
    }

    /// Number of blocks needed to cover `total_threads` logical threads.
    pub fn blocks_for(&self, total_threads: usize) -> usize {
        total_threads.div_ceil(self.threads_per_block as usize)
    }
}

impl Default for LaunchConfig {
    fn default() -> Self {
        // The paper finds 256 threads per block to be the sweet spot for the
        // basic kernel (Fig. 4).
        Self {
            threads_per_block: 256,
        }
    }
}

/// Per-thread execution context handed to a kernel: identifies the thread
/// and records its memory traffic.
#[derive(Debug)]
pub struct ThreadTracker {
    /// Global (linear) thread index.
    pub thread_id: usize,
    /// Block index this thread belongs to.
    pub block_id: usize,
    /// Thread index within its block.
    pub lane_id: u32,
    /// Memory and compute counters for this thread.
    pub counters: MemoryCounters,
}

impl ThreadTracker {
    /// Creates a tracker for one simulated thread.
    pub fn new(thread_id: usize, block_id: usize, lane_id: u32) -> Self {
        Self {
            thread_id,
            block_id,
            lane_id,
            counters: MemoryCounters::new(),
        }
    }

    /// Records a global read of `bytes` bytes.
    #[inline]
    pub fn global_read(&mut self, bytes: u64) {
        self.counters.global_read(bytes);
    }

    /// Records a global write of `bytes` bytes.
    #[inline]
    pub fn global_write(&mut self, bytes: u64) {
        self.counters.global_write(bytes);
    }

    /// Records a shared-memory access of `bytes` bytes.
    #[inline]
    pub fn shared_access(&mut self, bytes: u64) {
        self.counters.shared_access(bytes);
    }

    /// Records a constant-memory access.
    #[inline]
    pub fn constant_access(&mut self) {
        self.counters.constant_access();
    }

    /// Records `ops` arithmetic operations.
    #[inline]
    pub fn compute(&mut self, ops: u64) {
        self.counters.compute(ops);
    }
}

/// A kernel that can run on the simulated device.
///
/// The executor calls [`Kernel::execute_thread`] once per logical thread; a
/// kernel is expected to perform its *real* computation there (storing
/// results through interior mutability or by returning them via
/// `output()`-style accessors defined on the concrete type) while
/// reporting its memory behaviour through the [`ThreadTracker`].
pub trait Kernel: Sync {
    /// Human-readable kernel name (for reports).
    fn name(&self) -> &str;

    /// Total number of logical threads the kernel needs (the paper launches
    /// one thread per trial).
    fn total_threads(&self) -> usize;

    /// Shared memory requested per block for a given block size, in bytes.
    fn shared_mem_per_block(&self, threads_per_block: u32) -> u32;

    /// Average number of independent global loads each thread keeps in
    /// flight (memory-level parallelism).  1.0 for kernels whose global
    /// accesses are serialised by read-modify-write dependences; the chunked
    /// kernel exposes roughly one in-flight load per staged chunk element.
    fn memory_parallelism(&self) -> f64 {
        1.0
    }

    /// Executes one logical thread.
    fn execute_thread(&self, tracker: &mut ThreadTracker);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_block_count() {
        let cfg = LaunchConfig::with_block_size(256);
        assert_eq!(
            cfg.blocks_for(1_000_000),
            3_907,
            "paper: ~3906 blocks for 1M trials"
        );
        assert_eq!(cfg.blocks_for(256), 1);
        assert_eq!(cfg.blocks_for(257), 2);
        assert_eq!(cfg.blocks_for(0), 0);
        assert_eq!(LaunchConfig::default().threads_per_block, 256);
    }

    #[test]
    fn tracker_records_traffic() {
        let mut t = ThreadTracker::new(10, 0, 10);
        t.global_read(8);
        t.global_write(8);
        t.shared_access(8);
        t.constant_access();
        t.compute(3);
        assert_eq!(t.counters.global_accesses(), 2);
        assert_eq!(t.counters.shared_accesses, 1);
        assert_eq!(t.counters.constant_accesses, 1);
        assert_eq!(t.counters.compute_ops, 3);
        assert_eq!(t.thread_id, 10);
        assert_eq!(t.lane_id, 10);
        assert_eq!(t.block_id, 0);
    }
}
