//! Occupancy calculation: how many blocks and warps fit on one SM.
//!
//! The paper's launch-configuration discussion (§III.C.2) is an occupancy
//! argument: "If we have a smaller number of threads, each thread can have a
//! larger amount of shared and constant memory, but with a small number of
//! threads we have less opportunity to hide the latency of accessing the
//! global memory."  This module applies the Fermi resource limits to a
//! launch configuration and reports the number of active warps available for
//! latency hiding.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;

/// The result of an occupancy calculation for one launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Fraction of the SM's maximum resident threads that are occupied.
    pub occupancy: f64,
    /// Fraction of the requested shared memory per block that exceeds the
    /// per-SM budget when at least one block is resident (0 unless the
    /// request itself is larger than the SM's shared memory).
    pub shared_overflow_fraction: f64,
    /// Which resource limits the number of resident blocks.
    pub limiter: OccupancyLimiter,
}

/// The resource that limits occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// The per-SM thread limit.
    Threads,
    /// The per-SM block limit.
    Blocks,
    /// The per-SM shared-memory budget.
    SharedMemory,
}

/// Computes the occupancy of a launch configuration.
///
/// `shared_mem_per_block` is the shared memory requested by each block.  If
/// a single block requests more shared memory than the SM provides the
/// launch is still admitted (with one resident block), and the excess
/// fraction is reported so the timing model can charge the overflow to
/// global memory — this is how the paper describes the behaviour beyond a
/// chunk size of ~12 (Fig. 5a).
pub fn occupancy(
    device: &DeviceSpec,
    threads_per_block: u32,
    shared_mem_per_block: u32,
) -> Occupancy {
    assert!(threads_per_block > 0, "threads_per_block must be positive");
    let by_threads = device.max_threads_per_sm / threads_per_block;
    let by_blocks = device.max_blocks_per_sm;
    let by_shared = device
        .shared_mem_per_sm
        .checked_div(shared_mem_per_block)
        .unwrap_or(u32::MAX);

    let (blocks_per_sm, limiter) = if by_shared <= by_threads && by_shared <= by_blocks {
        (by_shared, OccupancyLimiter::SharedMemory)
    } else if by_threads <= by_blocks {
        (by_threads, OccupancyLimiter::Threads)
    } else {
        (by_blocks, OccupancyLimiter::Blocks)
    };

    // A block that does not fit at all still runs alone, spilling the excess.
    let (blocks_per_sm, shared_overflow_fraction) = if blocks_per_sm == 0 {
        let overflow = f64::from(shared_mem_per_block - device.shared_mem_per_sm)
            / f64::from(shared_mem_per_block);
        (1, overflow)
    } else {
        (blocks_per_sm, 0.0)
    };

    let threads_per_sm = (blocks_per_sm * threads_per_block).min(device.max_threads_per_sm);
    let warps_per_sm = threads_per_sm.div_ceil(device.warp_size);
    Occupancy {
        blocks_per_sm,
        threads_per_sm,
        warps_per_sm,
        occupancy: f64::from(threads_per_sm) / f64::from(device.max_threads_per_sm),
        shared_overflow_fraction,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_block_limit_at_small_blocks() {
        let d = DeviceSpec::tesla_c2075();
        // 128 threads/block: 8-block limit binds -> 1024 threads (67%).
        let o = occupancy(&d, 128, 0);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.threads_per_sm, 1024);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
        assert!((o.occupancy - 1024.0 / 1536.0).abs() < 1e-12);
        assert_eq!(o.shared_overflow_fraction, 0.0);
    }

    #[test]
    fn full_occupancy_at_256_threads() {
        let d = DeviceSpec::tesla_c2075();
        let o = occupancy(&d, 256, 0);
        assert_eq!(o.blocks_per_sm, 6);
        assert_eq!(o.threads_per_sm, 1536);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
        assert_eq!(o.warps_per_sm, 48);
    }

    #[test]
    fn large_blocks_lose_occupancy() {
        let d = DeviceSpec::tesla_c2075();
        let o = occupancy(&d, 640, 0);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.threads_per_sm, 1280);
        assert!(o.occupancy < 0.9);
        assert_eq!(o.limiter, OccupancyLimiter::Threads);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        let d = DeviceSpec::tesla_c2075();
        // 20 KB/block: only 2 blocks fit in 48 KB.
        let o = occupancy(&d, 128, 20 * 1024);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
        assert_eq!(o.shared_overflow_fraction, 0.0);
    }

    #[test]
    fn oversized_shared_request_spills() {
        let d = DeviceSpec::tesla_c2075();
        // 96 KB requested but only 48 KB available: half the traffic spills.
        let o = occupancy(&d, 64, 96 * 1024);
        assert_eq!(o.blocks_per_sm, 1);
        assert!((o.shared_overflow_fraction - 0.5).abs() < 1e-9);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn chunked_kernel_constraint_from_paper() {
        // The paper states that with a chunk size of 4 the maximum number of
        // threads per block the optimised kernel supports is 192.  With the
        // kernel's 64 bytes of shared staging per (thread, chunk element),
        // 192 × 4 × 64 B = 48 KB exactly fills the SM's shared memory.
        let d = DeviceSpec::tesla_c2075();
        let per_block = 192 * 4 * 64;
        assert_eq!(per_block, 48 * 1024);
        let o = occupancy(&d, 192, per_block);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.shared_overflow_fraction, 0.0);
        // One more chunk element per thread no longer fits without spilling.
        let o = occupancy(&d, 192, 192 * 5 * 64);
        assert!(o.shared_overflow_fraction > 0.0);
    }

    #[test]
    #[should_panic(expected = "threads_per_block must be positive")]
    fn zero_threads_panics() {
        occupancy(&DeviceSpec::tesla_c2075(), 0, 0);
    }
}
