//! # catrisk-engine
//!
//! The Aggregate Risk Engine (ARE): the paper's core contribution.
//!
//! Aggregate analysis "is a form of Monte Carlo simulation in which each
//! simulation trial represents an alternative view of which events occur
//! and in which order they occur within a predetermined period" (paper §I).
//! The engine consumes three inputs — the Year Event Table, the Event Loss
//! Tables covered by each layer, and the layer terms — and produces a Year
//! Loss Table: one aggregate loss per (layer, trial) pair.
//!
//! The paper's basic algorithm (§II.B, lines 1–19) is implemented in four
//! interchangeable engine variants, all of which produce **bit-identical**
//! Year Loss Tables:
//!
//! * [`SequentialEngine`] — the single-threaded reference implementation,
//!   with an optional phase-instrumented mode used to reproduce Fig. 6b;
//! * [`ParallelEngine`] — the multi-core analogue of the paper's OpenMP
//!   implementation: one logical thread per trial on a rayon pool of a
//!   configurable size (Fig. 3a), plus an oversubscribed mode that maps many
//!   work items to each core (Fig. 3b);
//! * [`ChunkedEngine`] — a blocked variant that stages each trial's
//!   per-occurrence losses through a fixed-size chunk buffer, the CPU
//!   analogue of the paper's optimised GPU kernel;
//! * the simulated-GPU kernels in `catrisk-gpusim` reuse this crate's
//!   [`AnalysisInput`] and per-trial kernels.
//!
//! ```
//! use catrisk_engine::prelude::*;
//! use catrisk_finterms::{LayerTerms, FinancialTerms};
//!
//! // Two tiny ELTs and a YET with two trials.
//! let mut input = AnalysisInputBuilder::new();
//! input.set_yet_from_trials(10, vec![vec![(0, 1.0), (3, 50.0)], vec![(7, 120.0)]]);
//! let a = input.add_elt(&[(0, 100.0), (3, 400.0)], FinancialTerms::pass_through());
//! let b = input.add_elt(&[(3, 50.0), (7, 900.0)], FinancialTerms::pass_through());
//! input.add_layer_over(&[a, b], LayerTerms::per_occurrence(100.0, 500.0).unwrap());
//! let input = input.build().unwrap();
//!
//! let output = SequentialEngine::new().run(&input);
//! assert_eq!(output.layer(0).losses().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chunked;
pub mod config;
pub mod input;
pub mod parallel;
pub mod phases;
pub mod sequential;
pub mod steps;
pub mod streaming;
pub mod ylt;

pub use chunked::ChunkedEngine;
pub use config::{EngineConfig, EngineKind};
pub use input::{AnalysisInput, AnalysisInputBuilder, PreparedElt, PreparedLookup};
pub use parallel::ParallelEngine;
pub use phases::{
    PhaseBreakdown, PHASE_EVENT_FETCH, PHASE_FINANCIAL_TERMS, PHASE_LAYER_TERMS, PHASE_LOOKUP,
};
pub use sequential::SequentialEngine;
pub use streaming::StreamingEngine;
pub use ylt::{AnalysisOutput, TrialOutcome, YearLossTable};

/// Convenience re-exports for building and running analyses.
pub mod prelude {
    pub use crate::chunked::ChunkedEngine;
    pub use crate::config::{EngineConfig, EngineKind};
    pub use crate::input::{AnalysisInput, AnalysisInputBuilder};
    pub use crate::parallel::ParallelEngine;
    pub use crate::sequential::SequentialEngine;
    pub use crate::ylt::{AnalysisOutput, YearLossTable};
}

/// Errors produced while assembling an analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The analysis input is incomplete or inconsistent.
    InvalidInput(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidInput(msg) => write!(f, "invalid analysis input: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
