//! Fast sampling utilities: alias tables, reservoir sampling and
//! stratified index partitioning.
//!
//! The Year Event Table generator draws hundreds of millions of events from
//! a weighted catalog, so O(1) weighted sampling matters; the alias method
//! (Walker/Vose) provides exactly that.

use crate::rng::SimRng;
use crate::{ParamError, Result};

/// Walker/Vose alias table for O(1) sampling from a discrete distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// The weights need not be normalised.  At least one weight must be
    /// positive and the number of categories must fit in a `u32`.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(ParamError::new("AliasTable requires at least one weight"));
        }
        if weights.len() > u32::MAX as usize {
            return Err(ParamError::new(
                "AliasTable supports at most 2^32-1 categories",
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "AliasTable weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("AliasTable weights must not all be zero"));
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Any leftovers are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.uniform() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Reservoir sampling (algorithm R): selects `k` items uniformly from a
/// stream of unknown length.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item from the stream.
    pub fn offer(&mut self, item: T, rng: &mut SimRng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled items (at most `capacity`).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir and returns the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Splits `0..n` into `parts` contiguous, nearly equal ranges.
///
/// Used for stratified assignment of trials to worker threads; every index
/// appears in exactly one range and ranges are returned in order.
pub fn stratify(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if parts == 0 || n == 0 {
        return vec![];
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Fisher–Yates shuffle of a mutable slice.
pub fn shuffle<T>(items: &mut [T], rng: &mut SimRng) {
    for i in (1..items.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        items.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` (Floyd's algorithm when `k << n`,
/// partial shuffle otherwise).  The result is not sorted.
pub fn sample_without_replacement(n: usize, k: usize, rng: &mut SimRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from a population of {n}");
    if k == 0 {
        return vec![];
    }
    if k * 4 >= n {
        let mut all: Vec<usize> = (0..n).collect();
        shuffle(&mut all, rng);
        all.truncate(k);
        return all;
    }
    // Floyd's algorithm.
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.below((j + 1) as u64) as usize;
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn alias_table_matches_weights() {
        let weights = [0.1, 0.0, 0.4, 0.5];
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), 4);
        let mut rng = RngFactory::new(1).stream(0);
        let n = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        for (i, &w) in weights.iter().enumerate() {
            let observed = f64::from(counts[i]) / n as f64;
            assert!(
                (observed - w).abs() < 0.01,
                "category {i}: {observed} vs {w}"
            );
        }
    }

    #[test]
    fn alias_table_single_and_uniform() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = RngFactory::new(2).stream(0);
        assert_eq!(t.sample(&mut rng), 0);

        let t = AliasTable::new(&[1.0; 16]).unwrap();
        let mut counts = [0u32; 16];
        for _ in 0..160_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 10_000.0).abs() < 1_000.0);
        }
    }

    #[test]
    fn alias_table_rejects_bad_input() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -2.0]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn reservoir_uniformity() {
        let mut rng = RngFactory::new(3).stream(0);
        // Each of 0..100 should be selected with probability 10/100.
        let mut hits = vec![0u32; 100];
        for _ in 0..2_000 {
            let mut r = Reservoir::new(10);
            for i in 0..100u32 {
                r.offer(i, &mut rng);
            }
            assert_eq!(r.seen(), 100);
            assert_eq!(r.items().len(), 10);
            for &i in r.items() {
                hits[i as usize] += 1;
            }
        }
        for &h in &hits {
            assert!((f64::from(h) - 200.0).abs() < 80.0, "hit count {h}");
        }
    }

    #[test]
    fn reservoir_smaller_stream_keeps_everything() {
        let mut rng = RngFactory::new(4).stream(0);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.into_items(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stratify_covers_everything_once() {
        for (n, parts) in [(10, 3), (7, 7), (5, 9), (1000, 8), (0, 4), (4, 0)] {
            let ranges = stratify(n, parts);
            if parts == 0 {
                assert!(ranges.is_empty());
                continue;
            }
            let mut covered = vec![false; n];
            for r in &ranges {
                for i in r.clone() {
                    assert!(!covered[i], "index {i} covered twice");
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "n={n} parts={parts}");
            if n > 0 && parts > 0 {
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = RngFactory::new(5).stream(0);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = RngFactory::new(6).stream(0);
        for (n, k) in [(100, 5), (100, 80), (10, 10), (10, 0)] {
            let s = sample_without_replacement(n, k, &mut rng);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_without_replacement_too_many_panics() {
        let mut rng = RngFactory::new(7).stream(0);
        sample_without_replacement(3, 4, &mut rng);
    }
}
