//! Sharded-catalog benchmark: the fused batch path over 1/2/4-shard
//! catalogs, and the generation-keyed result cache cold vs warm.
//!
//! The same segment set is written contiguously into 1, 2 and 4 store
//! files, so every catalog presents an identical union and the scan cost
//! differences isolate the sharding layer itself (segment-index
//! remapping, merged dictionaries, per-shard read locks).  The
//! `sharded_equivalence` target asserts the results are bit-identical
//! across all shard counts — sharding is routing, not approximation —
//! and that a warm cache actually answers without scanning.
//! `CATRISK_BENCH_QUICK=1` shrinks the workload for smoke runs.

use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::Region;
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_riskserve::{Server, ServerConfig, SourceProvider, StoreCatalog};
use catrisk_riskstore::StoreWriter;
use catrisk_simkit::rng::RngFactory;

fn quick() -> bool {
    std::env::var("CATRISK_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

fn trials() -> usize {
    if quick() {
        4_000
    } else {
        20_000
    }
}

/// A CI-sized production-shaped store (same construction as the serving
/// bench).
fn build_store(trials: usize, books: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("sharded-bench");
    let mut store = ResultStore::new(trials);
    let mut segment = 0u64;
    for book in 0..books {
        let region = Region::ALL[book % Region::ALL.len()];
        let lob = LineOfBusiness::ALL[book % LineOfBusiness::ALL.len()];
        for peril in region.active_perils() {
            let mut rng = factory.stream(segment);
            segment += 1;
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(LayerId(book as u32), *peril, region, lob);
            store
                .ingest(&YearLossTable::new(LayerId(book as u32), outcomes), meta)
                .expect("ingest");
        }
    }
    store
}

/// Splits the base store's segments contiguously into `shards` files and
/// opens them as a catalog.  The union order equals the base store's
/// segment order for every shard count, so results are comparable bit
/// for bit.
fn write_catalog(base: &ResultStore, shards: usize, tag: &str) -> (Vec<PathBuf>, StoreCatalog) {
    let per_shard = base.num_segments().div_ceil(shards);
    let mut paths = Vec::new();
    for shard in 0..shards {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-sharded-bench-{}-{tag}-{shards}-{shard}.clm",
            std::process::id()
        ));
        let mut writer = StoreWriter::create(&path, base.num_trials()).expect("create shard");
        let start = shard * per_shard;
        let end = ((shard + 1) * per_shard).min(base.num_segments());
        for segment in start..end {
            writer
                .append_segment(
                    *base.meta(segment),
                    base.year_losses(segment),
                    base.max_occ_losses(segment),
                )
                .expect("append");
        }
        writer.finish().expect("commit shard");
        paths.push(path);
    }
    let catalog = StoreCatalog::open(&paths).expect("open catalog");
    (paths, catalog)
}

fn remove(paths: &[PathBuf]) {
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

/// The mixed batch the fused scan answers per iteration.
fn query_mix() -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Var { level: 0.99 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 10,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_at_least(1.0e5)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .unwrap(),
    ]
}

/// One fused batch over the catalog's current snapshot, bypassing the
/// cache — the raw sharded scan cost.
fn fused_batch(catalog: &StoreCatalog, queries: &[Query]) -> Vec<QueryResult> {
    catalog.with_source(|snapshot| {
        QuerySession::new(snapshot.source)
            .run(queries)
            .expect("batch")
    })
}

fn sharded_scan(c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_mix();
    let mut group = c.benchmark_group("sharded_fused_batch");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let (paths, catalog) = write_catalog(&base, shards, "scan");
        group.bench_function(format!("{shards}_shards"), |b| {
            b.iter(|| criterion::black_box(fused_batch(&catalog, &queries)))
        });
        remove(&paths);
    }
    group.finish();
}

fn cache_cold_vs_warm(c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_mix();
    let trials = base.num_trials();
    let mut group = c.benchmark_group("catalog_result_cache");
    group.sample_size(10);

    let (paths, catalog) = write_catalog(&base, 2, "cache");
    let server = Server::new(
        catalog,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );

    // Cold: every iteration's queries carry a never-seen trial window, so
    // each batch misses the cache and pays the fused scan.
    let mut window = 0usize;
    group.bench_function("cold_miss_per_batch", |b| {
        b.iter(|| {
            window += 1;
            let end = trials - (window % (trials / 2));
            let unique: Vec<Query> = queries
                .iter()
                .map(|q| {
                    let mut q = q.clone();
                    q.filter.trials = Some((0, end));
                    q
                })
                .collect();
            let tickets: Vec<_> = unique
                .into_iter()
                .map(|q| server.submit(q).expect("admitted"))
                .collect();
            for ticket in tickets {
                criterion::black_box(ticket.wait().expect("served"));
            }
        })
    });

    // Warm: the same mix repeats, so after the first batch every reply
    // comes from the generation-keyed cache.
    group.bench_function("warm_hit_per_batch", |b| {
        b.iter(|| {
            let tickets: Vec<_> = queries
                .iter()
                .map(|q| server.submit(q.clone()).expect("admitted"))
                .collect();
            for ticket in tickets {
                criterion::black_box(ticket.wait().expect("served"));
            }
        })
    });
    group.finish();

    let stats = server.stats();
    assert!(
        stats.cache_hits > 0,
        "the warm path must hit the cache: {stats:?}"
    );
    server.shutdown();
    remove(&paths);
}

/// Prints the acceptance numbers and pins the equivalence: every shard
/// count answers the mix bit-identically to the in-memory store, and a
/// warm cache answers without scanning.
fn sharded_equivalence(_c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_mix();
    let expected = QuerySession::new(&*base).run(&queries).expect("reference");

    for shards in [1usize, 2, 4] {
        let (paths, catalog) = write_catalog(&base, shards, "equiv");
        let results = fused_batch(&catalog, &queries);
        assert_eq!(
            results, expected,
            "{shards}-shard catalog diverged from the in-memory store"
        );
        assert_eq!(catalog.num_shards(), shards);
        remove(&paths);
    }

    let (paths, catalog) = write_catalog(&base, 2, "equiv-cache");
    let server = Server::new(catalog, ServerConfig::default());
    for _ in 0..3 {
        for (query, expected) in queries.iter().zip(&expected) {
            assert_eq!(
                &server.query(query.clone()).expect("served").result,
                expected
            );
        }
    }
    let stats = server.stats();
    assert!(stats.cache_hits >= 2 * queries.len() as u64, "{stats:?}");
    println!(
        "sharded_equivalence: {} queries x 1/2/4 shards bit-identical; \
         cache hits {} misses {} (hit rate {:.0}%)",
        queries.len(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate() * 100.0
    );
    server.shutdown();
    remove(&paths);
}

criterion_group!(
    benches,
    sharded_scan,
    cache_cold_vs_warm,
    sharded_equivalence
);
criterion_main!(benches);
