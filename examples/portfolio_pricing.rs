//! Portfolio pricing: analyse a multi-contract book against a shared Year
//! Event Table, price every contract, measure the marginal impact of a new
//! deal, and roll the book up into an enterprise view.
//!
//! ```text
//! cargo run --release --example portfolio_pricing
//! ```

use std::sync::Arc;

use catrisk::catmodel::generator::ExposureConfig;
use catrisk::catmodel::runner::{CatModel, CatModelConfig};
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::peril::Region;
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::treaty::{Reinstatements, Treaty};
use catrisk::lookup::LookupKind;
use catrisk::portfolio::contract::{Contract, ContractId};
use catrisk::portfolio::enterprise::{BusinessUnit, EnterpriseView};
use catrisk::portfolio::marginal::MarginalAnalysis;
use catrisk::portfolio::portfolio::{Portfolio, PortfolioAnalysis};
use catrisk::portfolio::pricing::{price_ylt, PricingConfig};
use catrisk::prelude::RngFactory;

fn main() {
    let factory = RngFactory::new(7);

    // Shared catalog and YET for the whole book ("a consistent lens").
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 30_000,
            annual_event_budget: 1_000.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .expect("catalog");
    let yet = Arc::new(
        YetGenerator::new(&catalog, YetConfig::with_trials(30_000))
            .expect("generator")
            .generate(&factory),
    );

    // Four regional exposure books -> four ELTs.
    let books = [
        ("us-gulf", Region::NorthAmericaEast),
        ("us-west", Region::NorthAmericaWest),
        ("europe", Region::Europe),
        ("japan", Region::Japan),
    ];
    let model = CatModel::new(CatModelConfig::default()).expect("model");
    let elts: Vec<_> = books
        .iter()
        .map(|(name, region)| {
            let exposure = ExposureConfig::regional(*name, *region, 1_500)
                .generate(&factory)
                .expect("exposure");
            model.run(&catalog, &exposure, &factory)
        })
        .collect();
    let scale = elts.iter().map(|e| e.max_loss()).fold(0.0, f64::max);

    // The book: three in-force contracts.
    let mut portfolio = Portfolio::new("UW year 2012");
    portfolio.add(
        Contract::new(
            ContractId(0),
            "US wind 40 xs 10",
            Treaty::cat_xl(0.10 * scale, 0.40 * scale),
            vec![0],
        )
        .with_premium(0.06 * scale),
    );
    portfolio.add(
        Contract::new(
            ContractId(1),
            "US quake with reinstatement",
            Treaty::CatXl {
                retention: 0.15 * scale,
                limit: 0.35 * scale,
                reinstatements: Reinstatements::new(1, 1.0).expect("valid"),
            },
            vec![1],
        )
        .with_premium(0.05 * scale),
    );
    portfolio.add(
        Contract::new(
            ContractId(2),
            "Europe stop loss",
            Treaty::AggregateXl {
                retention: 0.2 * scale,
                limit: 0.6 * scale,
            },
            vec![2],
        )
        .with_premium(0.04 * scale),
    );

    let analysis = PortfolioAnalysis::build(portfolio, &elts, Arc::clone(&yet), LookupKind::Direct)
        .expect("analysis");
    let result = analysis.run();

    // Price each contract technically and compare with the booked premium.
    let pricing = PricingConfig::default();
    println!(
        "{:<30} {:>14} {:>14} {:>14}",
        "contract", "expected loss", "tech premium", "booked premium"
    );
    for (i, contract) in result.portfolio.contracts.iter().enumerate() {
        let quote = price_ylt(
            result.contract_ylt(i),
            contract.layer_terms().max_annual_recovery(),
            &pricing,
        );
        println!(
            "{:<30} {:>14.0} {:>14.0} {:>14.0}",
            contract.name, quote.expected_loss, quote.gross_premium, contract.premium
        );
    }
    println!(
        "\nportfolio expected loss {:.0}, premium {:.0}, expected UW result {:.0}",
        result.expected_loss(),
        result.portfolio.total_premium(),
        result.expected_underwriting_result()
    );

    // Marginal impact of adding a Japan quake layer to the book.
    let candidate = Contract::new(
        ContractId(3),
        "Japan quake 30 xs 10 (candidate)",
        Treaty::cat_xl(0.10 * scale, 0.30 * scale),
        vec![3],
    );
    let mut with_candidate = result.portfolio.clone();
    with_candidate.add(candidate);
    let candidate_result =
        PortfolioAnalysis::build(with_candidate, &elts, Arc::clone(&yet), LookupKind::Direct)
            .expect("analysis")
            .run();
    let candidate_losses = candidate_result.contract_ylt(3).losses();
    let marginal = MarginalAnalysis::new(&result.portfolio_losses(), &candidate_losses, 0.99);
    println!(
        "\ncandidate standalone TVaR99 {:.0}, marginal TVaR99 {:.0}, diversification benefit {:.0}%",
        marginal.standalone_tvar,
        marginal.marginal_tvar,
        100.0 * marginal.diversification_benefit
    );
    println!(
        "marginal-capital price at 8% cost of capital: {:.0}",
        marginal.marginal_capital_price(0.08)
    );

    // Enterprise roll-up by business unit.
    let units = vec![
        BusinessUnit::new("US cat", {
            let mut v = result.contract_ylt(0).losses();
            for (a, b) in v.iter_mut().zip(result.contract_ylt(1).losses()) {
                *a += b;
            }
            v
        }),
        BusinessUnit::new("International cat", result.contract_ylt(2).losses()),
    ];
    let enterprise = EnterpriseView::new(units, 0.99).expect("enterprise");
    println!(
        "\nenterprise capital (TVaR99): {:.0}; undiversified {:.0}; diversification benefit {:.0}%",
        enterprise.required_capital(),
        enterprise.standalone_capital(),
        100.0 * enterprise.diversification_benefit()
    );
    for (unit, capital) in enterprise.capital_allocation() {
        println!("  capital allocated to {unit}: {capital:.0}");
    }
}
