//! Streaming execution for Year Event Tables larger than memory budgets.
//!
//! A paper-scale YLT (1 M trials × many layers) is small, but intermediate
//! analytics sometimes want to run over *very* large YETs or keep memory
//! flat while post-processing results on the fly (the paper's §IV discusses
//! complete-portfolio runs of 5 000 contracts where per-trial storage adds
//! up).  The streaming engine processes the YET in blocks of trials,
//! invoking a callback per block and maintaining running summaries, so the
//! full Year Loss Table never needs to be materialised.

use catrisk_simkit::stats::RunningStats;
use serde::{Deserialize, Serialize};

use crate::input::AnalysisInput;
use crate::parallel::ParallelEngine;
use crate::ylt::{AnalysisOutput, TrialOutcome};

/// Running summary of one layer's streamed results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Number of trials processed.
    pub trials: u64,
    /// Mean year loss.
    pub mean_loss: f64,
    /// Standard deviation of the year loss (population).
    pub std_dev: f64,
    /// Largest year loss seen.
    pub max_loss: f64,
    /// Fraction of trials with a non-zero year loss.
    pub nonzero_fraction: f64,
}

/// Block-wise streaming engine built on top of [`ParallelEngine`].
#[derive(Debug, Clone, Copy)]
pub struct StreamingEngine {
    /// Trials per block.
    pub block_size: usize,
    /// Worker threads per block (0 = all cores).
    pub threads: usize,
}

impl Default for StreamingEngine {
    fn default() -> Self {
        Self {
            block_size: 10_000,
            threads: 0,
        }
    }
}

impl StreamingEngine {
    /// Engine processing `block_size` trials at a time.
    pub fn new(block_size: usize) -> Self {
        Self {
            block_size,
            ..Default::default()
        }
    }

    /// Streams the analysis, calling `on_block(block_index, trial_range,
    /// block_output)` after each block, and returns per-layer summaries.
    ///
    /// The block outputs concatenated in order equal the non-streamed
    /// engines' output exactly.
    pub fn run_with<F>(&self, input: &AnalysisInput, mut on_block: F) -> Vec<LayerSummary>
    where
        F: FnMut(usize, std::ops::Range<usize>, &AnalysisOutput),
    {
        assert!(self.block_size > 0, "block_size must be positive");
        let num_trials = input.num_trials();
        let num_layers = input.layers().len();
        let mut stats: Vec<RunningStats> = vec![RunningStats::new(); num_layers];
        let mut nonzero: Vec<u64> = vec![0; num_layers];
        let engine = ParallelEngine::with_threads(self.threads);

        let mut block_index = 0;
        let mut start = 0;
        while start < num_trials {
            let end = (start + self.block_size).min(num_trials);
            let block_yet = input.yet().slice_trials(start..end);
            // Rebuild a lightweight view over the same ELTs/layers but the
            // sliced YET.  Lookup structures are shared by reference through
            // the prepared input, so only the YET slice is copied.
            let block_input = input.with_yet_slice(block_yet);
            let output = engine.run(&block_input);
            for (layer_idx, ylt) in output.layers().iter().enumerate() {
                for TrialOutcome { year_loss, .. } in ylt.outcomes() {
                    stats[layer_idx].push(*year_loss);
                    if *year_loss > 0.0 {
                        nonzero[layer_idx] += 1;
                    }
                }
            }
            on_block(block_index, start..end, &output);
            block_index += 1;
            start = end;
        }

        stats
            .into_iter()
            .zip(nonzero)
            .map(|(s, nz)| LayerSummary {
                trials: s.count(),
                mean_loss: s.mean(),
                std_dev: s.std_dev(),
                max_loss: if s.count() == 0 { 0.0 } else { s.max() },
                nonzero_fraction: if s.count() == 0 {
                    0.0
                } else {
                    nz as f64 / s.count() as f64
                },
            })
            .collect()
    }

    /// Streams the analysis and returns only the summaries.
    pub fn run_summarized(&self, input: &AnalysisInput) -> Vec<LayerSummary> {
        self.run_with(input, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AnalysisInputBuilder;
    use crate::sequential::SequentialEngine;
    use catrisk_finterms::terms::{FinancialTerms, LayerTerms};

    fn input(trials: usize) -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        let yet_trials: Vec<Vec<(u32, f32)>> = (0..trials)
            .map(|t| {
                (0..((t % 13) as u32))
                    .map(|i| {
                        (
                            ((t as u32).wrapping_mul(17).wrapping_add(i * 3)) % 500,
                            i as f32,
                        )
                    })
                    .collect()
            })
            .collect();
        b.set_yet_from_trials(500, yet_trials);
        let pairs: Vec<(u32, f64)> = (0..500)
            .step_by(2)
            .map(|e| (e, 10.0 + f64::from(e)))
            .collect();
        let a = b.add_elt(&pairs, FinancialTerms::pass_through());
        b.add_layer_over(&[a], LayerTerms::per_occurrence(50.0, 400.0).unwrap());
        b.add_layer_over(&[a], LayerTerms::unlimited());
        b.build().unwrap()
    }

    #[test]
    fn streamed_blocks_concatenate_to_full_output() {
        let input = input(105);
        let reference = SequentialEngine::new().run(&input);
        let mut collected: Vec<Vec<TrialOutcome>> = vec![Vec::new(); input.layers().len()];
        let engine = StreamingEngine {
            block_size: 20,
            threads: 1,
        };
        engine.run_with(&input, |_, range, block| {
            assert!(range.len() <= 20);
            for (layer_idx, ylt) in block.layers().iter().enumerate() {
                collected[layer_idx].extend_from_slice(ylt.outcomes());
            }
        });
        for (layer_idx, outcomes) in collected.iter().enumerate() {
            assert_eq!(outcomes.len(), 105);
            for (a, b) in outcomes.iter().zip(reference.layer(layer_idx).outcomes()) {
                assert_eq!(a.year_loss, b.year_loss);
                assert_eq!(a.max_occurrence_loss, b.max_occurrence_loss);
            }
        }
    }

    #[test]
    fn summaries_match_full_run_statistics() {
        let input = input(80);
        let reference = SequentialEngine::new().run(&input);
        let summaries = StreamingEngine::new(7).run_summarized(&input);
        assert_eq!(summaries.len(), 2);
        for (layer_idx, summary) in summaries.iter().enumerate() {
            let ylt = reference.layer(layer_idx);
            assert_eq!(summary.trials, 80);
            assert!((summary.mean_loss - ylt.mean_loss()).abs() < 1e-9);
            assert!((summary.std_dev - ylt.loss_std_dev()).abs() < 1e-9);
            assert!((summary.max_loss - ylt.max_loss()).abs() < 1e-9);
            assert!((summary.nonzero_fraction - ylt.nonzero_fraction()).abs() < 1e-9);
        }
    }

    #[test]
    fn block_larger_than_input_is_one_block() {
        let input = input(10);
        let mut blocks = 0;
        StreamingEngine::new(1_000).run_with(&input, |i, range, _| {
            assert_eq!(i, 0);
            assert_eq!(range, 0..10);
            blocks += 1;
        });
        assert_eq!(blocks, 1);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        StreamingEngine::new(0).run_summarized(&input(5));
    }
}
