//! The generation-keyed per-query result cache.
//!
//! Keys are whole [`Query`] values — `Query` is `Eq + Hash` with a total,
//! NaN-free float treatment precisely so this map can neither collide nor
//! miss — and every entry remembers the *generation vector* (one
//! monotonic stamp per shard, see
//! [`SourceProvider::with_source`](crate::source::SourceProvider::with_source))
//! it was computed under.  A lookup hits only when the stamps match
//! exactly, so a shard's entries go stale precisely when its refresh
//! observes a new commit — cached replies are always bit-identical to a
//! fresh scan of the current snapshot, never a stale approximation.

use std::collections::HashMap;

use catrisk_riskquery::{Query, QueryResult};

/// One cached result and the snapshot it is valid for.
#[derive(Debug)]
struct CacheEntry {
    generations: Vec<u64>,
    result: QueryResult,
    last_used: u64,
}

/// A bounded result cache keyed on `(Query, generation vector)`.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<Query, CacheEntry>,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up `query` under the current `generations`.  A stale entry
    /// (any shard refreshed since it was cached) is evicted on sight.
    pub fn get(&mut self, query: &Query, generations: &[u64]) -> Option<QueryResult> {
        self.tick += 1;
        match self.entries.get_mut(query) {
            Some(entry) if entry.generations == generations => {
                entry.last_used = self.tick;
                Some(entry.result.clone())
            }
            Some(_) => {
                self.entries.remove(query);
                None
            }
            None => None,
        }
    }

    /// Caches `result` for `query` under `generations`, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&mut self, query: Query, generations: &[u64], result: QueryResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&query) {
            if let Some(coldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(query, _)| query.clone())
            {
                self.entries.remove(&coldest);
            }
        }
        self.entries.insert(
            query,
            CacheEntry {
                generations: generations.to_vec(),
                result,
                last_used: self.tick,
            },
        );
    }

    /// Live entries (diagnostics).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_riskquery::prelude::*;

    fn query(points: usize) -> Query {
        QueryBuilder::new()
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: points + 2,
            })
            .build()
            .unwrap()
    }

    fn result(trials: usize) -> QueryResult {
        QueryResult {
            group_by: vec![],
            aggregates: vec![Aggregate::Mean],
            trials,
            rows: vec![],
        }
    }

    #[test]
    fn hits_only_under_matching_generations() {
        let mut cache = ResultCache::new(4);
        assert!(cache.get(&query(1), &[1, 1]).is_none());
        cache.insert(query(1), &[1, 1], result(10));
        assert_eq!(cache.get(&query(1), &[1, 1]), Some(result(10)));
        // One shard refreshed: the entry is stale, and evicted on sight.
        assert!(cache.get(&query(1), &[1, 2]).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(query(1), &[0], result(1));
        cache.insert(query(2), &[0], result(2));
        // Touch query(1) so query(2) is the cold one.
        assert!(cache.get(&query(1), &[0]).is_some());
        cache.insert(query(3), &[0], result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&query(1), &[0]).is_some());
        assert!(cache.get(&query(2), &[0]).is_none(), "LRU entry evicted");
        assert!(cache.get(&query(3), &[0]).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(query(1), &[0], result(1));
        assert!(cache.get(&query(1), &[0]).is_none());
        assert_eq!(cache.len(), 0);
    }
}
