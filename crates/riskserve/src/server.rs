//! The micro-batching server core: bounded queue → batch window → fused
//! scan → reply slots.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use catrisk_riskquery::{Query, QueryPlan, QueryResult, QuerySession, SegmentSource};

use crate::stats::{Counters, RequestTimings, StatsSnapshot};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// A batch window closes as soon as this many requests are pending.
    pub max_batch: usize,
    /// How long a worker holds a window open for more requests to coalesce
    /// after it has picked up the first one.  Zero disables coalescing —
    /// every request executes as soon as a worker is free.
    pub batch_window: Duration,
    /// Admission-control bound: a submit finding this many requests queued
    /// is rejected with [`ServeError::Overloaded`] instead of queueing.
    pub queue_depth: usize,
    /// Worker threads pulling batches off the queue.  Each batch execution
    /// is itself trial-block-parallel on the rayon pool, so a small number
    /// of workers saturates the machine; more workers trade batching
    /// efficiency for lower window latency under light load.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            batch_window: Duration::from_micros(200),
            queue_depth: 1024,
            workers: 2,
        }
    }
}

/// Typed serving errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue already held
    /// `depth` requests.  The client should back off and retry.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The query cannot run against this server's store (bad trial window,
    /// invalid aggregate, ...).  Rejected at submit time, before queueing.
    InvalidQuery(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "server overloaded: {depth} requests queued")
            }
            ServeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A wire-independent name for each error variant (the TCP protocol and
/// the load generator key on it).
impl ServeError {
    /// Stable machine-readable error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::InvalidQuery(_) => "invalid",
            ServeError::ShuttingDown => "shutting-down",
        }
    }
}

/// A successful reply: the query result plus its latency attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The query's result, bit-identical to a sequential
    /// [`QuerySession`] run of the same query.
    pub result: QueryResult,
    /// Where this request's latency went.
    pub timings: RequestTimings,
}

/// One-shot reply slot shared between a queued request and its
/// [`Ticket`].
#[derive(Debug, Default)]
struct ReplySlot {
    outcome: Mutex<Option<Result<Reply, ServeError>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn fulfil(&self, outcome: Result<Reply, ServeError>) {
        *lock(&self.outcome) = Some(outcome);
        self.ready.notify_all();
    }
}

/// The claim check a [`Server::submit`] returns: redeem it with
/// [`Ticket::wait`] for the reply.  Every accepted ticket is fulfilled
/// exactly once — workers drain the queue on shutdown, so accepted
/// requests are never dropped.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl Ticket {
    /// Blocks until the reply is ready.
    pub fn wait(self) -> Result<Reply, ServeError> {
        let mut outcome = lock(&self.slot.outcome);
        loop {
            if let Some(reply) = outcome.take() {
                return reply;
            }
            outcome = wait(&self.slot.ready, outcome);
        }
    }

    /// Returns the reply if it is already ready, or the ticket back.
    pub fn try_wait(self) -> Result<Result<Reply, ServeError>, Ticket> {
        let ready = lock(&self.slot.outcome).take();
        match ready {
            Some(reply) => Ok(reply),
            None => Err(self),
        }
    }
}

/// One admitted request waiting in the queue.
struct Pending {
    query: Query,
    slot: Arc<ReplySlot>,
    enqueued: Instant,
}

/// Queue state guarded by one mutex: the pending requests plus the
/// shutdown latch the workers observe.
#[derive(Default)]
struct QueueState {
    pending: VecDeque<Pending>,
    shutting_down: bool,
}

struct Shared<S> {
    store: Arc<S>,
    config: ServerConfig,
    queue: Mutex<QueueState>,
    /// Signalled on every admit and on shutdown; workers wait on it both
    /// when idle and while a batch window is open.
    arrived: Condvar,
    counters: Counters,
}

/// A micro-batching query server over any shared [`SegmentSource`].
///
/// Many client threads [`submit`](Server::submit) parsed queries
/// concurrently; worker threads coalesce whatever is pending — closing
/// each batch window after [`ServerConfig::max_batch`] requests or
/// [`ServerConfig::batch_window`], whichever comes first — and push the
/// whole batch through one [`QuerySession::run`], so N concurrent requests
/// over the same slices cost ~1 fused scan instead of N.  Results are
/// bit-identical to running each query alone.
///
/// Dropping the server shuts it down: queued requests are still answered
/// (never dropped), subsequent submits fail with
/// [`ServeError::ShuttingDown`].
pub struct Server<S: SegmentSource + Send + Sync + 'static> {
    shared: Arc<Shared<S>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<S: SegmentSource + Send + Sync + 'static> std::fmt::Debug for Server<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("segments", &self.shared.store.num_segments())
            .field("config", &self.shared.config)
            .finish()
    }
}

/// Locks ignoring poison: a worker panic must not wedge every client.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

impl<S: SegmentSource + Send + Sync + 'static> Server<S> {
    /// Starts a server over `store` with the given configuration.
    pub fn new(store: Arc<S>, config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            store,
            config: ServerConfig {
                max_batch: config.max_batch.max(1),
                workers: config.workers.max(1),
                ..config
            },
            queue: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            counters: Counters::default(),
        });
        let workers = (0..shared.config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("riskserve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn riskserve worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Starts a server with the default configuration.
    pub fn with_defaults(store: Arc<S>) -> Self {
        Self::new(store, ServerConfig::default())
    }

    /// The store this server answers queries over.
    pub fn store(&self) -> &Arc<S> {
        &self.shared.store
    }

    /// The active configuration (after clamping).
    pub fn config(&self) -> ServerConfig {
        self.shared.config
    }

    /// Submits one query for batched execution.
    ///
    /// Validates the query against the store up front (a planning failure
    /// is returned here as [`ServeError::InvalidQuery`], so one client's
    /// malformed query can never fail a batch it shares with others) and
    /// applies admission control: past
    /// [`ServerConfig::queue_depth`] pending requests the submit is
    /// rejected with a typed [`ServeError::Overloaded`] instead of
    /// queueing without bound.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        if let Err(err) = QueryPlan::validate(&*self.shared.store, &query) {
            return Err(ServeError::InvalidQuery(err.to_string()));
        }
        let slot = Arc::new(ReplySlot::default());
        {
            let mut queue = lock(&self.shared.queue);
            if queue.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            let depth = queue.pending.len();
            if depth >= self.shared.config.queue_depth {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { depth });
            }
            queue.pending.push_back(Pending {
                query,
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
            });
            Counters::bump_max(&self.shared.counters.max_queue_depth, depth as u64 + 1);
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.arrived.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits a query and blocks for its reply — the one-call convenience
    /// path.
    pub fn query(&self, query: Query) -> Result<Reply, ServeError> {
        self.submit(query)?.wait()
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.counters.snapshot()
    }

    /// Stops accepting requests, drains the queue (every accepted ticket
    /// is fulfilled) and joins the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutting_down = true;
        }
        self.shared.arrived.notify_all();
        for worker in lock(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

impl<S: SegmentSource + Send + Sync + 'static> Drop for Server<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker body: wait for a request, hold the batch window open, drain up
/// to `max_batch`, execute the batch, deliver replies; on shutdown keep
/// draining until the queue is empty, then exit.
fn worker_loop<S: SegmentSource + Send + Sync>(shared: &Shared<S>) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = lock(&shared.queue);
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.shutting_down {
                    return;
                }
                queue = wait(&shared.arrived, queue);
            }
            // The window opens when a worker first sees the queue
            // non-empty and closes at `batch_window` or `max_batch`,
            // whichever comes first.  Shutdown closes it immediately.
            let deadline = Instant::now() + shared.config.batch_window;
            while queue.pending.len() < shared.config.max_batch && !queue.shutting_down {
                let now = Instant::now();
                if now >= deadline || queue.pending.is_empty() {
                    break;
                }
                queue = wait_timeout(&shared.arrived, queue, deadline - now);
            }
            let take = queue.pending.len().min(shared.config.max_batch);
            queue.pending.drain(..take).collect()
        };
        // Another worker may have drained the queue while this one held
        // the window open.
        if batch.is_empty() {
            continue;
        }
        execute_batch(shared, batch);
    }
}

/// Executes one batch: dedups identical queries across submitters (the
/// session additionally dedups shared scan specs and fuses the remaining
/// scans), runs the fused batch, and fulfils every reply slot.
fn execute_batch<S: SegmentSource + Send + Sync>(shared: &Shared<S>, batch: Vec<Pending>) {
    let started = Instant::now();
    let mut unique: Vec<Query> = Vec::with_capacity(batch.len());
    let mut index_of: HashMap<&Query, usize> = HashMap::with_capacity(batch.len());
    let assignment: Vec<usize> = batch
        .iter()
        .map(|pending| match index_of.entry(&pending.query) {
            Entry::Occupied(slot) => *slot.get(),
            Entry::Vacant(slot) => {
                let index = unique.len();
                slot.insert(index);
                unique.push(pending.query.clone());
                index
            }
        })
        .collect();
    drop(index_of);

    let session = QuerySession::new(&*shared.store);
    match session.run(&unique) {
        Ok(results) => {
            let exec_micros = started.elapsed().as_micros() as u64;
            let batch_size = batch.len() as u32;
            // Counters bump before the slots are fulfilled, so a client
            // that just received its reply already sees itself counted.
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            Counters::bump_max(&shared.counters.largest_batch, u64::from(batch_size));
            for (pending, unique_index) in batch.into_iter().zip(assignment) {
                let timings = RequestTimings {
                    queue_micros: started
                        .saturating_duration_since(pending.enqueued)
                        .as_micros() as u64,
                    exec_micros,
                    batch_size,
                };
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                pending.slot.fulfil(Ok(Reply {
                    result: results[unique_index].clone(),
                    timings,
                }));
            }
        }
        Err(_) => {
            // Unreachable in practice: every query was planned at submit
            // time against this same immutable store.  Fall back to
            // per-query execution so each request still gets its own
            // reply (a batch-wide error must never take out neighbours).
            let batch_size = batch.len() as u32;
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            for pending in batch {
                let outcome = catrisk_riskquery::execute(&*shared.store, &pending.query)
                    .map(|result| Reply {
                        result,
                        timings: RequestTimings {
                            queue_micros: started
                                .saturating_duration_since(pending.enqueued)
                                .as_micros() as u64,
                            exec_micros: started.elapsed().as_micros() as u64,
                            batch_size,
                        },
                    })
                    .map_err(|err| ServeError::InvalidQuery(err.to_string()));
                match &outcome {
                    Ok(_) => shared.counters.completed.fetch_add(1, Ordering::Relaxed),
                    Err(_) => shared.counters.failed.fetch_add(1, Ordering::Relaxed),
                };
                pending.slot.fulfil(outcome);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_store::{random_store, sample_queries};
    use catrisk_riskquery::prelude::*;

    #[test]
    fn served_replies_match_sequential_session() {
        let store = Arc::new(random_store(512, 24, 42));
        let queries = sample_queries();
        let expected = QuerySession::new(&*store).run(&queries).unwrap();

        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                max_batch: 4,
                batch_window: Duration::from_micros(500),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| server.submit(q.clone()).unwrap())
            .collect();
        for (ticket, expected) in tickets.into_iter().zip(&expected) {
            let reply = ticket.wait().unwrap();
            assert_eq!(&reply.result, expected);
            assert!(reply.timings.batch_size >= 1);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, queries.len() as u64);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches >= 1);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn invalid_queries_are_rejected_at_submit() {
        let store = Arc::new(random_store(16, 4, 1));
        let server = Server::with_defaults(store);
        let bad = QueryBuilder::new()
            .trials(0..999_999)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        match server.submit(bad) {
            Err(ServeError::InvalidQuery(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
        // The good query still flows.
        let good = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(server.query(good).is_ok());
    }

    #[test]
    fn shutdown_refuses_new_work_and_is_idempotent() {
        let store = Arc::new(random_store(16, 4, 1));
        let server = Server::with_defaults(store);
        server.shutdown();
        server.shutdown();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(matches!(
            server.submit(query),
            Err(ServeError::ShuttingDown)
        ));
        assert_eq!(ServeError::ShuttingDown.kind(), "shutting-down");
    }

    #[test]
    fn identical_queries_from_many_submitters_dedup() {
        let store = Arc::new(random_store(256, 8, 9));
        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                // A wide-open window so every submit lands in one batch.
                batch_window: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        );
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| server.submit(query.clone()).unwrap())
            .collect();
        let expected = catrisk_riskquery::execute(&*store, &query).unwrap();
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().result, expected);
        }
    }
}
