//! `catrisk serve` — a micro-batched TCP query server over a catalog of
//! persistent stores — and `catrisk loadgen` — an open-loop load
//! generator against it.
//!
//! `serve` opens one or more `catrisk-riskstore` files as a
//! [`StoreCatalog`], routes every query across the shards (exact
//! cross-shard merge, bit-identical to one concatenated store), refreshes
//! shards live as ingest writers commit, answers repeated queries from a
//! generation-keyed result cache, and speaks the line protocol of
//! `catrisk-riskserve` until a client sends `shutdown`.  `loadgen` drives
//! a mixed query workload at a running server from many concurrent
//! connections and prints throughput and latency percentiles — with
//! `--refresh-writer` it also appends and commits segments to one shard
//! mid-run, exercising the serve-while-ingesting path under load.

use std::path::{Path, PathBuf};
use std::time::Duration;

use catrisk_riskclient::ClientConfig;
use catrisk_riskserve::{
    loadgen, Fleet, FleetOptions, LoadgenOptions, Server, ServerConfig, StoreCatalog, TcpFrontEnd,
};

use super::Options;

/// Detailed usage of the serve command, shown by `catrisk serve --help`.
pub const SERVE_HELP: &str = "usage: catrisk serve <CATALOG...> [options]

Serves ad-hoc aggregate queries over a catalog of persistent store files,
coalescing concurrent requests into micro-batches (one fused scan per
batch), refreshing shards as ingest writers commit, and caching per-query
results keyed on each shard's committed generation.

CATALOG is either one *directory* of store files, or one or more store
*file* paths:

  catrisk serve /data/stores           every *.clm in the directory, with
                                       auto-discovery: new store files
                                       dropped in later (a `store split`
                                       output, an ingest writer's next
                                       --trial-offset window) are adopted
                                       and served live, without restart
  catrisk serve eu.clm na.clm          a fixed file list (no discovery)

The sharding axis is detected from the stores' trial offsets: offset-0
shards union along the segment axis; shards written with distinct
--trial-offset windows (see `catrisk store write/split`) stitch along
the trial axis, where the server additionally caches per-shard partial
aggregates so a refresh of one shard rescans only that shard's trial
window.  Speaks a line protocol: one query text per line in, one JSON
reply per line out (the normative spec is docs/PROTOCOL.md):

  select mean, tvar(0.99) where peril=HU|FL group by region
  ping | stats | quit | shutdown

The server runs until a client sends `shutdown` (see `catrisk loadgen
--shutdown`).

options:
  --replicas N     serve a replica fleet: spawn N child serve processes
                   over the same catalog directory (requires the
                   directory form), print each replica's address on its
                   own stdout line, restart replicas that die, and exit
                   once every replica has drained a protocol shutdown.
                   Clients spread over the addresses and fail over to a
                   live sibling when a replica dies (see `catrisk
                   loadgen --addr A --addr B`)
  --addr A         listen address (default 127.0.0.1:7433, port 0 = ephemeral)
  --max-batch N    close a batch window at N requests (default 64)
  --window-us U    batch window in microseconds (default 200)
  --queue-depth N  reject submits past N queued requests (default 1024)
  --workers N      batch worker threads (default 2)
  --cache N        result-cache capacity in unique queries (default 1024,
                   0 disables caching)
  --partial-cache N  per-shard partial-aggregate cache capacity in
                   (query, shard) entries, trial-axis catalogs only
                   (default 4096, 0 disables partial caching)
  --refresh-ms MS  minimum milliseconds between shard-header refresh
                   probes (default 0 = probe every batch; raise on slow
                   or networked filesystems to bound per-batch syscalls
                   at the cost of commits surfacing up to MS later)
  --metrics-threshold-us U  batches slower than U microseconds emit a
                   `slow-batch` flight-recorder event (default 0 = off)
  --recorder-capacity N  flight-recorder ring capacity in events
                   (default 256, 0 disables the recorder); dump it live
                   with `catrisk stats --recorder` or the `recorder`
                   protocol command
  --trace-sample N trace every Nth admitted request (1 = every request,
                   default 0 = only requests that ask via the wire
                   `trace` prefix); traced requests build a span-tree
                   execution profile and stamp histogram exemplars
  --trace-capacity N  completed traces retained for `trace <id>` lookups
                   and `catrisk stats --slowest` (default 256, plus a
                   fixed pool of the slowest; 0 disables retention)

deprecated (still accepted, with a warning):
  --store PATH     pass the path as a positional CATALOG argument instead
  --in PATH        pass the path as a positional CATALOG argument instead";

/// Detailed usage of the loadgen command, shown by `catrisk loadgen --help`.
pub const LOADGEN_HELP: &str = "usage: catrisk loadgen [options]

Drives load at a running `catrisk serve` instance from many concurrent
connections and prints throughput, latency percentiles and the server's
cache/refresh counters.  Fails (exit 1) if any request errors or every
reply is empty, so it doubles as a smoke check.

options:
  --addr A         server address (default 127.0.0.1:7433); repeat for
                   every replica of a fleet — clients then spread
                   round-robin and fail over to a live sibling when a
                   replica dies mid-run
  --clients N      concurrent connections (default 32)
  --requests N     total requests across all clients (default 3200)
  --rps R          open-loop target rate, requests/second across all
                   clients; 0 = closed loop (default 0)
  --query LINE     use this query line instead of the built-in mix
  --skewed         replace the mix with the power-law trial-window
                   preset: the run probes the server for its trial
                   count, then fires windowed queries whose lengths
                   halve geometrically — a few full-axis scans among
                   many small windows, the per-request cost skew the
                   scan layer's self-scheduling exists for (takes
                   precedence over --query)
  --connect-timeout S  seconds to retry the initial connect (default 30)
  --refresh-writer PATH  append+commit segments to this served shard file
                   while the clients run (serve-while-ingesting); fails if
                   the commits never become visible to queries.  Repeat
                   for a trial-sharded catalog: each round appends the
                   same new layer to every listed window, which is when
                   the union can serve it
  --refresh-commits N    ingest rounds the writer makes (default 4)
  --refresh-every-ms MS  pause between ingest rounds (default 250)
  --expect-cache-hits    fail unless the server reports a nonzero
                   result-cache hit count after the run
  --expect-partial-hits  fail unless the server reports a nonzero
                   per-shard partial-cache hit count after the run
                   (trial-sharded catalogs only)
  --require-stats  fail (exit 1) when the post-run server stats/metrics
                   scrape cannot be fetched, instead of just warning —
                   set this in CI so a silently absent server-side
                   report cannot pass
  --trace-every N  send every Nth request per client with the `trace`
                   prefix (default 0 = never): the report then prints the
                   slowest traced request's execution profile
  --shutdown       send `shutdown` after the run, stopping the server

The report includes the server's own per-stage latency histograms
(queue wait, scan, batch execution) scraped via the `metrics` protocol
command — see docs/OBSERVABILITY.md for the stage taxonomy.";

/// What the positional `CATALOG` arguments (plus the deprecated
/// `--store`/`--in` aliases) resolved to.
pub(crate) enum ServeSource {
    /// A fixed list of store files.
    Files(Vec<String>),
    /// One catalog directory, served with auto-discovery on.
    Dir(PathBuf),
}

/// Resolves the serve addressing form: positional paths first (a
/// directory means auto-discovery), deprecated `--store`/`--in` merged
/// in with a one-line warning.
pub(crate) fn resolve_sources(
    positionals: &[String],
    options: &Options,
) -> Result<ServeSource, String> {
    let mut files: Vec<String> = Vec::new();
    let mut dirs: Vec<PathBuf> = Vec::new();
    for arg in positionals {
        let path = Path::new(arg);
        if path.is_dir() {
            dirs.push(path.to_path_buf());
        } else {
            files.push(arg.clone());
        }
    }
    let mut deprecated = options.get_all("store");
    let input = options.get("in", String::new())?;
    if !input.is_empty() {
        deprecated.push(input);
    }
    if !deprecated.is_empty() {
        eprintln!(
            "warning: --store/--in are deprecated; pass store files or a catalog \
             directory as positional arguments (e.g. `catrisk serve /data/stores`)"
        );
        files.append(&mut deprecated);
    }
    match (dirs.len(), files.is_empty()) {
        (0, true) => Err(
            "a catalog argument is required: one directory of store files \
             (auto-discovering) or one or more store file paths (create stores \
             with `catrisk store write`)"
                .to_string(),
        ),
        (0, false) => Ok(ServeSource::Files(files)),
        (1, true) => Ok(ServeSource::Dir(dirs.remove(0))),
        (1, false) => Err("cannot mix a catalog directory with store file paths".to_string()),
        _ => Err("at most one catalog directory is allowed".to_string()),
    }
}

/// Runs the serve command from raw arguments: leading non-`--`
/// arguments are the positional CATALOG paths.
pub fn run_serve_args(args: &[String]) -> Result<(), String> {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (positionals, rest) = args.split_at(split);
    let options = Options::parse(rest)?;
    run_serve(positionals, &options)
}

/// Runs the serve command: binds the front-end (or spawns the replica
/// fleet) and blocks until shutdown.
pub fn run_serve(positionals: &[String], options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{SERVE_HELP}");
        return Ok(());
    }
    let replicas = options.get("replicas", 1usize)?;
    if replicas > 1 {
        return run_fleet(positionals, options, replicas);
    }
    let front = bind_front_end(positionals, options)?;
    front
        .wait()
        .map_err(|e| format!("server terminated abnormally: {e}"))?;
    eprintln!("  server drained and stopped cleanly");
    Ok(())
}

/// Opens the catalog, starts the batching server and binds the TCP
/// listener (split from [`run_serve`] so tests can drive an
/// ephemeral-port instance).
pub(crate) fn bind_front_end(
    positionals: &[String],
    options: &Options,
) -> Result<TcpFrontEnd<StoreCatalog>, String> {
    let source = resolve_sources(positionals, options)?;
    let addr = options.get("addr", "127.0.0.1:7433".to_string())?;
    let config = ServerConfig {
        max_batch: options.get("max-batch", 64usize)?,
        batch_window: Duration::from_micros(options.get("window-us", 200u64)?),
        queue_depth: options.get("queue-depth", 1024usize)?,
        workers: options.get("workers", 2usize)?,
        cache_capacity: options.get("cache", 1024usize)?,
        partial_cache_capacity: options.get("partial-cache", 4096usize)?,
        metrics_threshold_us: options.get("metrics-threshold-us", 0u64)?,
        recorder_capacity: options.get("recorder-capacity", 256usize)?,
        trace_sample_every: options.get("trace-sample", 0u64)?,
        trace_capacity: options.get("trace-capacity", 256usize)?,
    };

    let catalog = match &source {
        ServeSource::Files(stores) => StoreCatalog::open(stores).map_err(|e| e.to_string())?,
        ServeSource::Dir(dir) => StoreCatalog::open_dir(dir).map_err(|e| e.to_string())?,
    };
    catalog.set_refresh_interval(Duration::from_millis(options.get("refresh-ms", 0u64)?));
    if catalog.shard_segments().iter().sum::<usize>() == 0 {
        return Err(format!(
            "catalog holds no committed segments across {} shard(s)",
            catalog.num_shards()
        ));
    }
    eprintln!(
        "  serving a {}-shard {}-axis catalog ({:.1} MB resident):",
        catalog.num_shards(),
        catalog.axis(),
        catalog.memory_bytes() as f64 / 1.0e6
    );
    if let ServeSource::Dir(dir) = &source {
        eprintln!(
            "  auto-discovery on: new store files dropped into {} are adopted live",
            dir.display()
        );
    }
    for line in catalog.describe().lines() {
        eprintln!("    {line}");
    }
    let server = Server::new(catalog, config);
    let front =
        TcpFrontEnd::bind(server, &addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    // The bound address goes to stdout so scripts can capture it (it
    // differs from --addr when port 0 was requested).
    println!("{}", front.local_addr());
    eprintln!(
        "  listening on {} (max-batch {}, window {}us, queue depth {}, {} workers, cache {})",
        front.local_addr(),
        config.max_batch,
        config.batch_window.as_micros(),
        config.queue_depth,
        config.workers,
        config.cache_capacity
    );
    Ok(front)
}

/// Server-tuning options a fleet parent forwards verbatim to each
/// replica child.
const FORWARDED_OPTIONS: &[&str] = &[
    "max-batch",
    "window-us",
    "queue-depth",
    "workers",
    "cache",
    "partial-cache",
    "refresh-ms",
    "metrics-threshold-us",
    "recorder-capacity",
    "trace-sample",
    "trace-capacity",
];

/// `serve --replicas N`: spawn N child serve processes over one catalog
/// directory, print each replica's address on its own stdout line, then
/// monitor — restarting replicas that die on their old address (so
/// client address lists stay valid) — until every replica has drained a
/// protocol shutdown.
fn run_fleet(positionals: &[String], options: &Options, replicas: usize) -> Result<(), String> {
    let ServeSource::Dir(dir) = resolve_sources(positionals, options)? else {
        return Err(
            "--replicas needs a catalog directory every replica can share \
             (`catrisk serve DIR --replicas N`)"
                .to_string(),
        );
    };
    if options.has_value("addr") {
        return Err(
            "--addr cannot be combined with --replicas: each replica picks its own \
             ephemeral port and announces it on stdout"
                .to_string(),
        );
    }
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the catrisk binary: {e}"))?;
    let mut forwarded: Vec<String> = Vec::new();
    for key in FORWARDED_OPTIONS {
        for value in options.get_all(key) {
            forwarded.push(format!("--{key}"));
            forwarded.push(value);
        }
    }
    let dir_arg = dir.to_string_lossy().into_owned();
    let command: catrisk_riskserve::fleet::ReplicaCommand = Box::new(move |_index, pin| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve")
            .arg(&dir_arg)
            .arg("--addr")
            .arg(pin.unwrap_or("127.0.0.1:0"))
            .args(&forwarded);
        cmd
    });
    let mut fleet = Fleet::spawn(
        command,
        FleetOptions {
            replicas,
            client: ClientConfig {
                connect_timeout: Duration::from_millis(500),
                read_timeout: Some(Duration::from_secs(10)),
            },
            spawn_timeout: Duration::from_secs(60),
            stats_staleness: Duration::from_secs(60),
        },
    )
    .map_err(|e| e.to_string())?;

    // The replica addresses go to stdout, one per line, in replica
    // order — the fleet-aware equivalent of single-serve's bound-addr
    // line — so scripts can capture them for `loadgen --addr`.
    for addr in fleet.addrs() {
        println!("{addr}");
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();
    for (index, (addr, pid)) in fleet.addrs().iter().zip(fleet.pids()).enumerate() {
        eprintln!("  replica {index} (pid {pid}) listening on {addr}");
    }
    eprintln!(
        "  fleet of {replicas} replicas over {} (auto-discovery on); \
         stop with `catrisk loadgen --shutdown` against every replica",
        dir.display()
    );

    loop {
        std::thread::sleep(Duration::from_millis(500));
        match fleet.restart_dead() {
            Ok(restarted) => {
                for index in restarted {
                    eprintln!(
                        "  replica {index} died; restarted on {} (pid {})",
                        fleet.addrs()[index],
                        fleet.pids()[index]
                    );
                }
            }
            Err(err) => eprintln!("  warning: replica restart failed (will retry): {err}"),
        }
        if fleet.drained() {
            break;
        }
        let _ = fleet.probe();
    }
    eprintln!("  fleet drained and stopped cleanly");
    Ok(())
}

/// Runs the loadgen command.
pub fn run_loadgen(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{LOADGEN_HELP}");
        return Ok(());
    }
    let loadgen_options = loadgen_options(options)?;
    let report = loadgen::run(&loadgen_options)?;
    println!("{report}");
    if report.ok == 0 {
        return Err("no successful replies".to_string());
    }
    if report.rows == 0 {
        return Err("replies held no result rows".to_string());
    }
    if report.errors > 0 {
        return Err(format!("{} requests failed", report.errors));
    }
    if let Some(ingest) = &report.ingest {
        if !ingest.visible {
            return Err(
                "segments committed during the run never became visible to queries".to_string(),
            );
        }
    }
    if options.has_flag("expect-cache-hits") {
        match &report.server_stats {
            Some(stats) if stats.cache_hits > 0 => {}
            Some(stats) => {
                return Err(format!(
                    "--expect-cache-hits: the server reported zero cache hits ({} misses)",
                    stats.cache_misses
                ));
            }
            None => return Err("--expect-cache-hits: could not fetch server stats".to_string()),
        }
    }
    if options.has_flag("expect-partial-hits") {
        match &report.server_stats {
            Some(stats) if stats.partial_hits > 0 => {}
            Some(stats) => {
                return Err(format!(
                    "--expect-partial-hits: the server reported zero partial-cache hits \
                     ({} shard-window rescans)",
                    stats.partial_misses
                ));
            }
            None => return Err("--expect-partial-hits: could not fetch server stats".to_string()),
        }
    }
    Ok(())
}

pub(crate) fn loadgen_options(options: &Options) -> Result<LoadgenOptions, String> {
    let mut addrs = options.get_all("addr");
    if addrs.is_empty() {
        addrs.push("127.0.0.1:7433".to_string());
    }
    let mut loadgen_options = LoadgenOptions {
        addrs,
        clients: options.get("clients", 32usize)?,
        requests: options.get("requests", 3200usize)?,
        rps: options.get("rps", 0.0f64)?,
        connect_timeout_secs: options.get("connect-timeout", 30u64)?,
        shutdown: options.has_flag("shutdown"),
        refresh_writers: options.get_all("refresh-writer"),
        refresh_commits: options.get("refresh-commits", 4usize)?,
        refresh_every_ms: options.get("refresh-every-ms", 250u64)?,
        require_stats: options.has_flag("require-stats"),
        trace_every: options.get("trace-every", 0u64)?,
        skewed: options.has_flag("skewed"),
        ..LoadgenOptions::default()
    };
    let query = options.get("query", String::new())?;
    if !query.is_empty() {
        loadgen_options.queries = vec![query];
    }
    Ok(loadgen_options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_riskclient::Client;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_store(name: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-cli-serve-{}-{}.clm",
            std::process::id(),
            name
        ));
        path.to_string_lossy().into_owned()
    }

    fn write_small_store(out: &str, seed: &str) {
        super::super::store::run(&strings(&[
            "write",
            "--out",
            out,
            "--trials",
            "150",
            "--locations",
            "100",
            "--events",
            "2000",
            "--seed",
            seed,
            "--engine",
            "parallel",
        ]))
        .unwrap();
    }

    #[test]
    fn serve_and_loadgen_round_trip() {
        let out = temp_store("roundtrip");
        write_small_store(&out, "5");

        // Ephemeral port: bind the front-end the way `serve` does.
        let serve_options =
            Options::parse(&strings(&["--addr", "127.0.0.1:0", "--trace-sample", "1"])).unwrap();
        let front = bind_front_end(std::slice::from_ref(&out), &serve_options).unwrap();
        let addr = front.local_addr().to_string();

        // Drive it the way `loadgen` does, including the shutdown line and
        // the cache-hit assertion (the mix repeats, so hits must occur).
        let loadgen_args = strings(&[
            "--addr",
            &addr,
            "--clients",
            "8",
            "--requests",
            "64",
            "--expect-cache-hits",
            "--require-stats",
            "--trace-every",
            "4",
            "--shutdown",
        ]);
        run_loadgen(&Options::parse(&loadgen_args).unwrap()).unwrap();
        front.wait().unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn serve_catalog_refreshes_while_loadgen_ingests() {
        let shard_a = temp_store("catalog-a");
        let shard_b = temp_store("catalog-b");
        write_small_store(&shard_a, "5");
        write_small_store(&shard_b, "7");

        // The deprecated --store aliases still resolve (with a warning).
        let serve_options = Options::parse(&strings(&[
            "--store",
            &shard_a,
            "--store",
            &shard_b,
            "--addr",
            "127.0.0.1:0",
        ]))
        .unwrap();
        let front = bind_front_end(&[], &serve_options).unwrap();
        assert_eq!(front.server().provider().num_shards(), 2);
        let addr = front.local_addr().to_string();

        // Mid-run, the loadgen ingest writer appends + commits to shard B;
        // run_loadgen fails unless those segments become visible.
        let loadgen_args = strings(&[
            "--addr",
            &addr,
            "--clients",
            "4",
            "--requests",
            "48",
            "--refresh-writer",
            &shard_b,
            "--refresh-commits",
            "2",
            "--refresh-every-ms",
            "20",
            "--expect-cache-hits",
            "--shutdown",
        ]);
        run_loadgen(&Options::parse(&loadgen_args).unwrap()).unwrap();
        front.wait().unwrap();
        let _ = std::fs::remove_file(&shard_a);
        let _ = std::fs::remove_file(&shard_b);
    }

    #[test]
    fn serve_trial_sharded_catalog_reuses_partials_under_ingest() {
        use catrisk_riskserve::ShardAxis;

        // One store, split into two trial windows the server stitches.
        let whole = temp_store("trial");
        write_small_store(&whole, "5");
        let prefix = whole.strip_suffix(".clm").unwrap().to_string();
        super::super::store::run(&strings(&["split", "--in", &whole, "--shards", "2"])).unwrap();
        let parts: Vec<String> = (0..2).map(|k| format!("{prefix}-part{k}.clm")).collect();

        let serve_options = Options::parse(&strings(&["--addr", "127.0.0.1:0"])).unwrap();
        let front = bind_front_end(&[parts[0].clone(), parts[1].clone()], &serve_options).unwrap();
        assert_eq!(front.server().provider().axis(), ShardAxis::Trial);
        let addr = front.local_addr().to_string();

        // The ingest round appends the same layer to both windows,
        // staggered — the gap is where the untouched window's cached
        // partials must keep answering (asserted via the stats the
        // loadgen fetches).
        let loadgen_args = strings(&[
            "--addr",
            &addr,
            "--clients",
            "4",
            "--requests",
            "120",
            "--rps",
            "300",
            "--refresh-writer",
            &parts[0],
            "--refresh-writer",
            &parts[1],
            "--refresh-commits",
            "1",
            "--refresh-every-ms",
            "120",
            "--expect-cache-hits",
            "--expect-partial-hits",
            "--require-stats",
            "--shutdown",
        ]);
        run_loadgen(&Options::parse(&loadgen_args).unwrap()).unwrap();
        front.wait().unwrap();
        let _ = std::fs::remove_file(&whole);
        for part in &parts {
            let _ = std::fs::remove_file(part);
        }
    }

    #[test]
    fn serve_speaks_the_line_protocol() {
        let out = temp_store("protocol");
        write_small_store(&out, "5");
        let serve_options = Options::parse(&strings(&["--addr", "127.0.0.1:0"])).unwrap();
        let front = bind_front_end(std::slice::from_ref(&out), &serve_options).unwrap();

        let mut client = Client::connect(
            &front.local_addr().to_string(),
            catrisk_riskclient::ClientConfig::default(),
        )
        .unwrap();
        let reply = client
            .round_trip("select mean, tvar(0.9) where peril=HU|FL group by region")
            .unwrap();
        assert!(reply.ok, "{reply:?}");
        assert!(!reply.result.unwrap().rows.is_empty());
        let ack = client.round_trip("shutdown").unwrap();
        assert_eq!(ack.kind, "shutting-down");
        front.wait().unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn serve_directory_catalog_discovers_new_stores() {
        let dir = {
            let mut dir = std::env::temp_dir();
            dir.push(format!("catrisk-cli-serve-dir-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            dir
        };
        let dir_arg = dir.to_string_lossy().into_owned();
        write_small_store(&format!("{dir_arg}/a.clm"), "5");

        let serve_options = Options::parse(&strings(&["--addr", "127.0.0.1:0"])).unwrap();
        let front = bind_front_end(std::slice::from_ref(&dir_arg), &serve_options).unwrap();
        assert_eq!(front.server().provider().num_shards(), 1);
        let addr = front.local_addr().to_string();
        let mut client =
            Client::connect(&addr, catrisk_riskclient::ClientConfig::default()).unwrap();
        assert!(client.round_trip("select mean group by region").unwrap().ok);

        // Drop a sibling store into the directory: the next query's
        // refresh adopts it, no restart.
        write_small_store(&format!("{dir_arg}/b.clm"), "7");
        assert!(client.round_trip("select mean group by region").unwrap().ok);
        assert_eq!(front.server().provider().num_shards(), 2);
        let stats = client.round_trip("stats").unwrap().stats.unwrap();
        assert_eq!(stats.discovered_stores, 1);

        assert_eq!(client.round_trip("shutdown").unwrap().kind, "shutting-down");
        front.wait().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_errors_are_graceful() {
        let no_args = Options::parse(&strings(&[])).unwrap();
        assert!(
            run_serve(&[], &no_args).is_err(),
            "a catalog argument is required"
        );
        assert!(run_serve(
            &[],
            &Options::parse(&strings(&["--in", "/nonexistent/x.clm"])).unwrap()
        )
        .is_err());
        // An all-empty (never committed) catalog is rejected up front.
        let out = temp_store("empty");
        drop(catrisk_riskstore::StoreWriter::create(&out, 8).unwrap());
        assert!(run_serve(std::slice::from_ref(&out), &no_args).is_err());
        // A directory mixed with files, or several directories, is
        // ambiguous and refused.
        let dir = std::env::temp_dir().to_string_lossy().into_owned();
        assert!(run_serve(&[dir.clone(), out.clone()], &no_args).is_err());
        assert!(run_serve(&[dir.clone(), dir.clone()], &no_args).is_err());
        // --replicas requires the directory form and forbids --addr.
        let replicas = Options::parse(&strings(&["--replicas", "2"])).unwrap();
        assert!(run_serve(std::slice::from_ref(&out), &replicas).is_err());
        let pinned =
            Options::parse(&strings(&["--replicas", "2", "--addr", "127.0.0.1:0"])).unwrap();
        assert!(run_serve(&[dir], &pinned).is_err());
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn loadgen_errors_are_graceful() {
        // Nothing listening on a reserved port: typed error, not a panic.
        let options = Options::parse(&strings(&[
            "--addr",
            "127.0.0.1:1",
            "--connect-timeout",
            "0",
            "--requests",
            "4",
        ]))
        .unwrap();
        assert!(run_loadgen(&options).is_err());
    }

    #[test]
    fn help_flags_print() {
        run_serve(&[], &Options::parse(&strings(&["--help"])).unwrap()).unwrap();
        run_loadgen(&Options::parse(&strings(&["--help"])).unwrap()).unwrap();
    }
}
