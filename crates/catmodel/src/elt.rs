//! The Event Loss Table (ELT): the catastrophe model's output and the
//! aggregate risk engine's second input.
//!
//! `ELT = { EL_i = {E_i, l_i}, I = (I_1, I_2, ...) }` — a set of event
//! losses for one exposure set plus per-ELT financial terms and metadata
//! (paper §II.A).  "An event may be part of multiple ELTs and associated
//! with a different loss in each ELT."

use serde::{Deserialize, Serialize};

use catrisk_eventgen::EventId;
use catrisk_finterms::currency::Currency;
use catrisk_finterms::terms::FinancialTerms;

/// One record of an ELT: an event and its expected loss for the exposure set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EltRecord {
    /// Identifier of the catalog event.
    pub event: EventId,
    /// Expected (mean) loss of the event for this exposure set, in the ELT's
    /// currency.
    pub mean_loss: f64,
    /// Standard deviation of the loss (secondary uncertainty), retained for
    /// the loss-distribution extension discussed in the paper's §IV.
    pub std_dev: f64,
    /// Total exposed value of the affected locations, used for reporting.
    pub exposure_value: f64,
}

/// An Event Loss Table with its metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLossTable {
    /// Name of the exposure set this ELT was built from.
    pub name: String,
    /// Currency the losses are denominated in.
    pub currency: Currency,
    /// Financial terms `I` applied to each event loss during aggregation.
    pub financial_terms: FinancialTerms,
    records: Vec<EltRecord>,
}

impl EventLossTable {
    /// Creates an ELT from records (sorted by event id internally).
    pub fn new(
        name: impl Into<String>,
        currency: Currency,
        financial_terms: FinancialTerms,
        mut records: Vec<EltRecord>,
    ) -> Self {
        records.sort_by_key(|r| r.event);
        records.dedup_by_key(|r| r.event);
        Self {
            name: name.into(),
            currency,
            financial_terms,
            records,
        }
    }

    /// Number of event-loss records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the ELT has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, sorted by event id.
    pub fn records(&self) -> &[EltRecord] {
        &self.records
    }

    /// `(event, mean_loss)` pairs, the form consumed by the lookup builders.
    pub fn loss_pairs(&self) -> Vec<(EventId, f64)> {
        self.records
            .iter()
            .map(|r| (r.event, r.mean_loss))
            .collect()
    }

    /// Sum of all mean losses (a scale indicator, not an expected annual
    /// loss — that requires the event rates).
    pub fn total_mean_loss(&self) -> f64 {
        self.records.iter().map(|r| r.mean_loss).sum()
    }

    /// Largest single event loss in the table.
    pub fn max_loss(&self) -> f64 {
        self.records.iter().map(|r| r.mean_loss).fold(0.0, f64::max)
    }

    /// Expected annual loss given a function returning each event's annual
    /// occurrence rate.
    pub fn expected_annual_loss(&self, rate_of: impl Fn(EventId) -> f64) -> f64 {
        self.records
            .iter()
            .map(|r| r.mean_loss * rate_of(r.event))
            .sum()
    }

    /// Looks up the mean loss of one event (0 when absent); a reference
    /// implementation used in tests — the engines use `catrisk-lookup`
    /// structures instead.
    pub fn loss_of(&self, event: EventId) -> f64 {
        match self.records.binary_search_by_key(&event, |r| r.event) {
            Ok(i) => self.records[i].mean_loss,
            Err(_) => 0.0,
        }
    }

    /// Converts all losses into the base currency using the given rate and
    /// returns a new ELT denominated in `base`.
    pub fn converted(&self, base: Currency, rate: f64) -> EventLossTable {
        let records = self
            .records
            .iter()
            .map(|r| EltRecord {
                event: r.event,
                mean_loss: r.mean_loss * rate,
                std_dev: r.std_dev * rate,
                exposure_value: r.exposure_value * rate,
            })
            .collect();
        EventLossTable {
            name: self.name.clone(),
            currency: base,
            financial_terms: FinancialTerms {
                fx_rate: 1.0,
                ..self.financial_terms
            },
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(event: EventId, loss: f64) -> EltRecord {
        EltRecord {
            event,
            mean_loss: loss,
            std_dev: loss * 0.5,
            exposure_value: loss * 10.0,
        }
    }

    #[test]
    fn records_sorted_and_deduplicated() {
        let elt = EventLossTable::new(
            "a",
            Currency::Usd,
            FinancialTerms::pass_through(),
            vec![
                record(9, 1.0),
                record(3, 2.0),
                record(9, 5.0),
                record(1, 4.0),
            ],
        );
        assert_eq!(elt.len(), 3);
        let events: Vec<EventId> = elt.records().iter().map(|r| r.event).collect();
        assert_eq!(events, vec![1, 3, 9]);
        assert_eq!(elt.loss_of(1), 4.0);
        assert_eq!(elt.loss_of(2), 0.0);
        assert!(!elt.is_empty());
    }

    #[test]
    fn aggregates() {
        let elt = EventLossTable::new(
            "agg",
            Currency::Usd,
            FinancialTerms::pass_through(),
            vec![record(0, 10.0), record(1, 30.0), record(2, 20.0)],
        );
        assert_eq!(elt.total_mean_loss(), 60.0);
        assert_eq!(elt.max_loss(), 30.0);
        assert_eq!(elt.loss_pairs().len(), 3);
        // EAL with rate 0.1 for every event.
        assert!((elt.expected_annual_loss(|_| 0.1) - 6.0).abs() < 1e-12);
        // Rate depends on event id.
        let eal = elt.expected_annual_loss(|e| if e == 1 { 1.0 } else { 0.0 });
        assert_eq!(eal, 30.0);
    }

    #[test]
    fn currency_conversion() {
        let elt = EventLossTable::new(
            "eur-book",
            Currency::Eur,
            FinancialTerms::new(0.0, f64::INFINITY, 1.0, 1.08).unwrap(),
            vec![record(5, 100.0)],
        );
        let usd = elt.converted(Currency::Usd, 1.08);
        assert_eq!(usd.currency, Currency::Usd);
        assert!((usd.loss_of(5) - 108.0).abs() < 1e-9);
        assert_eq!(usd.financial_terms.fx_rate, 1.0);
        assert_eq!(usd.name, "eur-book");
        assert!((usd.records()[0].std_dev - 54.0).abs() < 1e-9);
    }

    #[test]
    fn empty_elt() {
        let elt = EventLossTable::new(
            "empty",
            Currency::Usd,
            FinancialTerms::pass_through(),
            vec![],
        );
        assert!(elt.is_empty());
        assert_eq!(elt.total_mean_loss(), 0.0);
        assert_eq!(elt.max_loss(), 0.0);
        assert_eq!(elt.loss_of(0), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let elt = EventLossTable::new(
            "rt",
            Currency::Gbp,
            FinancialTerms::new(10.0, 1000.0, 0.8, 1.27).unwrap(),
            vec![record(2, 7.0), record(8, 3.0)],
        );
        let json = serde_json::to_string(&elt).unwrap();
        let back: EventLossTable = serde_json::from_str(&json).unwrap();
        assert_eq!(elt, back);
    }
}
