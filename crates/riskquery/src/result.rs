//! Query results: decoded group keys, aggregate values and table
//! rendering.

use serde::{Deserialize, Serialize};

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;

use crate::dims::{Dimension, LineOfBusiness};
use crate::query::Aggregate;

/// A decoded group-key component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimValue {
    /// A layer id.
    Layer(LayerId),
    /// A peril.
    Peril(Peril),
    /// A region.
    Region(Region),
    /// A line of business.
    Lob(LineOfBusiness),
}

impl DimValue {
    /// Total order over key components of the same dimension, used for the
    /// canonical output ordering of result rows.
    fn rank(&self) -> (u8, u32) {
        match self {
            DimValue::Layer(id) => (0, id.0),
            DimValue::Peril(p) => (1, *p as u32),
            DimValue::Region(r) => (2, *r as u32),
            DimValue::Lob(l) => (3, *l as u32),
        }
    }

    /// Lexicographic comparison of two group keys.
    pub fn compare_keys(a: &[DimValue], b: &[DimValue]) -> std::cmp::Ordering {
        let ra: Vec<(u8, u32)> = a.iter().map(DimValue::rank).collect();
        let rb: Vec<(u8, u32)> = b.iter().map(DimValue::rank).collect();
        ra.cmp(&rb)
    }
}

impl std::fmt::Display for DimValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimValue::Layer(id) => write!(f, "{id}"),
            DimValue::Peril(p) => write!(f, "{p}"),
            DimValue::Region(r) => write!(f, "{r}"),
            DimValue::Lob(l) => write!(f, "{l}"),
        }
    }
}

/// One computed aggregate value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggValue {
    /// A scalar metric.
    Scalar(f64),
    /// A sampled exceedance curve: `(probability, loss)` pairs from most to
    /// least likely.
    Curve(Vec<(f64, f64)>),
}

impl AggValue {
    /// The scalar value, if this is one.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            AggValue::Scalar(v) => Some(*v),
            AggValue::Curve(_) => None,
        }
    }

    /// The curve points, if this is a curve.
    pub fn as_curve(&self) -> Option<&[(f64, f64)]> {
        match self {
            AggValue::Scalar(_) => None,
            AggValue::Curve(points) => Some(points),
        }
    }
}

/// One result row: a group key plus its aggregate values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// Decoded group key, one component per group-by dimension.
    pub key: Vec<DimValue>,
    /// Number of store segments aggregated into this group.
    pub segments: usize,
    /// Aggregate values, in the query's aggregate order.
    pub values: Vec<AggValue>,
}

/// The result of one query: rows in canonical key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The group-by dimensions (column headers of the key).
    pub group_by: Vec<Dimension>,
    /// The computed aggregates (column headers of the values).
    pub aggregates: Vec<Aggregate>,
    /// Number of trials scanned per group.
    pub trials: usize,
    /// Result rows sorted ascending by key.
    pub rows: Vec<ResultRow>,
}

impl std::fmt::Display for QueryResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Header: group-by dimensions, segment count, scalar aggregates.
        let mut headers: Vec<String> = self.group_by.iter().map(|d| d.to_string()).collect();
        headers.push("segs".to_string());
        for aggregate in &self.aggregates {
            headers.push(aggregate.label());
        }

        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut cells: Vec<String> = row.key.iter().map(|k| k.to_string()).collect();
            if cells.is_empty() && self.group_by.is_empty() {
                // No group-by: no key cells.
            }
            cells.push(row.segments.to_string());
            for value in &row.values {
                cells.push(match value {
                    AggValue::Scalar(v) => format_scalar(*v),
                    AggValue::Curve(points) => format!("<curve: {} pts>", points.len()),
                });
            }
            rows.push(cells);
        }

        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        writeln!(f, "{} trials, {} group(s)", self.trials, self.rows.len())?;
        let header_line: Vec<String> = headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}", w = w))
            .collect();
        writeln!(f, "{}", header_line.join("  "))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        )?;
        for row in &rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }

        // Curves are rendered in full below the table.
        for row in &self.rows {
            for (aggregate, value) in self.aggregates.iter().zip(&row.values) {
                if let AggValue::Curve(points) = value {
                    let key = if row.key.is_empty() {
                        "total".to_string()
                    } else {
                        row.key
                            .iter()
                            .map(|k| k.to_string())
                            .collect::<Vec<_>>()
                            .join("/")
                    };
                    writeln!(f, "\n{} — {}:", key, aggregate.label())?;
                    writeln!(f, "{:>12}  {:>15}", "exceed prob", "loss")?;
                    for (p, loss) in points {
                        writeln!(f, "{p:>12.6}  {:>15}", format_scalar(*loss))?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn format_scalar(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 {
        format!("{:.4e}", v)
    } else if v.abs() < 1.0 {
        format!("{v:.6}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_value_ordering_is_lexicographic() {
        let a = vec![
            DimValue::Peril(Peril::Hurricane),
            DimValue::Region(Region::Europe),
        ];
        let b = vec![
            DimValue::Peril(Peril::Earthquake),
            DimValue::Region(Region::Europe),
        ];
        assert_eq!(DimValue::compare_keys(&a, &b), std::cmp::Ordering::Less);
        assert_eq!(DimValue::compare_keys(&a, &a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_renders_table_and_curves() {
        let result = QueryResult {
            group_by: vec![Dimension::Peril],
            aggregates: vec![
                Aggregate::Mean,
                Aggregate::EpCurve {
                    basis: crate::query::Basis::Aep,
                    points: 2,
                },
            ],
            trials: 100,
            rows: vec![ResultRow {
                key: vec![DimValue::Peril(Peril::Hurricane)],
                segments: 3,
                values: vec![
                    AggValue::Scalar(1234.5),
                    AggValue::Curve(vec![(1.0, 0.0), (0.01, 9.9e7)]),
                ],
            }],
        };
        let text = result.to_string();
        assert!(text.contains("peril"), "{text}");
        assert!(text.contains("HU"), "{text}");
        assert!(text.contains("1234.50"), "{text}");
        assert!(text.contains("curve: 2 pts"), "{text}");
        assert!(text.contains("9.9000e7"), "{text}");
    }

    #[test]
    fn agg_value_accessors() {
        assert_eq!(AggValue::Scalar(2.0).as_scalar(), Some(2.0));
        assert!(AggValue::Scalar(2.0).as_curve().is_none());
        let curve = AggValue::Curve(vec![(1.0, 0.0)]);
        assert!(curve.as_scalar().is_none());
        assert_eq!(curve.as_curve().unwrap().len(), 1);
    }
}
