//! Compare every engine variant — sequential, multi-core, chunked CPU, and
//! the two simulated-GPU kernels — on one workload, verifying that they all
//! produce identical Year Loss Tables (the paper's implicit correctness
//! criterion) and reporting their (wall-clock or simulated) runtimes.
//!
//! ```text
//! cargo run --release --example gpu_vs_cpu
//! ```

use std::time::Instant;

use catrisk::engine::chunked::ChunkedEngine;
use catrisk::engine::parallel::ParallelEngine;
use catrisk::engine::phases::PhaseBreakdown;
use catrisk::engine::sequential::SequentialEngine;
use catrisk::gpusim::executor::Executor;
use catrisk::gpusim::kernel::LaunchConfig;
use catrisk::gpusim::kernels::{run_gpu_analysis, total_simulated_seconds, GpuVariant};
use catrisk_bench::{build_input, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        num_events: 100_000,
        trials: 5_000,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 10_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    };
    println!(
        "workload: {} trials x {:.0} events x {} ELTs = {:.2} billion lookups",
        spec.trials,
        spec.events_per_trial,
        spec.elts_per_layer,
        spec.expected_lookups() / 1.0e9
    );
    let input = build_input(&spec);

    let start = Instant::now();
    let reference = SequentialEngine::new().run(&input);
    let t_seq = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = ParallelEngine::new().run(&input);
    let t_par = start.elapsed().as_secs_f64();
    assert_eq!(
        reference.max_abs_difference(&parallel),
        0.0,
        "parallel engine must match"
    );

    let start = Instant::now();
    let chunked = ChunkedEngine::new(64).run(&input);
    let t_chunk = start.elapsed().as_secs_f64();
    assert_eq!(
        reference.max_abs_difference(&chunked),
        0.0,
        "chunked engine must match"
    );

    let executor = Executor::tesla_c2075();
    let (gpu_basic, basic_launches) = run_gpu_analysis(
        &executor,
        &input,
        GpuVariant::Basic,
        LaunchConfig::with_block_size(256),
    )
    .expect("gpu basic");
    assert_eq!(
        reference.max_abs_difference(&gpu_basic),
        0.0,
        "gpu basic kernel must match"
    );
    let (gpu_chunked, chunked_launches) = run_gpu_analysis(
        &executor,
        &input,
        GpuVariant::Chunked { chunk_size: 4 },
        LaunchConfig::with_block_size(64),
    )
    .expect("gpu chunked");
    assert_eq!(
        reference.max_abs_difference(&gpu_chunked),
        0.0,
        "gpu chunked kernel must match"
    );

    println!("\nall five engines produced identical Year Loss Tables.\n");
    println!("{:<26} {:>12} {:>10}", "engine", "seconds", "vs seq");
    println!("{:<26} {:>12.3} {:>10.2}", "sequential (wall)", t_seq, 1.0);
    println!(
        "{:<26} {:>12.3} {:>10.2}",
        "parallel cpu (wall)",
        t_par,
        t_seq / t_par
    );
    println!(
        "{:<26} {:>12.3} {:>10.2}",
        "chunked cpu (wall)",
        t_chunk,
        t_seq / t_chunk
    );
    let t_basic = total_simulated_seconds(&basic_launches);
    let t_gchunk = total_simulated_seconds(&chunked_launches);
    println!(
        "{:<26} {:>12.3} {:>10.2}",
        "gpu basic (simulated)",
        t_basic,
        t_seq / t_basic
    );
    println!(
        "{:<26} {:>12.3} {:>10.2}",
        "gpu chunked (simulated)",
        t_gchunk,
        t_seq / t_gchunk
    );

    let basic = &basic_launches[0];
    println!(
        "\ngpu basic kernel:   occupancy {:.0}%, {:.1}M global reads, {:.1}M global writes",
        100.0 * basic.occupancy.occupancy,
        basic.counters.global_reads as f64 / 1.0e6,
        basic.counters.global_writes as f64 / 1.0e6
    );
    let opt = &chunked_launches[0];
    println!(
        "gpu chunked kernel: occupancy {:.0}%, {:.1}M global reads, {:.1}M shared accesses, {:.1}k constant reads",
        100.0 * opt.occupancy.occupancy,
        opt.counters.global_reads as f64 / 1.0e6,
        opt.counters.shared_accesses as f64 / 1.0e6,
        opt.counters.constant_accesses as f64 / 1.0e3
    );

    let (_, timer) = SequentialEngine::new().run_instrumented(&input);
    println!(
        "\nphase breakdown of the sequential engine (paper Fig. 6b reports ~78% in ELT lookups):"
    );
    print!("{}", PhaseBreakdown::from_timer(&timer).to_table());
}
