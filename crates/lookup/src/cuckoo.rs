//! Cuckoo-hashing ELT representation.
//!
//! The paper explicitly cites cuckoo hashing (Pagh & Rodler 2004) as the
//! constant-time, space-efficient alternative to the direct access table,
//! and rejects it because of "considerable implementation and run-time
//! performance complexity ... particularly high on GPUs".  Implementing it
//! lets the ablation benchmark quantify that trade-off.

use crate::{EventId, EventLookup, LookupKind};

const EMPTY: EventId = EventId::MAX;
/// Maximum displacement chain length before the table is rebuilt larger.
const MAX_KICKS: usize = 64;

/// A two-table cuckoo hash map from event id to loss.
///
/// Every lookup inspects at most two slots (one per table), giving a
/// worst-case constant lookup cost; insertion may displace existing keys
/// and occasionally triggers a rebuild with a larger capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct CuckooTable {
    // Two half-tables laid out separately; slot i of table t is keys[t][i].
    keys: [Vec<EventId>; 2],
    values: [Vec<f64>; 2],
    entries: usize,
    side_mask: usize,
    // Seeds for the two hash functions; changed on rebuild after a cycle.
    seeds: [u64; 2],
}

impl CuckooTable {
    /// Builds the table from `(event, loss)` pairs; duplicate ids keep the
    /// last value.
    pub fn from_pairs(pairs: &[(EventId, f64)]) -> Self {
        // Each side sized to the next power of two above the entry count,
        // giving an overall load factor of at most 50%.
        let side = pairs.len().max(4).next_power_of_two();
        let mut table =
            Self::with_side_capacity(side, [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F]);
        for &(event, loss) in pairs {
            assert!(
                event != EMPTY,
                "event id {event} collides with the empty sentinel"
            );
            table.insert(event, loss);
        }
        table
    }

    fn with_side_capacity(side: usize, seeds: [u64; 2]) -> Self {
        Self {
            keys: [vec![EMPTY; side], vec![EMPTY; side]],
            values: [vec![0.0; side], vec![0.0; side]],
            entries: 0,
            side_mask: side - 1,
            seeds,
        }
    }

    #[inline]
    fn slot(&self, table: usize, event: EventId) -> usize {
        let mut h = u64::from(event) ^ self.seeds[table];
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        (h as usize) & self.side_mask
    }

    fn insert(&mut self, event: EventId, loss: f64) {
        // Replace an existing entry in place.
        for t in 0..2 {
            let i = self.slot(t, event);
            if self.keys[t][i] == event {
                self.values[t][i] = loss;
                return;
            }
        }
        let mut key = event;
        let mut value = loss;
        let mut table = 0usize;
        for _ in 0..MAX_KICKS {
            let i = self.slot(table, key);
            if self.keys[table][i] == EMPTY {
                self.keys[table][i] = key;
                self.values[table][i] = value;
                self.entries += 1;
                return;
            }
            std::mem::swap(&mut key, &mut self.keys[table][i]);
            std::mem::swap(&mut value, &mut self.values[table][i]);
            table ^= 1;
        }
        // Displacement cycle: rebuild with double capacity and new seeds,
        // then retry the displaced key.
        self.rebuild();
        self.insert(key, value);
    }

    fn rebuild(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_values = std::mem::take(&mut self.values);
        let new_side = (self.side_mask + 1) * 2;
        let new_seeds = [
            self.seeds[0].rotate_left(13) ^ 0x0123_4567_89AB_CDEF,
            self.seeds[1].rotate_left(29) ^ 0xFEDC_BA98_7654_3210,
        ];
        *self = Self::with_side_capacity(new_side, new_seeds);
        for t in 0..2 {
            for (i, &k) in old_keys[t].iter().enumerate() {
                if k != EMPTY {
                    self.insert(k, old_values[t][i]);
                }
            }
        }
    }

    /// Total number of slots across both half-tables.
    pub fn capacity(&self) -> usize {
        2 * (self.side_mask + 1)
    }
}

impl EventLookup for CuckooTable {
    #[inline]
    fn get(&self, event: EventId) -> f64 {
        let i0 = self.slot(0, event);
        if self.keys[0][i0] == event {
            return self.values[0][i0];
        }
        let i1 = self.slot(1, event);
        if self.keys[1][i1] == event {
            return self.values[1][i1];
        }
        0.0
    }

    fn len(&self) -> usize {
        self.entries
    }

    fn memory_bytes(&self) -> usize {
        self.capacity() * (std::mem::size_of::<EventId>() + std::mem::size_of::<f64>())
    }

    fn kind(&self) -> LookupKind {
        LookupKind::Cuckoo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_present_and_absent() {
        let t = CuckooTable::from_pairs(&[(2, 5.0), (7, 1.5), (900_000, 3.25)]);
        assert_eq!(t.get(2), 5.0);
        assert_eq!(t.get(7), 1.5);
        assert_eq!(t.get(900_000), 3.25);
        assert_eq!(t.get(3), 0.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.kind(), LookupKind::Cuckoo);
    }

    #[test]
    fn duplicates_keep_last_value() {
        let t = CuckooTable::from_pairs(&[(5, 1.0), (5, 2.0), (5, 3.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), 3.0);
    }

    #[test]
    fn large_insert_all_found() {
        let pairs: Vec<(EventId, f64)> = (0..50_000).map(|i| (i * 37 + 11, f64::from(i))).collect();
        let t = CuckooTable::from_pairs(&pairs);
        assert_eq!(t.len(), pairs.len());
        for &(e, l) in pairs.iter().step_by(97) {
            assert_eq!(t.get(e), l);
        }
        // Absent keys.
        assert_eq!(t.get(1), 0.0);
        assert_eq!(t.get(2), 0.0);
        // Load factor stays at or below 50%.
        assert!(t.capacity() >= 2 * t.len());
    }

    #[test]
    fn empty_table() {
        let t = CuckooTable::from_pairs(&[]);
        assert!(t.is_empty());
        assert_eq!(t.get(0), 0.0);
    }

    #[test]
    fn rebuild_preserves_entries() {
        // Enough keys to force at least one rebuild with high probability
        // while keeping the initial side capacity tiny is hard to arrange
        // deterministically; instead verify correctness on a dense block
        // which exercises heavy displacement.
        let pairs: Vec<(EventId, f64)> = (0..10_000).map(|i| (i, f64::from(i) * 0.5)).collect();
        let t = CuckooTable::from_pairs(&pairs);
        for &(e, l) in &pairs {
            assert_eq!(t.get(e), l);
        }
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_key_rejected() {
        CuckooTable::from_pairs(&[(EventId::MAX, 1.0)]);
    }
}
