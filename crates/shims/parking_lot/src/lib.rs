//! Minimal stand-in for `parking_lot`: a `Mutex` (and `RwLock`) whose lock
//! methods return guards directly instead of a poison `Result`, matching
//! the parking_lot API over `std::sync` primitives.

/// Mutex with parking_lot's panic-on-poison-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RwLock with parking_lot's guard-returning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
