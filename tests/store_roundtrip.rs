//! Round-trip and corruption tests of the persistent columnar store.
//!
//! The acceptance property: a store written by `StoreWriter` — in one
//! commit or appended to incrementally across reopens — reopens via
//! `StoreReader`, and every query over it is **bit-identical** to the same
//! query over the in-memory `ResultStore` holding the same segments.
//! Corrupted files (truncation, flipped bits, wrong magic or version) must
//! surface typed `StoreError`s, never panics.

use proptest::prelude::*;

use catrisk::engine::ylt::{TrialOutcome, YearLossTable};
use catrisk::eventgen::peril::{Peril, Region};
use catrisk::finterms::layer::LayerId;
use catrisk::riskquery::prelude::*;
use catrisk::riskstore::format::{crc32, HEADER_LEN, HEADER_SLOT_LEN};
use catrisk::riskstore::{StoreError, StoreOptions, StoreReader, StoreWriter};
use catrisk::simkit::rng::RngFactory;

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "catrisk-roundtrip-{}-{tag}.clm",
        std::process::id()
    ));
    path
}

/// Deterministic random store shaped like `SegmentedInput` output.
fn random_store(trials: usize, segments: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("store-roundtrip");
    let mut store = ResultStore::new(trials);
    for s in 0..segments {
        let mut rng = factory.stream(s as u64);
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .map(|_| {
                let year = if rng.uniform() < 0.4 {
                    rng.uniform() * 1.0e6
                } else {
                    0.0
                };
                TrialOutcome {
                    year_loss: year,
                    max_occurrence_loss: year * rng.uniform(),
                    nonzero_events: u32::from(year > 0.0),
                }
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId((s / 3) as u32),
            Peril::ALL[s % Peril::ALL.len()],
            Region::ALL[(s / 2) % Region::ALL.len()],
            LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
        );
        store
            .ingest(&YearLossTable::new(LayerId(s as u32), outcomes), meta)
            .unwrap();
    }
    store
}

/// A query batch exercising pushdown, grouping, trial windows, loss
/// ranges and every aggregate family.
fn query_batch(trials: usize) -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::StdDev)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 4,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Var { level: 0.9 })
            .aggregate(Aggregate::Pml {
                return_period: 10.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .trials(0..trials.div_ceil(2))
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_at_least(2.0e5)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.8 })
            .build()
            .unwrap(),
    ]
}

/// Asserts every query (single and batched paths) agrees bitwise between
/// the in-memory store and the reopened file.
fn assert_equivalent(memory: &ResultStore, reader: &StoreReader, trials: usize) {
    assert_eq!(reader.num_trials(), memory.num_trials());
    assert_eq!(reader.num_segments(), memory.num_segments());
    assert_eq!(reader.metas(), memory.metas());
    let queries = query_batch(trials);
    for query in &queries {
        let from_memory = execute(memory, query).unwrap();
        let from_disk = execute(reader, query).unwrap();
        assert_eq!(from_memory, from_disk, "single-query path diverged");
    }
    let memory_batch = QuerySession::new(memory).run(&queries).unwrap();
    let disk_batch = reader.session().run(&queries).unwrap();
    assert_eq!(memory_batch, disk_batch, "batched path diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// write → read → query is bit-identical to the in-memory store, for a
    /// single-commit write with random page sizes.
    #[test]
    fn persisted_queries_match_in_memory(
        trials in 1..80usize,
        segments in 1..14usize,
        page_trials in 1..40u32,
        seed in 0..1_000u64,
    ) {
        let store = random_store(trials, segments, seed);
        let path = temp_path(&format!("prop-{trials}-{segments}-{page_trials}-{seed}"));
        let mut writer =
            StoreWriter::create_with(&path, trials, StoreOptions { page_trials, ..StoreOptions::default() }).unwrap();
        for segment in 0..store.num_segments() {
            writer
                .append_segment(
                    *store.meta(segment),
                    store.year_losses(segment),
                    store.max_occ_losses(segment),
                )
                .unwrap();
        }
        writer.finish().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_equivalent(&store, &reader, trials);
        let _ = std::fs::remove_file(&path);
    }

    /// The same property for incremental ingest: segments arrive across
    /// several commits and a writer reopen, mid-write prefixes stay
    /// readable, and the final store is equivalent to in-memory.
    #[test]
    fn incremental_ingest_matches_in_memory(
        trials in 1..60usize,
        segments in 2..12usize,
        commit_every in 1..4usize,
        seed in 0..1_000u64,
    ) {
        let store = random_store(trials, segments, seed);
        let path = temp_path(&format!("incr-{trials}-{segments}-{commit_every}-{seed}"));
        let mut writer = StoreWriter::create(&path, trials).unwrap();
        let half = segments / 2;
        for segment in 0..half {
            writer
                .append_segment(
                    *store.meta(segment),
                    store.year_losses(segment),
                    store.max_occ_losses(segment),
                )
                .unwrap();
            if (segment + 1) % commit_every == 0 {
                writer.commit().unwrap();
            }
        }
        writer.commit().unwrap();
        drop(writer);

        // A reader opened mid-ingest sees exactly the committed prefix.
        let prefix = StoreReader::open(&path).unwrap();
        prop_assert_eq!(prefix.num_segments(), half);

        // Resume appending in a fresh writer (a new process, effectively).
        let mut writer = StoreWriter::open_append(&path).unwrap();
        prop_assert_eq!(writer.num_segments(), half);
        for segment in half..segments {
            writer
                .append_segment(
                    *store.meta(segment),
                    store.year_losses(segment),
                    store.max_occ_losses(segment),
                )
                .unwrap();
            if (segment + 1) % commit_every == 0 {
                writer.commit().unwrap();
            }
        }
        writer.finish().unwrap();

        // The mid-write reader's view is still valid and prefix-consistent.
        for segment in 0..prefix.num_segments() {
            prop_assert_eq!(
                SegmentSource::year_losses(&prefix, segment),
                store.year_losses(segment)
            );
        }

        let reader = StoreReader::open(&path).unwrap();
        assert_equivalent(&store, &reader, trials);
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------------
// Corruption: typed errors, never panics
// ---------------------------------------------------------------------------

/// Writes a small valid store (two commits: segments 0–1, then 2–3) and
/// returns its bytes.  After the second commit, header slot A holds commit
/// 2 (all four segments) and slot B holds commit 1 (the first two).
fn valid_store_bytes(tag: &str) -> (std::path::PathBuf, Vec<u8>) {
    let store = random_store(16, 4, 7);
    let path = temp_path(tag);
    let mut writer = StoreWriter::create_with(
        &path,
        16,
        StoreOptions {
            page_trials: 4,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    for segment in 0..store.num_segments() {
        writer
            .append_segment(
                *store.meta(segment),
                store.year_losses(segment),
                store.max_occ_losses(segment),
            )
            .unwrap();
        if segment == 1 {
            writer.commit().unwrap();
        }
    }
    writer.finish().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

fn open_bytes(path: &std::path::Path, bytes: &[u8]) -> Result<StoreReader, StoreError> {
    std::fs::write(path, bytes).unwrap();
    let result = StoreReader::open(path);
    let _ = std::fs::remove_file(path);
    result
}

#[test]
fn truncated_files_error_typed() {
    let (path, bytes) = valid_store_bytes("truncated");
    // Chop the file at several points: mid-footer, mid-data, mid-header.
    for keep in [bytes.len() - 3, bytes.len() / 2, 40, 0] {
        let err = open_bytes(&path, &bytes[..keep]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt(_)
            ),
            "keep={keep} gave {err}"
        );
    }
}

#[test]
fn flipped_loss_page_bits_fail_checksums() {
    let (path, bytes) = valid_store_bytes("bitflip");
    // Flip one byte inside the first segment's loss pages (the data region
    // starts right after the header).
    let mut corrupted = bytes.clone();
    corrupted[HEADER_LEN as usize + 5] ^= 0x10;
    let err = open_bytes(&path, &corrupted).unwrap_err();
    assert!(
        matches!(err, StoreError::ChecksumMismatch { ref what } if what.contains("page")),
        "got {err}"
    );

    // Flip a byte inside the footer region instead.
    let mut corrupted = bytes.clone();
    let at = bytes.len() - 12;
    corrupted[at] ^= 0x01;
    let err = open_bytes(&path, &corrupted).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::ChecksumMismatch { .. } | StoreError::Corrupt(_)
        ),
        "got {err}"
    );
}

#[test]
fn wrong_magic_and_version_error_typed() {
    let (path, bytes) = valid_store_bytes("magic");
    let slot = HEADER_SLOT_LEN as usize;

    // Both header slots must be damaged: the dual-slot design survives
    // single-slot corruption by construction.
    let mut not_a_store = bytes.clone();
    not_a_store[..8].copy_from_slice(b"PARQUET1");
    not_a_store[slot..slot + 8].copy_from_slice(b"PARQUET1");
    assert!(matches!(
        open_bytes(&path, &not_a_store).unwrap_err(),
        StoreError::BadMagic { .. }
    ));

    // A future format version: patch the version field in both slots and
    // re-seal the slot CRCs so only the version check can object.
    let mut future = bytes.clone();
    for base in [0, slot] {
        future[base + 8..base + 12].copy_from_slice(&2u32.to_le_bytes());
        let crc = crc32(&future[base..base + 56]);
        future[base + 56..base + 60].copy_from_slice(&crc.to_le_bytes());
    }
    assert!(matches!(
        open_bytes(&path, &future).unwrap_err(),
        StoreError::UnsupportedVersion {
            found: 2,
            supported: 1
        }
    ));

    // Garbage that is not even header-sized.
    assert!(open_bytes(&path, b"short").is_err());
}

#[test]
fn header_corruption_fails_its_checksum() {
    let (path, bytes) = valid_store_bytes("header");
    let slot = HEADER_SLOT_LEN as usize;
    let mut corrupted = bytes.clone();
    corrupted[17] ^= 0xFF; // num_trials field, slot A
    corrupted[slot + 17] ^= 0xFF; // num_trials field, slot B
    assert!(matches!(
        open_bytes(&path, &corrupted).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));
}

#[test]
fn torn_header_slot_is_survivable() {
    // A crash mid-commit can tear one header slot; the store must still
    // open through the surviving slot and show that slot's commit — the
    // full four segments if the stale slot was torn, the previous
    // two-segment commit if the newest slot was.
    let (path, bytes) = valid_store_bytes("torn");
    let slot = HEADER_SLOT_LEN as usize;
    for (base, surviving_segments) in [(slot, 4), (0, 2)] {
        let mut torn = bytes.clone();
        for byte in &mut torn[base..base + slot] {
            *byte ^= 0xA5;
        }
        let reader = open_bytes(&path, &torn).unwrap();
        assert_eq!(
            reader.num_segments(),
            surviving_segments,
            "torn slot at {base}"
        );
    }
}

#[test]
fn absurd_counts_error_instead_of_allocating() {
    // A CRC-consistent file can still lie about sizes; hostile counts must
    // produce typed errors, not capacity panics or huge allocations.
    let (path, bytes) = valid_store_bytes("absurd");
    let slot = HEADER_SLOT_LEN as usize;
    // Claim 2^60 trials in both header slots (re-sealing the CRCs).
    let mut absurd = bytes.clone();
    for base in [0, slot] {
        absurd[base + 16..base + 24].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let crc = crc32(&absurd[base..base + 56]);
        absurd[base + 56..base + 60].copy_from_slice(&crc.to_le_bytes());
    }
    let err = open_bytes(&path, &absurd).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
        ),
        "got {err}"
    );
}

#[test]
fn error_messages_are_descriptive() {
    let (path, bytes) = valid_store_bytes("messages");
    let mut corrupted = bytes.clone();
    corrupted[HEADER_LEN as usize] ^= 0x01;
    let message = open_bytes(&path, &corrupted).unwrap_err().to_string();
    assert!(
        message.contains("segment 0") && message.contains("page 0"),
        "the error should name the failing page: {message}"
    );
}
