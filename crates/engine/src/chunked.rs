//! The chunked (blocked) engine: the CPU analogue of the optimised GPU
//! kernel.
//!
//! The paper's optimised GPU implementation processes "a block of events of
//! fixed size (referred to as chunk size) for the efficient use of shared
//! memory" (§III.B.2).  On a CPU the same blocking keeps the per-chunk
//! working set inside the L1/L2 cache; the paper reports that this did *not*
//! produce large gains on their multi-core platform (§III.C.1), which this
//! engine lets us measure directly (ablation benchmarks).

use rayon::prelude::*;

use catrisk_simkit::parallel::build_pool;

use crate::input::AnalysisInput;
use crate::steps;
use crate::ylt::{AnalysisOutput, TrialOutcome, YearLossTable};

/// Blocked multi-core aggregate analysis engine.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedEngine {
    /// Number of events staged per chunk.
    pub chunk_size: usize,
    /// Worker threads (0 = one per logical CPU).
    pub threads: usize,
}

impl Default for ChunkedEngine {
    fn default() -> Self {
        Self {
            chunk_size: 64,
            threads: 0,
        }
    }
}

impl ChunkedEngine {
    /// Engine with the given chunk size on all cores.
    pub fn new(chunk_size: usize) -> Self {
        Self {
            chunk_size,
            ..Default::default()
        }
    }

    /// Engine with explicit chunk size and thread count.
    pub fn with_threads(chunk_size: usize, threads: usize) -> Self {
        Self {
            chunk_size,
            threads,
        }
    }

    /// Runs the analysis; results are identical to the other engines.
    pub fn run(&self, input: &AnalysisInput) -> AnalysisOutput {
        assert!(self.chunk_size > 0, "chunk_size must be positive");
        let pool = build_pool(self.threads);
        let yet = input.yet();
        pool.install(|| {
            let ylts = input
                .layers()
                .iter()
                .map(|layer| {
                    let elts = input.layer_elts(layer);
                    let outcomes: Vec<TrialOutcome> = (0..yet.num_trials())
                        .into_par_iter()
                        .map_init(Vec::new, |scratch, t| {
                            steps::trial_outcome_chunked(
                                &elts,
                                &layer.terms,
                                yet.trial(t).occurrences,
                                self.chunk_size,
                                scratch,
                            )
                        })
                        .collect();
                    YearLossTable::new(layer.id, outcomes)
                })
                .collect();
            AnalysisOutput::new(ylts)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AnalysisInputBuilder;
    use crate::sequential::SequentialEngine;
    use catrisk_finterms::terms::{FinancialTerms, LayerTerms};

    fn input() -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        let trials: Vec<Vec<(u32, f32)>> = (0..120)
            .map(|t: u32| {
                (0..(t % 23))
                    .map(|i| ((t.wrapping_mul(31).wrapping_add(i * 7)) % 900, i as f32))
                    .collect()
            })
            .collect();
        b.set_yet_from_trials(900, trials);
        let pairs_a: Vec<(u32, f64)> = (0..900)
            .step_by(3)
            .map(|e| (e, 100.0 + f64::from(e)))
            .collect();
        let pairs_b: Vec<(u32, f64)> = (0..900)
            .step_by(5)
            .map(|e| (e, 50.0 + 2.0 * f64::from(e)))
            .collect();
        let a = b.add_elt(
            &pairs_a,
            FinancialTerms::new(10.0, 800.0, 0.75, 1.0).unwrap(),
        );
        let c = b.add_elt(&pairs_b, FinancialTerms::pass_through());
        b.add_layer_over(
            &[a, c],
            LayerTerms::new(100.0, 1_000.0, 200.0, 5_000.0).unwrap(),
        );
        b.add_layer_over(&[c], LayerTerms::unlimited());
        b.build().unwrap()
    }

    #[test]
    fn chunked_matches_sequential_for_all_chunk_sizes() {
        let input = input();
        let reference = SequentialEngine::new().run(&input);
        for chunk_size in [1, 2, 4, 8, 12, 16, 64, 1024] {
            let out = ChunkedEngine::new(chunk_size).run(&input);
            assert_eq!(
                reference.max_abs_difference(&out),
                0.0,
                "chunk {chunk_size}"
            );
        }
    }

    #[test]
    fn explicit_thread_count() {
        let input = input();
        let reference = SequentialEngine::new().run(&input);
        let out = ChunkedEngine::with_threads(4, 2).run(&input);
        assert_eq!(reference.max_abs_difference(&out), 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        ChunkedEngine::new(0).run(&input());
    }
}
