//! Open-addressing hash table ELT representation.

use crate::{EventId, EventLookup, LookupKind};

/// Sentinel key for an empty slot.  Event ids are catalog indices and real
/// catalogs are far smaller than `u32::MAX`, so the sentinel never collides
/// with a real id; `from_pairs` asserts this.
const EMPTY: EventId = EventId::MAX;

/// An open-addressing hash table with linear probing and a Fibonacci
/// multiplicative hash.
///
/// This is the "constant number of memory accesses" compromise between the
/// sorted table and the direct access table: compact (a power-of-two slot
/// array at ≤50% load factor) with amortised O(1) probes, but each probe is
/// still a dependent random memory access and the probe count is variable —
/// the run-time complexity the paper alludes to when discussing hashing
/// schemes on GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct HashedTable {
    keys: Vec<EventId>,
    values: Vec<f64>,
    entries: usize,
    mask: usize,
}

impl HashedTable {
    /// Builds the table from `(event, loss)` pairs; duplicate ids keep the
    /// last value.
    pub fn from_pairs(pairs: &[(EventId, f64)]) -> Self {
        // ≤ 50% load factor, minimum 8 slots.
        let capacity = (pairs.len().max(4) * 2).next_power_of_two();
        let mut table = Self {
            keys: vec![EMPTY; capacity],
            values: vec![0.0; capacity],
            entries: 0,
            mask: capacity - 1,
        };
        for &(event, loss) in pairs {
            assert!(
                event != EMPTY,
                "event id {event} collides with the empty sentinel"
            );
            table.insert(event, loss);
        }
        table
    }

    /// Fibonacci multiplicative hash of a 32-bit key into a table index.
    #[inline]
    fn slot(&self, event: EventId) -> usize {
        // 2^64 / phi, the canonical Fibonacci hashing multiplier.
        let h = (u64::from(event).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        (h as usize) & self.mask
    }

    fn insert(&mut self, event: EventId, loss: f64) {
        let mut i = self.slot(event);
        loop {
            if self.keys[i] == EMPTY {
                self.keys[i] = event;
                self.values[i] = loss;
                self.entries += 1;
                return;
            }
            if self.keys[i] == event {
                self.values[i] = loss;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of probes needed to find `event` (used by instrumentation and
    /// tests; 1 = found or ruled out in the first slot).
    pub fn probes(&self, event: EventId) -> usize {
        let mut i = self.slot(event);
        let mut probes = 1;
        loop {
            if self.keys[i] == EMPTY || self.keys[i] == event {
                return probes;
            }
            i = (i + 1) & self.mask;
            probes += 1;
        }
    }

    /// Number of slots in the backing array.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }
}

impl EventLookup for HashedTable {
    #[inline]
    fn get(&self, event: EventId) -> f64 {
        let mut i = self.slot(event);
        loop {
            let k = self.keys[i];
            if k == event {
                return self.values[i];
            }
            if k == EMPTY {
                return 0.0;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn len(&self) -> usize {
        self.entries
    }

    fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<EventId>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    fn kind(&self) -> LookupKind {
        LookupKind::Hashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_present_and_absent() {
        let t = HashedTable::from_pairs(&[(2, 5.0), (7, 1.5), (1_000_000, 9.0)]);
        assert_eq!(t.get(2), 5.0);
        assert_eq!(t.get(7), 1.5);
        assert_eq!(t.get(1_000_000), 9.0);
        assert_eq!(t.get(3), 0.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.kind(), LookupKind::Hashed);
    }

    #[test]
    fn duplicates_keep_last_value() {
        let t = HashedTable::from_pairs(&[(5, 1.0), (5, 2.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), 2.0);
    }

    #[test]
    fn load_factor_at_most_half() {
        let pairs: Vec<(EventId, f64)> = (0..1000).map(|i| (i, i as f64)).collect();
        let t = HashedTable::from_pairs(&pairs);
        assert!(t.capacity() >= 2 * t.len());
        assert!(t.capacity().is_power_of_two());
    }

    #[test]
    fn dense_collision_heavy_keys_all_found() {
        // Keys that collide heavily under any low-bit masking.
        let pairs: Vec<(EventId, f64)> =
            (0..2_000).map(|i| (i * 4096, f64::from(i) + 0.5)).collect();
        let t = HashedTable::from_pairs(&pairs);
        for &(e, l) in &pairs {
            assert_eq!(t.get(e), l);
        }
        assert_eq!(t.get(123), 0.0);
    }

    #[test]
    fn probe_counts_are_positive_and_bounded() {
        let pairs: Vec<(EventId, f64)> = (0..512).map(|i| (i * 3, 1.0)).collect();
        let t = HashedTable::from_pairs(&pairs);
        let max_probes = (0..512u32).map(|i| t.probes(i * 3)).max().unwrap();
        assert!(max_probes >= 1);
        assert!(max_probes < 64, "pathological probe chain: {max_probes}");
    }

    #[test]
    fn empty_table() {
        let t = HashedTable::from_pairs(&[]);
        assert!(t.is_empty());
        assert_eq!(t.get(42), 0.0);
        assert!(
            t.memory_bytes() > 0,
            "even an empty table allocates its slot array"
        );
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_key_rejected() {
        HashedTable::from_pairs(&[(EventId::MAX, 1.0)]);
    }
}
