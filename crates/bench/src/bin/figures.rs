//! `figures` — regenerates the data series behind every table and figure of
//! the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p catrisk-bench --bin figures -- all
//! cargo run --release -p catrisk-bench --bin figures -- fig4 fig5a --scale medium
//! ```
//!
//! Each subcommand prints one table of rows (the series a figure plots).
//! CPU engines report wall-clock seconds on this host; GPU kernels report
//! the simulated Tesla C2075 time from `catrisk-gpusim`, plus an
//! extrapolation to the paper-scale workload (1 M trials × 1000 events × 15
//! ELTs) so the numbers can be read next to the paper's.

use std::time::Instant;

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_engine::chunked::ChunkedEngine;
use catrisk_engine::input::AnalysisInput;
use catrisk_engine::parallel::ParallelEngine;
use catrisk_engine::phases::PhaseBreakdown;
use catrisk_engine::sequential::SequentialEngine;
use catrisk_finterms::treaty::Treaty;
use catrisk_gpusim::executor::Executor;
use catrisk_gpusim::kernel::LaunchConfig;
use catrisk_gpusim::kernels::{run_gpu_analysis, total_simulated_seconds, GpuVariant};
use catrisk_lookup::LookupKind;
use catrisk_portfolio::pricing::PricingConfig;
use catrisk_portfolio::realtime::RealTimeQuoter;

/// Paper-scale lookup count used for extrapolated GPU estimates.
const PAPER_LOOKUPS: f64 = 15.0e9;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help") {
        eprintln!("usage: figures [--scale small|medium] <table1|fig2a|fig2b|fig2c|fig2d|fig3a|fig3b|fig4|fig5a|fig5b|fig6a|fig6b|ablation-lookup|ablation-realtime|all> ...");
        std::process::exit(if args.is_empty() { 1 } else { 0 });
    }
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "small".to_string());
    let base = match scale.as_str() {
        "small" => WorkloadSpec {
            num_events: 100_000,
            trials: 4_000,
            events_per_trial: 1_000.0,
            num_elts: 15,
            elt_records: 10_000,
            num_layers: 1,
            elts_per_layer: 15,
            lookup: LookupKind::Direct,
            seed: 2012,
        },
        "medium" => WorkloadSpec {
            num_events: 500_000,
            trials: 40_000,
            events_per_trial: 1_000.0,
            num_elts: 15,
            elt_records: 15_000,
            num_layers: 1,
            elts_per_layer: 15,
            lookup: LookupKind::Direct,
            seed: 2012,
        },
        other => {
            eprintln!("unknown scale `{other}`");
            std::process::exit(1);
        }
    };

    let mut requested: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with("--") && *s != scale.as_str())
        .collect();
    if requested.contains(&"all") {
        requested = vec![
            "table1",
            "fig2a",
            "fig2b",
            "fig2c",
            "fig2d",
            "fig3a",
            "fig3b",
            "fig4",
            "fig5a",
            "fig5b",
            "fig6a",
            "fig6b",
            "ablation-lookup",
            "ablation-realtime",
        ];
    }
    println!("# catrisk figure harness (scale = {scale})");
    println!(
        "# base workload: {} trials x {:.0} events/trial, {} ELTs/layer, catalog {}",
        base.trials, base.events_per_trial, base.elts_per_layer, base.num_events
    );
    for figure in requested {
        match figure {
            "table1" => table1(),
            "fig2a" => fig2a(&base),
            "fig2b" => fig2b(&base),
            "fig2c" => fig2c(&base),
            "fig2d" => fig2d(&base),
            "fig3a" => fig3a(&base),
            "fig3b" => fig3b(&base),
            "fig4" => fig4(&base),
            "fig5a" => fig5a(&base),
            "fig5b" => fig5b(&base),
            "fig6a" => fig6a(&base),
            "fig6b" => fig6b(&base),
            "ablation-lookup" => ablation_lookup(&base),
            "ablation-realtime" => ablation_realtime(&base),
            other => eprintln!("unknown figure `{other}` (skipped)"),
        }
    }
}

fn wall<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn table1() {
    println!("\n## Table I — layer terms applicable to aggregate risk analysis");
    println!("{:<10} {:<22} description", "notation", "term");
    println!(
        "{:<10} {:<22} retention/deductible of the insured for an individual occurrence loss",
        "TOccR", "Occurrence Retention"
    );
    println!(
        "{:<10} {:<22} limit the insurer will pay for occurrence losses in excess of the retention",
        "TOccL", "Occurrence Limit"
    );
    println!(
        "{:<10} {:<22} retention/deductible of the insured for an annual cumulative loss",
        "TAggR", "Aggregate Retention"
    );
    println!("{:<10} {:<22} limit the insurer will pay for annual cumulative losses in excess of the aggregate retention", "TAggL", "Aggregate Limit");
}

fn run_sequential_seconds(spec: &WorkloadSpec) -> f64 {
    let input = build_input(spec);
    // Best of two runs to damp scheduling noise in the single-shot sweeps.
    let (_, first) = wall(|| SequentialEngine::new().run(&input));
    let (_, second) = wall(|| SequentialEngine::new().run(&input));
    first.min(second)
}

fn fig2a(base: &WorkloadSpec) {
    println!("\n## Fig 2a — sequential runtime vs ELTs per layer (paper: 3..15, linear)");
    println!("{:>14} {:>12}", "elts/layer", "seconds");
    for elts in [3, 6, 9, 12, 15] {
        let spec = base.with_elts_per_layer(elts);
        println!("{elts:>14} {:>12.3}", run_sequential_seconds(&spec));
    }
}

fn fig2b(base: &WorkloadSpec) {
    println!("\n## Fig 2b — sequential runtime vs number of trials (paper: 200k..1M, linear)");
    println!("{:>14} {:>12}", "trials", "seconds");
    for fraction in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let trials = ((base.trials as f64) * fraction) as usize;
        let spec = base.with_trials(trials.max(1));
        println!("{trials:>14} {:>12.3}", run_sequential_seconds(&spec));
    }
}

fn fig2c(base: &WorkloadSpec) {
    println!("\n## Fig 2c — sequential runtime vs number of layers (paper: 1..5, linear)");
    println!("{:>14} {:>12}", "layers", "seconds");
    for layers in 1..=5 {
        let spec = base.with_layers(layers);
        println!("{layers:>14} {:>12.3}", run_sequential_seconds(&spec));
    }
}

fn fig2d(base: &WorkloadSpec) {
    println!("\n## Fig 2d — sequential runtime vs events per trial (paper: 800..1200, linear)");
    println!("{:>14} {:>12}", "events/trial", "seconds");
    for events in [800.0, 900.0, 1000.0, 1100.0, 1200.0] {
        // The paper runs this sweep at a reduced trial count (100k of 1M).
        let spec = base
            .with_events_per_trial(events)
            .with_trials(base.trials / 2);
        println!("{events:>14.0} {:>12.3}", run_sequential_seconds(&spec));
    }
}

fn fig3a(base: &WorkloadSpec) {
    println!("\n## Fig 3a — multi-core runtime vs cores (paper: 1.5x @2, 2.2x @4, 2.6x @8)");
    let input = build_input(base);
    let (_, t1) = wall(|| ParallelEngine::with_threads(1).run(&input));
    println!("{:>8} {:>12} {:>10}", "cores", "seconds", "speedup");
    println!("{:>8} {:>12.3} {:>10.2}", 1, t1, 1.0);
    for threads in [2, 4, 8] {
        let (_, t) = wall(|| ParallelEngine::with_threads(threads).run(&input));
        println!("{threads:>8} {t:>12.3} {:>10.2}", t1 / t);
    }
}

fn fig3b(base: &WorkloadSpec) {
    println!("\n## Fig 3b — runtime vs total logical threads on 8 cores (paper: 135s -> 125s @ 2048 threads)");
    let input = build_input(base);
    println!("{:>16} {:>12}", "total threads", "seconds");
    for items_per_core in [1usize, 4, 16, 64, 256] {
        let engine = ParallelEngine::oversubscribed(8, items_per_core);
        let (_, t) = wall(|| engine.run(&input));
        println!("{:>16} {t:>12.3}", 8 * items_per_core);
    }
}

fn gpu_row(label: String, simulated: f64, input: &AnalysisInput) {
    let lookups = input.total_lookups() as f64;
    let paper_estimate = simulated * (PAPER_LOOKUPS / lookups);
    println!("{label} {simulated:>14.4} {paper_estimate:>18.1}");
}

fn fig4(base: &WorkloadSpec) {
    println!("\n## Fig 4 — GPU basic kernel vs threads per block (paper: best at 256, diminishing beyond)");
    let input = build_input(base);
    let executor = Executor::tesla_c2075();
    println!(
        "{:>14} {:>14} {:>18}",
        "threads/block", "sim seconds", "est. paper-scale s"
    );
    for tpb in [128u32, 192, 256, 320, 384, 512, 640] {
        let (_, launches) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Basic,
            LaunchConfig::with_block_size(tpb),
        )
        .expect("launch");
        gpu_row(
            format!("{tpb:>14}"),
            total_simulated_seconds(&launches),
            &input,
        );
    }
}

fn fig5a(base: &WorkloadSpec) {
    println!("\n## Fig 5a — GPU chunked kernel vs chunk size at 64 threads/block");
    println!("##          (paper: 38.47s -> 22.72s at chunk 4, flat to 12, degrades beyond)");
    let input = build_input(base);
    let executor = Executor::tesla_c2075();
    println!(
        "{:>14} {:>14} {:>18}",
        "chunk size", "sim seconds", "est. paper-scale s"
    );
    for chunk in [1usize, 2, 4, 6, 8, 10, 12, 14, 16, 24, 32] {
        let (_, launches) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Chunked { chunk_size: chunk },
            LaunchConfig::with_block_size(64),
        )
        .expect("launch");
        gpu_row(
            format!("{chunk:>14}"),
            total_simulated_seconds(&launches),
            &input,
        );
    }
}

fn fig5b(base: &WorkloadSpec) {
    println!("\n## Fig 5b — GPU chunked kernel vs threads per block at chunk size 4");
    println!("##          (paper: max 192 threads, small gradual improvement)");
    let input = build_input(base);
    let executor = Executor::tesla_c2075();
    println!(
        "{:>14} {:>14} {:>18}",
        "threads/block", "sim seconds", "est. paper-scale s"
    );
    for tpb in [32u32, 64, 96, 128, 160, 192] {
        let (_, launches) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Chunked { chunk_size: 4 },
            LaunchConfig::with_block_size(tpb),
        )
        .expect("launch");
        gpu_row(
            format!("{tpb:>14}"),
            total_simulated_seconds(&launches),
            &input,
        );
    }
}

fn fig6a(base: &WorkloadSpec) {
    println!("\n## Fig 6a — total time per engine (paper: GPU basic 3.2x, GPU chunked 5.4x vs 8-core CPU)");
    let input = build_input(base);
    let lookups = input.total_lookups() as f64;
    let executor = Executor::tesla_c2075();

    let (_, t_seq) = wall(|| SequentialEngine::new().run(&input));
    let (_, t_par) = wall(|| ParallelEngine::with_threads(8).run(&input));
    let (_, t_all) = wall(|| ParallelEngine::new().run(&input));
    let (_, t_chunk_cpu) = wall(|| ChunkedEngine::new(64).run(&input));
    let (_, basic) = run_gpu_analysis(
        &executor,
        &input,
        GpuVariant::Basic,
        LaunchConfig::with_block_size(256),
    )
    .expect("launch");
    let (_, chunked) = run_gpu_analysis(
        &executor,
        &input,
        GpuVariant::Chunked { chunk_size: 4 },
        LaunchConfig::with_block_size(64),
    )
    .expect("launch");
    let t_basic = total_simulated_seconds(&basic);
    let t_chunked = total_simulated_seconds(&chunked);

    println!(
        "{:<26} {:>12} {:>12} {:>20}",
        "engine", "seconds", "vs seq", "est. paper-scale s"
    );
    let paper = |t: f64| t * PAPER_LOOKUPS / lookups;
    println!(
        "{:<26} {:>12.3} {:>12.2} {:>20.1}",
        "sequential (wall)",
        t_seq,
        1.0,
        paper(t_seq)
    );
    println!(
        "{:<26} {:>12.3} {:>12.2} {:>20.1}",
        "parallel 8 cores (wall)",
        t_par,
        t_seq / t_par,
        paper(t_par)
    );
    println!(
        "{:<26} {:>12.3} {:>12.2} {:>20.1}",
        "parallel all cores (wall)",
        t_all,
        t_seq / t_all,
        paper(t_all)
    );
    println!(
        "{:<26} {:>12.3} {:>12.2} {:>20.1}",
        "chunked cpu (wall)",
        t_chunk_cpu,
        t_seq / t_chunk_cpu,
        paper(t_chunk_cpu)
    );
    println!(
        "{:<26} {:>12.3} {:>12.2} {:>20.1}",
        "gpu basic (simulated)",
        t_basic,
        t_seq / t_basic,
        paper(t_basic)
    );
    println!(
        "{:<26} {:>12.3} {:>12.2} {:>20.1}",
        "gpu chunked (simulated)",
        t_chunked,
        t_seq / t_chunked,
        paper(t_chunked)
    );
    println!(
        "(simulated GPU rows are Tesla C2075 model time; CPU rows are wall clock on this host)"
    );
}

fn fig6b(base: &WorkloadSpec) {
    println!("\n## Fig 6b — share of time per phase (paper: ~78% ELT lookup)");
    let input = build_input(base);
    let (_, timer) = SequentialEngine::new().run_instrumented(&input);
    let breakdown = PhaseBreakdown::from_timer(&timer);
    print!("{}", breakdown.to_table());
}

fn ablation_lookup(base: &WorkloadSpec) {
    println!("\n## Ablation — ELT lookup structure (paper §III.B design discussion)");
    println!(
        "{:<10} {:>12} {:>10} {:>16}",
        "structure", "seconds", "vs direct", "lookup mem (MB)"
    );
    let mut direct_time = None;
    for kind in LookupKind::ALL {
        let spec = base.with_lookup(kind);
        let input = build_input(&spec);
        let mem = input.lookup_memory_bytes() as f64 / 1.0e6;
        let (_, t) = wall(|| ParallelEngine::new().run(&input));
        let baseline = *direct_time.get_or_insert(t);
        println!(
            "{:<10} {t:>12.3} {:>10.2} {mem:>16.1}",
            kind.label(),
            t / baseline
        );
    }
}

fn ablation_realtime(base: &WorkloadSpec) {
    println!("\n## Ablation — real-time pricing latency vs trial count (paper §IV: 50k trials, sub-second)");
    let spec = WorkloadSpec {
        trials: base.trials.max(50_000),
        ..*base
    };
    let input = build_input(&spec);
    println!("{:>10} {:>14} {:>16}", "trials", "quote seconds", "premium");
    for trials in [1_000usize, 5_000, 10_000, 50_000] {
        let trials = trials.min(input.num_trials());
        let quoter =
            RealTimeQuoter::new(&input, Some(trials), PricingConfig::default()).expect("quoter");
        let quoted = quoter
            .quote(
                Treaty::cat_xl(20.0e6, 60.0e6),
                &(0..spec.elts_per_layer).collect::<Vec<_>>(),
            )
            .expect("quote");
        println!(
            "{trials:>10} {:>14.3} {:>16.0}",
            quoted.elapsed.as_secs_f64(),
            quoted.quote.gross_premium
        );
    }
}
