//! # catrisk-finterms
//!
//! Financial terms, layer terms and reinsurance treaty structures.
//!
//! The aggregate analysis of the paper applies two groups of contractual
//! terms to simulated losses:
//!
//! * **financial terms `I`** attached to each Event Loss Table — an event
//!   level deductible, limit and participation share, plus a currency
//!   exchange rate from the ELT metadata ([`terms::FinancialTerms`]);
//! * **layer terms `T = (OccR, OccL, AggR, AggL)`** attached to each layer —
//!   the occurrence retention/limit of a Cat XL / Per-Occurrence XL treaty
//!   and the aggregate retention/limit of an Aggregate XL (stop-loss)
//!   treaty ([`terms::LayerTerms`], the paper's Table I).
//!
//! The [`treaty`] module expresses the common treaty shapes (Cat XL,
//! Aggregate XL, quota share, combined Per-Occurrence + Aggregate contracts,
//! reinstatements) and lowers them onto `LayerTerms`, while [`layer`]
//! describes which ELTs a layer covers.  The [`apply`] module holds the
//! scalar kernels shared by every engine implementation (sequential,
//! multi-core and simulated GPU), so all of them apply exactly the same
//! arithmetic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apply;
pub mod currency;
pub mod layer;
pub mod terms;
pub mod treaty;

pub use currency::{Currency, ExchangeRates};
pub use layer::{Layer, LayerBuilder, LayerId};
pub use terms::{FinancialTerms, LayerTerms};
pub use treaty::Treaty;

/// Errors produced while building or validating contract structures.
#[derive(Debug, Clone, PartialEq)]
pub enum TermsError {
    /// A numeric parameter was negative, NaN or otherwise out of range.
    InvalidParameter {
        /// Name of the offending field.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A layer was built without any covered ELTs.
    EmptyLayer,
    /// A requested currency has no exchange rate.
    UnknownCurrency(Currency),
}

impl std::fmt::Display for TermsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermsError::InvalidParameter { field, value } => {
                write!(f, "invalid value {value} for parameter `{field}`")
            }
            TermsError::EmptyLayer => write!(f, "a layer must cover at least one ELT"),
            TermsError::UnknownCurrency(c) => write!(f, "no exchange rate for currency {c}"),
        }
    }
}

impl std::error::Error for TermsError {}

/// Result alias for contract-construction operations.
pub type Result<T> = std::result::Result<T, TermsError>;
