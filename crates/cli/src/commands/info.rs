//! `catrisk info` — print the simulated device and default configuration.

use catrisk_engine::config::EngineConfig;
use catrisk_gpusim::device::DeviceSpec;

use super::Options;

/// Prints environment and configuration information.
pub fn run(_options: &Options) -> Result<(), String> {
    let device = DeviceSpec::tesla_c2075();
    println!("simulated device: {}", device.name);
    println!(
        "  SMs x lanes        : {} x {} = {} cores",
        device.num_sms,
        device.lanes_per_sm,
        device.total_lanes()
    );
    println!("  clock              : {:.2} GHz", device.clock_ghz);
    println!(
        "  global memory      : {:.3} GB",
        device.global_mem_bytes as f64 / 1024.0 / 1024.0 / 1024.0
    );
    println!(
        "  global bandwidth   : {:.0} GB/s",
        device.global_bandwidth_gbps
    );
    println!(
        "  shared mem per SM  : {} KB",
        device.shared_mem_per_sm / 1024
    );
    println!(
        "  constant memory    : {} KB",
        device.constant_mem_bytes / 1024
    );
    println!("  max threads per SM : {}", device.max_threads_per_sm);
    println!("  max blocks per SM  : {}", device.max_blocks_per_sm);

    let engine = EngineConfig::default();
    println!("\ndefault engine configuration:");
    println!("  kind               : {}", engine.kind);
    println!("  lookup structure   : {}", engine.lookup);
    println!("  threads            : {} (0 = all cores)", engine.threads);
    println!("  chunk size         : {}", engine.chunk_size);

    println!("\nhost:");
    println!(
        "  logical CPUs       : {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    Ok(())
}
