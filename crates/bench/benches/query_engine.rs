//! Query-engine benchmarks: single-query scan latency and batched-query
//! throughput over a production-shaped columnar store.
//!
//! The batched bench compares the `QuerySession` path (scan-spec dedup +
//! fused single-pass scan + shared order statistics) against the naive
//! baseline of executing every query independently — one full scan of the
//! loss columns per query.  The session must hold a ≥ 2× advantage on a
//! ≥ 10k-trial workload; the `batched_speedup` target prints the measured
//! ratio.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_simkit::rng::RngFactory;

/// A production-shaped store: every active (peril, region) cell of several
/// books becomes a segment, mirroring what `SegmentedInput` produces from
/// the catastrophe-model pipeline.
fn build_store(trials: usize, books: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("query-bench");
    let mut store = ResultStore::new(trials);
    let mut segment = 0u64;
    for book in 0..books {
        let region = Region::ALL[book % Region::ALL.len()];
        let lob = LineOfBusiness::ALL[book % LineOfBusiness::ALL.len()];
        for peril in region.active_perils() {
            let mut rng = factory.stream(segment);
            segment += 1;
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(LayerId(book as u32), *peril, region, lob);
            store
                .ingest(&YearLossTable::new(LayerId(book as u32), outcomes), meta)
                .expect("ingest");
        }
    }
    store
}

/// A representative ad-hoc batch: three distinct scan specs, each asked for
/// several metric sets (the typical "mean + VaR + TVaR + EP curve of the
/// same slice" pattern).
fn query_batch() -> Vec<Query> {
    let spec_a = |builder: QueryBuilder| {
        builder
            .with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Region)
    };
    let spec_b = |builder: QueryBuilder| builder.group_by(Dimension::Lob);
    let spec_c = |builder: QueryBuilder| {
        builder
            .with_perils([Peril::Earthquake])
            .group_by(Dimension::Layer)
    };
    vec![
        spec_a(QueryBuilder::new())
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        spec_a(QueryBuilder::new())
            .aggregate(Aggregate::Var { level: 0.99 })
            .build()
            .unwrap(),
        spec_a(QueryBuilder::new())
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        spec_a(QueryBuilder::new())
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 20,
            })
            .build()
            .unwrap(),
        spec_b(QueryBuilder::new())
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        spec_b(QueryBuilder::new())
            .aggregate(Aggregate::StdDev)
            .build()
            .unwrap(),
        spec_b(QueryBuilder::new())
            .aggregate(Aggregate::Pml {
                return_period: 250.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
        spec_b(QueryBuilder::new())
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 20,
            })
            .build()
            .unwrap(),
        spec_c(QueryBuilder::new())
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        spec_c(QueryBuilder::new())
            .aggregate(Aggregate::Tvar { level: 0.995 })
            .build()
            .unwrap(),
        spec_c(QueryBuilder::new())
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap(),
        spec_c(QueryBuilder::new())
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap(),
    ]
}

fn single_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_single_latency");
    group.sample_size(20);
    for &trials in &[10_000usize, 40_000] {
        let store = build_store(trials, 12, 2012);
        let query = QueryBuilder::new()
            .with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(trials), &store, |b, store| {
            b.iter(|| execute(store, &query).unwrap())
        });
    }
    group.finish();
}

fn batched_vs_naive(c: &mut Criterion) {
    let store = build_store(20_000, 12, 2012);
    let queries = query_batch();
    let mut group = c.benchmark_group("query_batched_throughput");
    group.sample_size(15);
    group.bench_function("naive_scan_per_query", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| execute(&store, q).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("batched_session", |b| {
        let session = QuerySession::new(&store);
        b.iter(|| session.run(&queries).unwrap())
    });
    group.finish();
}

/// Prints the measured batched-vs-naive speedup (the acceptance number).
fn batched_speedup(_c: &mut Criterion) {
    let store = build_store(20_000, 12, 2012);
    let queries = query_batch();
    let session = QuerySession::new(&store);
    // Warm up and verify equivalence once.
    let naive: Vec<_> = queries
        .iter()
        .map(|q| execute(&store, q).unwrap())
        .collect();
    let batched = session.run(&queries).unwrap();
    assert_eq!(naive, batched, "batched must be bit-identical to naive");

    let samples = 10;
    let naive_secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = queries
                .iter()
                .map(|q| execute(&store, q).unwrap())
                .collect::<Vec<_>>();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let batched_secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = session.run(&queries).unwrap();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "batched_speedup: naive {:.2} ms, session {:.2} ms -> {:.2}x \
         ({} queries, {} segments, {} trials)",
        naive_secs * 1e3,
        batched_secs * 1e3,
        naive_secs / batched_secs,
        queries.len(),
        store.num_segments(),
        store.num_trials()
    );
}

criterion_group!(
    query_engine,
    single_query_latency,
    batched_vs_naive,
    batched_speedup
);
criterion_main!(query_engine);
