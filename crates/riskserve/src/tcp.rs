//! The line-oriented TCP front-end over [`Server`], on `std::net` only —
//! one OS thread per connection, no async runtime.
//!
//! An accept thread hands each connection to a handler thread; handlers
//! read request lines, submit queries to the shared micro-batching
//! [`Server`] and write one JSON reply line per request (see
//! [`crate::protocol`] for the wire format).  Because every handler blocks
//! in [`Ticket::wait`](crate::server::Ticket::wait) while its query rides
//! a batch, N concurrent connections are exactly the concurrency the batch
//! scheduler coalesces.
//!
//! Shutdown: a `shutdown` request (or [`TcpFrontEnd::stop`]) flips the
//! shutdown flag, wakes the accept loop with a loopback connection, shuts
//! down every open connection's socket so blocked reads return, joins the
//! handlers, and finally drains the query server itself.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::source::SourceProvider;

use crate::protocol::{parse_request, Request, WireReply};
use crate::server::Server;
use crate::sync::lock;

struct TcpShared<P: SourceProvider> {
    server: Server<P>,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    /// Socket clones of every live connection (keyed by connection id),
    /// shut down to unblock handler reads when the front-end stops.
    /// Handlers deregister themselves on exit, so a closed connection's
    /// descriptor is released immediately, not held until shutdown.
    connections: Mutex<Vec<(u64, TcpStream)>>,
    next_connection_id: AtomicU64,
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<P: SourceProvider> TcpShared<P> {
    /// Flips the shutdown flag and unblocks the accept loop and every
    /// handler read.  Idempotent.
    fn stop(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop: it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        for (_, connection) in lock(&self.connections).drain(..) {
            let _ = connection.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running TCP front-end.  Obtain one with [`TcpFrontEnd::bind`], then
/// either block in [`wait`](TcpFrontEnd::wait) until a client sends
/// `shutdown`, or stop it programmatically with
/// [`stop`](TcpFrontEnd::stop).
pub struct TcpFrontEnd<P: SourceProvider> {
    shared: Arc<TcpShared<P>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl<P: SourceProvider> TcpFrontEnd<P> {
    /// Binds `addr` (e.g. `127.0.0.1:7433`, port `0` for an ephemeral
    /// port) and starts accepting connections for `server`.
    pub fn bind(server: Server<P>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(TcpShared {
            server,
            addr: local,
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
            next_connection_id: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("riskserve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Self {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The underlying query server (for stats).
    pub fn server(&self) -> &Server<P> {
        &self.shared.server
    }

    /// Requests shutdown without waiting for it to complete.
    pub fn stop(&self) {
        self.shared.stop();
    }

    /// Blocks until the front-end has shut down — triggered by a client's
    /// `shutdown` line or a [`stop`](TcpFrontEnd::stop) call — then drains
    /// the query server (every accepted request is answered) and returns.
    pub fn wait(mut self) -> std::io::Result<()> {
        if let Some(accept) = self.accept_thread.take() {
            accept
                .join()
                .map_err(|_| std::io::Error::other("accept thread panicked"))?;
        }
        for handler in lock(&self.shared.handlers).drain(..) {
            let _ = handler.join();
        }
        self.shared.server.shutdown();
        Ok(())
    }
}

impl<P: SourceProvider> Drop for TcpFrontEnd<P> {
    fn drop(&mut self) {
        self.shared.stop();
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for handler in lock(&self.shared.handlers).drain(..) {
            let _ = handler.join();
        }
    }
}

fn accept_loop<P: SourceProvider>(listener: &TcpListener, shared: &Arc<TcpShared<P>>) {
    for connection in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(connection) = connection else {
            continue;
        };
        let Ok(clone) = connection.try_clone() else {
            continue;
        };
        let id = shared.next_connection_id.fetch_add(1, Ordering::Relaxed);
        lock(&shared.connections).push((id, clone));
        // Re-check after registering: a stop() racing this accept either
        // sees the registered clone in its drain, or is observed here.
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = connection.shutdown(std::net::Shutdown::Both);
            return;
        }
        let handler_shared = Arc::clone(shared);
        let handler = std::thread::Builder::new()
            .name("riskserve-conn".to_string())
            .spawn(move || {
                handle_connection(connection, &handler_shared);
                // Deregister so the socket clone (a dup'd descriptor) is
                // dropped with the connection, not at server shutdown.
                lock(&handler_shared.connections).retain(|(cid, _)| *cid != id);
            });
        if let Ok(handler) = handler {
            let mut handlers = lock(&shared.handlers);
            // Reap finished handler threads so connection churn does not
            // grow the vector (and their join results) without bound.
            handlers.retain(|h| !h.is_finished());
            handlers.push(handler);
        }
    }
}

/// Serves one connection: read a line, answer a line, until EOF, `quit`,
/// `shutdown`, or front-end shutdown.
fn handle_connection<P: SourceProvider>(connection: TcpStream, shared: &TcpShared<P>) {
    let Ok(writer) = connection.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(writer);
    let reader = BufReader::new(connection);
    for line in reader.lines() {
        let Ok(line) = line else {
            break; // client vanished or socket shut down
        };
        let reply = match parse_request(&line) {
            Ok(None) => continue,
            Ok(Some(Request::Ping)) => WireReply::pong(),
            Ok(Some(Request::Stats)) => WireReply::stats(shared.server.stats()),
            Ok(Some(Request::Metrics)) => WireReply::metrics(shared.server.metrics()),
            Ok(Some(Request::Recorder)) => WireReply::recorder(shared.server.recorder_dump()),
            Ok(Some(Request::RecorderSince(since))) => {
                WireReply::recorder(shared.server.recorder_dump_since(since))
            }
            Ok(Some(Request::Trace(id))) => WireReply::trace_lookup(id, shared.server.trace(id)),
            Ok(Some(Request::TraceSlowest(n))) => {
                WireReply::traces(shared.server.slowest_traces(n))
            }
            Ok(Some(Request::Quit)) => {
                let _ = write_line(&mut writer, &WireReply::bye());
                break;
            }
            Ok(Some(Request::Shutdown)) => {
                let _ = write_line(&mut writer, &WireReply::shutting_down());
                shared.stop();
                break;
            }
            Ok(Some(Request::Query { query, trace })) => match if trace {
                // The wire flag forces a trace whatever the sampling knob
                // says — a client asking for a profile always gets one.
                shared.server.submit_traced(query)
            } else {
                shared.server.submit(query)
            } {
                // The wait blocks this connection only; other connections'
                // requests coalesce into the same batch meanwhile.
                Ok(ticket) => match ticket.wait() {
                    Ok(mut reply) => {
                        // The profile rides the wire only when this line
                        // asked for it — sampling alone never widens a
                        // reply an existing client did not opt into.
                        if !trace {
                            reply.trace = None;
                        }
                        WireReply::from(reply)
                    }
                    Err(err) => WireReply::from(&err),
                },
                Err(err) => WireReply::from(&err),
            },
            Err(message) => WireReply::error("parse", message),
        };
        if write_line(&mut writer, &reply).is_err() {
            break;
        }
    }
}

fn write_line(writer: &mut impl Write, reply: &WireReply) -> std::io::Result<()> {
    writeln!(writer, "{}", reply.to_line())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::test_store::{random_store, sample_queries};
    use catrisk_riskclient::{Client, ClientConfig};
    use catrisk_riskquery::QuerySession;
    use std::time::Duration;

    fn client(addr: SocketAddr) -> Client {
        Client::connect(&addr.to_string(), ClientConfig::default()).expect("connect")
    }

    fn roundtrip(client: &mut Client, request: &str) -> WireReply {
        client.round_trip(request).expect("a reply line")
    }

    #[test]
    fn tcp_round_trip_queries_commands_and_shutdown() {
        let store = Arc::new(random_store(256, 12, 7));
        let expected = QuerySession::new(&*store).run(&sample_queries()).unwrap();
        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                batch_window: Duration::from_micros(100),
                trace_sample_every: 1,
                ..ServerConfig::default()
            },
        );
        let front = TcpFrontEnd::bind(server, "127.0.0.1:0").expect("bind");
        let addr = front.local_addr();

        let mut conn = client(addr);
        let pong = roundtrip(&mut conn, "ping");
        assert_eq!(pong.kind, "pong");

        let reply = roundtrip(
            &mut conn,
            "select mean, tvar(0.99) where peril=HU|FL group by region",
        );
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.result.as_ref().unwrap(), &expected[0]);
        assert!(reply.timings.batch_size >= 1);
        // Sampling is on, but this line did not carry the `trace` prefix:
        // the profile stays server-side.
        assert_eq!(reply.trace, None);

        // A traced query gets its profile inline, timed from the same
        // clock reads as the timings it rides with.
        let traced = roundtrip(
            &mut conn,
            "trace select mean, tvar(0.99) where peril=HU|FL group by region",
        );
        assert!(traced.ok, "{traced:?}");
        assert_eq!(traced.result.as_ref().unwrap(), &expected[0]);
        let profile = traced.trace.expect("traced reply carries its profile");
        assert_eq!(
            profile.total_micros,
            traced.timings.queue_micros + traced.timings.exec_micros
        );
        assert_eq!(profile.root.name, "request");
        // ... and is retained server-side, resolvable by id.
        let lookup = roundtrip(&mut conn, &format!("trace {}", profile.id));
        assert_eq!(lookup.kind, "trace");
        assert_eq!(lookup.trace.as_ref().unwrap().id, profile.id);
        let unknown = roundtrip(&mut conn, "trace 999999");
        assert_eq!(unknown.error.as_ref().unwrap().kind, "invalid");
        let slowest = roundtrip(&mut conn, "trace slowest 3");
        assert_eq!(slowest.kind, "traces");
        assert!(!slowest.traces.as_ref().unwrap().is_empty());

        // `recorder since` scrapes incrementally: a later `since` returns
        // a strict suffix of the full dump.
        let full = roundtrip(&mut conn, "recorder");
        let events = full.recorder.expect("recorder payload");
        let last_seq = events.last().expect("at least one event").seq;
        let since = roundtrip(&mut conn, &format!("recorder since {last_seq}"));
        let tail = since.recorder.expect("recorder payload");
        assert!(tail.iter().all(|e| e.seq >= last_seq));
        assert!(tail.iter().any(|e| e.seq == last_seq));

        let bad = roundtrip(&mut conn, "select nonsense");
        assert!(!bad.ok);
        assert_eq!(bad.error.as_ref().unwrap().kind, "parse");

        let stats = roundtrip(&mut conn, "stats");
        assert!(stats.stats.unwrap().completed >= 1);

        let metrics = roundtrip(&mut conn, "metrics");
        let snapshot = metrics.metrics.expect("metrics payload");
        assert!(snapshot.counter("completed").unwrap() >= 1);
        // The count-consistency contract, over the wire: every
        // result-cache miss contributed exactly one scan-stage sample.
        assert_eq!(
            snapshot.histogram("stage_scan_micros").unwrap().count,
            snapshot.counter("cache_misses").unwrap(),
        );

        let recorder = roundtrip(&mut conn, "recorder");
        let events = recorder.recorder.expect("recorder payload");
        assert!(
            events.iter().any(|event| event.kind == "batch"),
            "{events:?}"
        );

        // A second connection coexists and can quit independently; once it
        // is gone its registry entry (a dup'd descriptor) is released.
        // Registration and deregistration happen on server threads, so
        // both are polled rather than asserted immediately.
        let registered_count = |want: usize| {
            (0..200).any(|_| {
                let now = lock(&front.shared.connections).len();
                now == want || {
                    std::thread::sleep(Duration::from_millis(10));
                    false
                }
            })
        };
        let mut conn2 = client(addr);
        assert!(registered_count(2), "second connection never registered");
        let bye = roundtrip(&mut conn2, "quit");
        assert_eq!(bye.kind, "bye");
        drop(conn2);
        assert!(registered_count(1), "closed connection stayed registered");

        let ack = roundtrip(&mut conn, "shutdown");
        assert_eq!(ack.kind, "shutting-down");
        front.wait().expect("clean shutdown");
    }

    #[test]
    fn stop_unblocks_idle_connections() {
        let store = Arc::new(random_store(32, 4, 3));
        let front = TcpFrontEnd::bind(Server::with_defaults(store), "127.0.0.1:0").expect("bind");
        // An idle connection's handler sits in a blocked read ...
        let mut conn = client(front.local_addr());
        front.stop();
        front.wait().expect("clean shutdown");
        // ... and was shut down server-side: the next exchange surfaces
        // EOF as a transport error instead of hanging.
        assert!(conn.round_trip("ping").is_err());
    }
}
