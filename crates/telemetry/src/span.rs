//! RAII stage timers feeding named histograms.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;

/// An RAII timer: created at stage entry, records the elapsed microseconds
/// into its histogram when dropped (or explicitly finished).
///
/// ```
/// use catrisk_telemetry::{Registry, Span};
///
/// let registry = Registry::new();
/// let scan = registry.histogram("stage_scan_micros");
/// {
///     let _span = Span::enter(&scan);
///     // ... the stage body ...
/// } // drop records the elapsed time
/// assert_eq!(scan.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Starts timing a stage that records into `histogram`.
    pub fn enter(histogram: &Arc<Histogram>) -> Self {
        Self {
            histogram: Arc::clone(histogram),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Microseconds elapsed so far, without recording.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records now and returns the recorded value, consuming the span.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_micros();
        self.armed = false;
        self.histogram.record(elapsed);
        elapsed
    }

    /// Like [`Span::finish`], but also stamps `trace_id` as the exemplar of
    /// the bucket the value lands in (no stamp when `trace_id` is 0).  The
    /// returned value is the *same* clock read the histogram recorded, so a
    /// trace built from it can never disagree with the aggregate metrics.
    pub fn finish_with_exemplar(mut self, trace_id: u64) -> u64 {
        let elapsed = self.elapsed_micros();
        self.armed = false;
        self.histogram.record_with_exemplar(elapsed, trace_id);
        elapsed
    }

    /// Consumes the span without recording anything (for abandoned stages).
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.record(self.elapsed_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn drop_records_once() {
        let reg = Registry::new();
        let h = reg.histogram("stage");
        {
            let _span = Span::enter(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_and_reports() {
        let reg = Registry::new();
        let h = reg.histogram("stage");
        let span = Span::enter(&h);
        let micros = span.finish();
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().sum, micros);
    }

    #[test]
    fn discard_records_nothing() {
        let reg = Registry::new();
        let h = reg.histogram("stage");
        Span::enter(&h).discard();
        assert_eq!(h.count(), 0);
    }
}
