//! Poison-ignoring lock helpers shared across the crate: a worker or
//! handler panic must never wedge every client behind a poisoned lock.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}
