//! Reusable per-shard partial aggregates: the unit a trial-sharded
//! serving layer caches.
//!
//! Trial-axis sharding splits one query's scan into per-shard windows
//! whose [`PartialAggregate`]s stitch back together with the exact
//! adjacent-window monoid.  That makes the *per-shard partial* the
//! natural unit of cache reuse — QuPARA's multi-GPU follow-up makes the
//! same observation for its per-partition aggregates: when one shard
//! refreshes, only its window needs rescanning, and every other shard's
//! cached partial re-combines unchanged.  This module packages a partial
//! with just enough self-description ([`TrialPartial`]) to survive being
//! cached across batches and re-combined later:
//!
//! * group **keys** (decoded dimension values, not plan-local group
//!   indices — indices are an artifact of one plan's first-appearance
//!   order and may differ between the plan that produced a cached
//!   partial and the plan consuming it);
//! * per-group **segment counts** (reported in result rows);
//! * the global **trial window** the partial covers.
//!
//! [`combine_trial_partials`] re-aligns parts by key, concatenates their
//! windows in order, and finalises through the same metric kernels
//! [`execute`](crate::exec::execute) uses — so a result assembled from
//! cached partials is bit-identical to a fresh scan of the whole window.
//!
//! Two extensions make the partial the universal unit of reuse:
//!
//! * **Fusion** — [`scan_trial_partials_fused`] emits one partial *per
//!   query* from a single walk of a shard window, so a batch of N
//!   cache-missing queries costs one scan per window instead of N.
//! * **The segment axis** — [`restrict_plan_to_segments`] /
//!   [`combine_segment_partials`] cache per-*segment-shard* partials
//!   (pre-loss-range, keyed by decoded group keys) and recombine them by
//!   element-wise sum/max in shard order.  That combine is only bitwise
//!   exact when [`plan_is_shard_aligned`] holds — every group's segments
//!   in one shard, so the zero vector's monoid identity (±0.0-normalised
//!   by the scan kernel) is the only other contribution per group.

use std::collections::HashMap;

use crate::exec::{self, PartialAggregate, SortedCache};
use crate::plan::QueryPlan;
use crate::query::Query;
use crate::result::{DimValue, QueryResult, ResultRow};
use crate::store::SegmentSource;
use crate::{QueryError, Result};

/// One shard's contribution to a query: the partial aggregate of the
/// shard's trial window, keyed by decoded group keys so it can be cached
/// and re-combined across batches.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPartial {
    /// Decoded group keys, in the producing plan's group order.
    pub keys: Vec<Vec<DimValue>>,
    /// Segments contributing to each group (same across shards: every
    /// trial shard holds every segment).
    pub segment_counts: Vec<usize>,
    /// The global trial window `[start, end)` this partial covers.
    pub window: (usize, usize),
    /// The accumulated loss vectors per group over the window.
    pub aggregate: PartialAggregate,
}

impl TrialPartial {
    /// Number of trials this partial covers.
    pub fn num_trials(&self) -> usize {
        self.window.1 - self.window.0
    }

    /// Approximate heap bytes of the partial's loss vectors (cache
    /// accounting).
    pub fn memory_bytes(&self) -> usize {
        self.aggregate
            .year
            .iter()
            .chain(&self.aggregate.maxocc)
            .map(|column| column.len() * std::mem::size_of::<f64>())
            .sum()
    }
}

/// Scans one shard window of a planned query: the plan's scan restricted
/// to the global trial window `[start, end)`, packaged with the plan's
/// group keys and segment counts.
///
/// The window must lie inside the plan's trial window; a caller shards
/// the plan window by clipping it against each shard's window (an empty
/// clip yields a valid zero-trial partial, so shards outside the query's
/// trial filter still combine exactly).
pub fn scan_trial_partial<S: SegmentSource + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    start: usize,
    end: usize,
) -> TrialPartial {
    let mut segment_counts = vec![0usize; plan.num_groups()];
    for &group in &plan.groups {
        segment_counts[group] += 1;
    }
    TrialPartial {
        keys: plan.keys.clone(),
        segment_counts,
        window: (start, end),
        aggregate: exec::scan_window(store, plan, start, end),
    }
}

/// [`scan_trial_partial`] for a whole batch: one fused pass over the
/// shard window `[start, end)` emits a [`TrialPartial`] per plan.
///
/// Plans that resolve to the same scan shape (same surviving segments,
/// group assignment, decoded keys *and* loss range — two group-bys can
/// coincide on segments and group indices yet differ in keys) share one
/// set of accumulated vectors, and the remaining distinct shapes ride a
/// single [`exec::fused_scan_plans`] pass: each segment's loss slices are
/// read once per trial block and routed to every plan, so a 50-query
/// batch costs one walk of the window instead of 50.  Each returned
/// partial is bit-identical to [`scan_trial_partial`] of its plan alone.
///
/// Every plan's trial window must contain `[start, end)`; an empty
/// window yields valid zero-trial partials, exactly like
/// [`scan_trial_partial`].
pub fn scan_trial_partials_fused<S: SegmentSource + ?Sized>(
    store: &S,
    plans: &[&QueryPlan],
    start: usize,
    end: usize,
) -> Vec<TrialPartial> {
    // Dedup identical scan shapes (linear probe: batches are small and
    // the comparison is cheap next to a scan).
    let mut uniques: Vec<&QueryPlan> = Vec::new();
    let mut member_of: Vec<usize> = Vec::with_capacity(plans.len());
    for &plan in plans {
        let found = uniques.iter().position(|&unique| {
            std::ptr::eq(unique, plan)
                || (unique.loss == plan.loss
                    && unique.segments == plan.segments
                    && unique.groups == plan.groups
                    && unique.keys == plan.keys)
        });
        match found {
            Some(ui) => member_of.push(ui),
            None => {
                member_of.push(uniques.len());
                uniques.push(plan);
            }
        }
    }

    let aggregates = exec::fused_scan_plans(store, &uniques, start, end);
    let mut unique_parts: Vec<Option<TrialPartial>> = uniques
        .iter()
        .zip(aggregates)
        .map(|(plan, aggregate)| {
            let mut segment_counts = vec![0usize; plan.num_groups()];
            for &group in &plan.groups {
                segment_counts[group] += 1;
            }
            Some(TrialPartial {
                keys: plan.keys.clone(),
                segment_counts,
                window: (start, end),
                aggregate,
            })
        })
        .collect();

    // Fan the unique partials back out: the last member of each shape
    // takes ownership, earlier duplicates clone.
    let mut remaining = vec![0usize; uniques.len()];
    for &ui in &member_of {
        remaining[ui] += 1;
    }
    member_of
        .into_iter()
        .map(|ui| {
            remaining[ui] -= 1;
            if remaining[ui] == 0 {
                unique_parts[ui].take().expect("one take per unique shape")
            } else {
                unique_parts[ui].clone().expect("not yet taken")
            }
        })
        .collect()
}

/// Stitches per-shard partials (in window order) into the final
/// [`QueryResult`], bit-identical to scanning the whole window at once.
///
/// Parts must agree on their group keys and segment counts (trial shards
/// present identical segment layouts, so any disagreement means the
/// parts describe different snapshots — the caller falls back to a fresh
/// scan) and their windows must be adjacent: each part starts where the
/// previous ended.
pub fn combine_trial_partials(query: &Query, parts: Vec<TrialPartial>) -> Result<QueryResult> {
    let refs: Vec<&TrialPartial> = parts.iter().collect();
    combine_trial_partial_refs(query, &refs)
}

/// [`combine_trial_partials`] over borrowed parts — the serving layer
/// stitches cache-shared (`Arc`ed) partials without copying them first.
/// Concatenating by `extend_from_slice` is bit-identical to the
/// by-value `combine_adjacent` append: both are pure concatenation.
pub fn combine_trial_partial_refs(
    query: &Query,
    parts: &[&TrialPartial],
) -> Result<QueryResult> {
    let Some(first) = parts.first() else {
        return Err(QueryError::Store(
            "no trial partials to combine".to_string(),
        ));
    };
    let keys = &first.keys;
    let segment_counts = &first.segment_counts;
    let (window_start, mut window_end) = first.window;
    for part in &parts[1..] {
        if part.keys != *keys || part.segment_counts != *segment_counts {
            return Err(QueryError::Store(
                "trial partials disagree on group keys; they describe different snapshots"
                    .to_string(),
            ));
        }
        if part.window.0 != window_end {
            return Err(QueryError::Store(format!(
                "trial partial windows are not adjacent: {}..{} then {}..{}",
                window_start, window_end, part.window.0, part.window.1
            )));
        }
        window_end = part.window.1;
    }

    // Adjacent-window concatenation, group by group, without consuming
    // (or cloning) any part.
    let groups = keys.len();
    let concat = |column: fn(&PartialAggregate) -> &Vec<Vec<f64>>| -> Vec<Vec<f64>> {
        (0..groups)
            .map(|group| {
                let total: usize = parts
                    .iter()
                    .map(|part| column(&part.aggregate)[group].len())
                    .sum();
                let mut merged = Vec::with_capacity(total);
                for part in parts {
                    merged.extend_from_slice(&column(&part.aggregate)[group]);
                }
                merged
            })
            .collect()
    };
    let aggregate = PartialAggregate {
        year: concat(|aggregate| &aggregate.year),
        maxocc: concat(|aggregate| &aggregate.maxocc),
    };

    // Canonical row order, exactly as `exec::assemble` derives it from a
    // plan: ascending by decoded key.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| DimValue::compare_keys(&keys[a], &keys[b]));
    let rows: Vec<ResultRow> = order
        .into_iter()
        .map(|group| {
            let mut cache = SortedCache::default();
            ResultRow {
                key: keys[group].clone(),
                segments: segment_counts[group],
                values: exec::finalize_group(&query.aggregates, &aggregate, group, &mut cache),
            }
        })
        .collect();
    Ok(QueryResult {
        group_by: query.group_by.clone(),
        aggregates: query.aggregates.clone(),
        trials: window_end - window_start,
        rows,
    })
}

/// Restricts `plan` to the segments in the global range `[lo, hi)` — one
/// shard of a segment-axis union — with group indices remapped
/// shard-locally (in order of first appearance, preserving global
/// segment order) and the loss-range predicate **stripped**: per-shard
/// segment partials are cached *pre* loss range, and
/// [`combine_segment_partials`] applies the range once after the shards
/// combine.  Groups with no segment in the range are dropped; their
/// absence from the shard's partial is the monoid identity.
pub fn restrict_plan_to_segments(plan: &QueryPlan, lo: usize, hi: usize) -> QueryPlan {
    let mut local: Vec<Option<usize>> = vec![None; plan.num_groups()];
    let mut segments = Vec::new();
    let mut groups = Vec::new();
    let mut keys: Vec<Vec<DimValue>> = Vec::new();
    for (&segment, &group) in plan.segments.iter().zip(&plan.groups) {
        if segment < lo || segment >= hi {
            continue;
        }
        let lg = match local[group] {
            Some(lg) => lg,
            None => {
                let lg = keys.len();
                keys.push(plan.keys[group].clone());
                local[group] = Some(lg);
                lg
            }
        };
        segments.push(segment);
        groups.push(lg);
    }
    QueryPlan {
        trial_start: plan.trial_start,
        trial_end: plan.trial_end,
        loss: None,
        segments,
        groups,
        keys,
    }
}

/// Whether every group of `plan` draws all of its segments from a single
/// shard of the segment-axis layout `ranges` (each entry the global
/// segment range `[lo, hi)` one shard contributes).
///
/// This is the gate for segment-axis partial caching: per-shard partials
/// combine by element-wise sum, and floating-point addition is not
/// associative — a group whose segments span shards would see a
/// different accumulation bracketing than the flat union scan and could
/// differ in the last ulp.  When every group lives in one shard, exactly
/// one shard contributes a non-identity vector per group, the
/// (normalised, `-0.0`-free) zero vector is a *bitwise* identity for
/// `+`/`max`, and the combined result is exactly the flat scan's bits.
/// Unaligned plans fall back to the fused whole-union scan.
pub fn plan_is_shard_aligned(plan: &QueryPlan, ranges: &[(usize, usize)]) -> bool {
    let shard_of =
        |segment: usize| ranges.iter().position(|&(lo, hi)| lo <= segment && segment < hi);
    let mut owner: Vec<Option<usize>> = vec![None; plan.num_groups()];
    for (&segment, &group) in plan.segments.iter().zip(&plan.groups) {
        let Some(shard) = shard_of(segment) else {
            return false;
        };
        match owner[group] {
            None => owner[group] = Some(shard),
            Some(own) if own == shard => {}
            Some(_) => return false,
        }
    }
    true
}

/// Combines per-shard **segment-axis** partials (in shard order) into the
/// final [`QueryResult`] of `plan` — bit-identical to the flat union scan
/// when [`plan_is_shard_aligned`] holds (the caller's obligation).
///
/// Each part is the output of scanning a
/// [`restrict_plan_to_segments`]-restricted plan over the full plan
/// window: pre-loss-range vectors keyed by decoded group keys.  Groups
/// are re-aligned **by key** (a shard's local group order is an artifact
/// of its own first-appearance order and survives other shards'
/// refreshes; a key a shard does not carry contributes the identity),
/// summed element-wise through the same add/max kernel the scan uses,
/// then the plan's loss range — deferred by the restriction exactly so
/// cached shard partials stay range-independent — is applied once and
/// the rows finalise in canonical key order.
pub fn combine_segment_partials(
    query: &Query,
    plan: &QueryPlan,
    parts: &[&TrialPartial],
) -> Result<QueryResult> {
    let window = (plan.trial_start, plan.trial_end);
    let trials = plan.trial_end - plan.trial_start;
    let groups = plan.num_groups();
    let mut acc = PartialAggregate::identity(groups, trials);
    for part in parts {
        if part.window != window {
            return Err(QueryError::Store(format!(
                "segment partial covers window {}..{}, plan scans {}..{}",
                part.window.0, part.window.1, window.0, window.1
            )));
        }
        let index: HashMap<&Vec<DimValue>, usize> = part
            .keys
            .iter()
            .enumerate()
            .map(|(j, key)| (key, j))
            .collect();
        for (group, key) in plan.keys.iter().enumerate() {
            let Some(&j) = index.get(key) else {
                continue; // this shard holds no segment of the group: identity
            };
            let year = &part.aggregate.year[j];
            let occ = &part.aggregate.maxocc[j];
            if year.len() != trials || occ.len() != trials {
                return Err(QueryError::Store(
                    "segment partial vectors do not span the plan window; \
                     they describe a different snapshot"
                        .to_string(),
                ));
            }
            acc.accumulate(group, year, occ);
        }
    }
    if let Some(range) = plan.loss {
        acc.retain_by_year(range);
    }

    let mut segment_counts = vec![0usize; groups];
    for &group in &plan.groups {
        segment_counts[group] += 1;
    }
    let mut order: Vec<usize> = (0..groups).collect();
    order.sort_by(|&a, &b| DimValue::compare_keys(&plan.keys[a], &plan.keys[b]));
    let rows: Vec<ResultRow> = order
        .into_iter()
        .map(|group| {
            let mut cache = SortedCache::default();
            ResultRow {
                key: plan.keys[group].clone(),
                segments: segment_counts[group],
                values: exec::finalize_group(&query.aggregates, &acc, group, &mut cache),
            }
        })
        .collect();
    Ok(QueryResult {
        group_by: query.group_by.clone(),
        aggregates: query.aggregates.clone(),
        trials,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::{Aggregate, Basis, QueryBuilder};
    use crate::store::ResultStore;
    use crate::Dimension;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;

    use crate::dims::{LineOfBusiness, SegmentMeta};

    fn store() -> ResultStore {
        let mut store = ResultStore::new(6);
        let segs = [
            (0u32, Peril::Hurricane, [1.0, 0.0, 4.0, 2.0, 7.0, 0.0]),
            (1, Peril::Flood, [2.0, 5.0, 0.0, 1.0, 0.0, 3.0]),
            (2, Peril::Hurricane, [0.0, 1.0, 1.0, 0.0, 2.0, 9.0]),
        ];
        for (layer, peril, losses) in segs {
            let outcomes = losses
                .iter()
                .map(|&l| TrialOutcome {
                    year_loss: l,
                    max_occurrence_loss: l * 0.5,
                    nonzero_events: 0,
                })
                .collect();
            store
                .ingest(
                    &YearLossTable::new(LayerId(layer), outcomes),
                    SegmentMeta::new(
                        LayerId(layer),
                        peril,
                        Region::Europe,
                        LineOfBusiness::Property,
                    ),
                )
                .unwrap();
        }
        store
    }

    fn queries() -> Vec<Query> {
        vec![
            QueryBuilder::new()
                .group_by(Dimension::Peril)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.9 })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .trials(1..5)
                .aggregate(Aggregate::EpCurve {
                    basis: Basis::Oep,
                    points: 3,
                })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .loss_at_least(2.0)
                .group_by(Dimension::Layer)
                .aggregate(Aggregate::MaxLoss)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn stitched_partials_reproduce_execute_bitwise() {
        let store = store();
        for query in queries() {
            let plan = QueryPlan::new(&store, &query).unwrap();
            // Split the plan window into up to three chunks, including a
            // possibly-empty middle chunk.
            let (lo, hi) = (plan.trial_start, plan.trial_end);
            let a = lo + (hi - lo) / 3;
            let b = lo + 2 * (hi - lo) / 3;
            let parts = vec![
                scan_trial_partial(&store, &plan, lo, a),
                scan_trial_partial(&store, &plan, a, b),
                scan_trial_partial(&store, &plan, b, hi),
            ];
            assert!(parts[0].memory_bytes() <= parts[0].aggregate.year.len() * (hi - lo) * 16);
            let stitched = combine_trial_partials(&query, parts).unwrap();
            assert_eq!(
                stitched,
                execute(&store, &query).unwrap(),
                "stitched partials must be bit-identical to a whole-window scan"
            );
        }
    }

    #[test]
    fn empty_window_partials_are_identity() {
        let store = store();
        let query = QueryBuilder::new()
            .trials(0..3)
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        // A shard whose window lies entirely outside the query's trial
        // filter contributes a zero-trial partial.
        let parts = vec![
            scan_trial_partial(&store, &plan, 0, 3),
            scan_trial_partial(&store, &plan, 3, 3),
        ];
        let stitched = combine_trial_partials(&query, parts).unwrap();
        assert_eq!(stitched, execute(&store, &query).unwrap());
    }

    #[test]
    fn misaligned_partials_are_rejected() {
        let store = store();
        let query = queries().remove(0);
        let plan = QueryPlan::new(&store, &query).unwrap();
        let a = scan_trial_partial(&store, &plan, 0, 2);
        let c = scan_trial_partial(&store, &plan, 4, 6);
        // A gap between windows is rejected.
        assert!(matches!(
            combine_trial_partials(&query, vec![a.clone(), c]),
            Err(QueryError::Store(_))
        ));
        // So are parts whose group keys disagree.
        let other_query = QueryBuilder::new()
            .group_by(Dimension::Layer)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let other_plan = QueryPlan::new(&store, &other_query).unwrap();
        let miskeyed = scan_trial_partial(&store, &other_plan, 2, 6);
        assert!(matches!(
            combine_trial_partials(&query, vec![a, miskeyed]),
            Err(QueryError::Store(_))
        ));
        // And an empty part list.
        assert!(combine_trial_partials(&query, vec![]).is_err());
    }
}
