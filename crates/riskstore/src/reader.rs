//! The verifying, zero-copy store reader.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::{Dictionary, LineOfBusiness, QuerySession, SegmentMeta, SegmentSource};

use crate::footer::{decode_layer, decode_lob, decode_peril, decode_region, Footer};
use crate::format::{crc32, pages_per_column, read_up_to, Header, HEADER_LEN};
use crate::{Result, StoreError};

/// The loss columns of every committed segment, loaded once into a single
/// 8-aligned region.
///
/// The backing allocation is `u64`s, so reinterpreting any sub-range as
/// `f64`s is free: same size, same alignment, and every bit pattern is a
/// valid `f64`.  Column slices handed to the query scan borrow straight
/// from this region — opening the file is the only copy, queries
/// deserialise nothing.  (A true `mmap(2)` would satisfy the same
/// interface; the loaded region keeps the crate dependency-free and the
/// swap is confined to this type.)
#[derive(Debug, Default)]
struct ColumnRegion {
    bits: Vec<u64>,
}

impl ColumnRegion {
    fn with_len(values: usize) -> Self {
        Self {
            bits: vec![0u64; values],
        }
    }

    /// Mutable byte view for loading from the file.
    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: `u64` has no padding or invalid bit patterns, the
        // allocation is valid for `len * 8` bytes, and `u8` has alignment 1.
        unsafe {
            std::slice::from_raw_parts_mut(self.bits.as_mut_ptr().cast::<u8>(), self.bits.len() * 8)
        }
    }

    /// Shared byte view for checksum verification.
    fn bytes(&self) -> &[u8] {
        // SAFETY: as above, shared.
        unsafe { std::slice::from_raw_parts(self.bits.as_ptr().cast::<u8>(), self.bits.len() * 8) }
    }

    /// The region as losses.
    fn losses(&self) -> &[f64] {
        // SAFETY: `f64` and `u64` share size and alignment and every `u64`
        // bit pattern is a valid `f64` (the file stores IEEE-754 bits).
        unsafe { std::slice::from_raw_parts(self.bits.as_ptr().cast::<f64>(), self.bits.len()) }
    }

    /// Converts the little-endian file bytes to native byte order in
    /// place.  A no-op on little-endian targets.
    fn make_native_endian(&mut self) {
        if cfg!(target_endian = "big") {
            for bits in &mut self.bits {
                *bits = u64::from_le(*bits);
            }
        }
    }
}

/// Read-only view of a committed store file.
///
/// Opening validates everything the queries will touch — header and footer
/// checksums, dictionary pages, code columns, and the CRC of every loss
/// page — so scan-time access is unchecked slicing.  The reader implements
/// [`SegmentSource`]: pass it to `catrisk_riskquery::execute` or wrap it
/// in a [`QuerySession`] via [`StoreReader::session`], and the parallel
/// scan consumes its column slices exactly as it consumes the in-memory
/// `ResultStore`'s.
///
/// A reader is immutable once opened (later commits to the file are
/// invisible until a reopen), so it is `Send + Sync` and one instance can
/// back any number of concurrent scans — a serving front-end shares a
/// single reader across all of its batch workers without locking.
/// [`StoreReader::open_shared`] is the convenience constructor for that
/// use.
#[derive(Debug, Default)]
pub struct StoreReader {
    num_trials: usize,
    commit_seq: u64,
    metas: Vec<SegmentMeta>,
    codes: [Vec<u32>; 4],
    layer_dict: Dictionary<LayerId>,
    peril_dict: Dictionary<Peril>,
    region_dict: Dictionary<Region>,
    lob_dict: Dictionary<LineOfBusiness>,
    columns: ColumnRegion,
}

impl StoreReader {
    /// Opens and fully validates the committed prefix of a store file.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreReader> {
        let mut file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();

        let mut header_bytes = [0u8; HEADER_LEN as usize];
        let got = read_up_to(&mut file, &mut header_bytes)?;
        let header = Header::decode(&header_bytes[..got])?;
        let num_trials = usize::try_from(header.num_trials)
            .map_err(|_| StoreError::Corrupt("absurd trial count in header".to_string()))?;

        let mut reader = StoreReader {
            num_trials,
            commit_seq: header.commit_seq,
            ..StoreReader::default()
        };
        if header.footer_offset == 0 {
            // Valid, just empty: created but never committed.
            return Ok(reader);
        }

        if header
            .footer_offset
            .checked_add(header.footer_len)
            .is_none_or(|end| end > file_len)
        {
            return Err(StoreError::Truncated {
                what: format!(
                    "footer at {}..{} but the file holds {file_len} bytes",
                    header.footer_offset,
                    header.footer_offset.saturating_add(header.footer_len)
                ),
            });
        }
        file.seek(SeekFrom::Start(header.footer_offset))?;
        let mut footer_bytes = vec![0u8; header.footer_len as usize];
        file.read_exact(&mut footer_bytes)?;
        let pages = pages_per_column(num_trials, header.page_trials);
        let footer = Footer::decode(&footer_bytes, header.commit_seq, pages)?;

        reader.rebuild_dictionaries(&footer)?;
        reader.rebuild_metas(&footer)?;
        reader.load_columns(&mut file, file_len, &header, &footer)?;
        reader.codes = footer.codes;
        Ok(reader)
    }

    fn rebuild_dictionaries(&mut self, footer: &Footer) -> Result<()> {
        // Interning in file order reproduces the writer's code assignment.
        for &raw in &footer.dict_values[0] {
            self.layer_dict.intern(decode_layer(raw)?);
        }
        for &raw in &footer.dict_values[1] {
            self.peril_dict.intern(decode_peril(raw)?);
        }
        for &raw in &footer.dict_values[2] {
            self.region_dict.intern(decode_region(raw)?);
        }
        for &raw in &footer.dict_values[3] {
            self.lob_dict.intern(decode_lob(raw)?);
        }
        Ok(())
    }

    fn rebuild_metas(&mut self, footer: &Footer) -> Result<()> {
        let segments = footer.segments.len();
        self.metas = (0..segments)
            .map(|s| {
                SegmentMeta::new(
                    *self.layer_dict.value(footer.codes[0][s]),
                    *self.peril_dict.value(footer.codes[1][s]),
                    *self.region_dict.value(footer.codes[2][s]),
                    *self.lob_dict.value(footer.codes[3][s]),
                )
            })
            .collect();
        Ok(())
    }

    /// Loads every segment's two columns into the shared region
    /// (segment-major: `[seg0 year | seg0 occ | seg1 year | ...]`) and
    /// verifies every page checksum against the footer watermarks.
    fn load_columns(
        &mut self,
        file: &mut File,
        file_len: u64,
        header: &Header,
        footer: &Footer,
    ) -> Result<()> {
        let trials = self.num_trials;
        // Validate every directory entry against the real file size before
        // allocating anything: header and footer values are file-controlled,
        // and a corrupt (or hostile, CRCs are forgeable) file must produce a
        // typed error, not a capacity panic or a wild allocation.  The
        // bounds below also cap the region size: per entry, two columns of
        // `trials` f64s must fit inside the file.
        let segment_bytes = (trials as u64)
            .checked_mul(16)
            .filter(|&bytes| bytes <= file_len)
            .ok_or_else(|| StoreError::Truncated {
                what: format!(
                    "a {trials}-trial segment needs more bytes than the file's {file_len}"
                ),
            });
        let segment_bytes = if footer.segments.is_empty() {
            0
        } else {
            segment_bytes?
        };
        for (index, entry) in footer.segments.iter().enumerate() {
            if entry.data_offset < HEADER_LEN
                || entry
                    .data_offset
                    .checked_add(segment_bytes)
                    .is_none_or(|end| end > file_len)
            {
                return Err(StoreError::Truncated {
                    what: format!(
                        "segment {index} data at offset {} exceeds the file's {file_len} bytes",
                        entry.data_offset
                    ),
                });
            }
        }
        // Honest segments are disjoint, so their combined bytes fit in the
        // file; this caps the region allocation at the actual file size.
        if (footer.segments.len() as u64)
            .checked_mul(segment_bytes)
            .is_none_or(|total| total > file_len)
        {
            return Err(StoreError::Corrupt(format!(
                "{} segments of {segment_bytes} bytes each exceed the file's {file_len} bytes",
                footer.segments.len()
            )));
        }
        self.columns = ColumnRegion::with_len(footer.segments.len() * 2 * trials);
        for (index, entry) in footer.segments.iter().enumerate() {
            file.seek(SeekFrom::Start(entry.data_offset))?;
            let start = index * 2 * trials * 8;
            let end = start + 2 * trials * 8;
            file.read_exact(&mut self.columns.bytes_mut()[start..end])?;

            let page_bytes = header.page_trials as usize * 8;
            let segment_bytes = &self.columns.bytes()[start..end];
            let (year_bytes, occ_bytes) = segment_bytes.split_at(trials * 8);
            for (column, crcs, what) in [
                (year_bytes, &entry.year_page_crcs, "year-loss"),
                (occ_bytes, &entry.occ_page_crcs, "occurrence-loss"),
            ] {
                for (page_index, page) in column.chunks(page_bytes).enumerate() {
                    if crc32(page) != crcs[page_index] {
                        return Err(StoreError::ChecksumMismatch {
                            what: format!("segment {index} {what} page {page_index}"),
                        });
                    }
                }
            }
        }
        self.columns.make_native_endian();
        Ok(())
    }

    /// Trials every segment holds.
    pub fn num_trials(&self) -> usize {
        self.num_trials
    }

    /// Committed segments visible to this reader.
    pub fn num_segments(&self) -> usize {
        self.metas.len()
    }

    /// True when the store has no committed segments.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The commit sequence this reader observed — later commits to the
    /// same file are invisible until it is reopened.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// The dimension tags of one segment.
    pub fn meta(&self, segment: usize) -> &SegmentMeta {
        &self.metas[segment]
    }

    /// All segment tags in segment order.
    pub fn metas(&self) -> &[SegmentMeta] {
        &self.metas
    }

    /// Resident bytes of the loaded loss columns.
    pub fn memory_bytes(&self) -> usize {
        self.columns.bits.len() * 8
    }

    /// A batched query session over this reader — the open-from-file
    /// serving path.
    pub fn session(&self) -> QuerySession<'_, StoreReader> {
        QuerySession::new(self)
    }

    /// Opens a store and wraps the reader for concurrent sharing — the
    /// form a multi-threaded serving front-end consumes.
    pub fn open_shared(path: impl AsRef<Path>) -> Result<std::sync::Arc<StoreReader>> {
        Ok(std::sync::Arc::new(StoreReader::open(path)?))
    }
}

// The serving front-end shares one reader across worker and connection
// threads; regress this at compile time rather than at a distant use site.
const _: fn() = || {
    fn shareable<T: Send + Sync>() {}
    shareable::<StoreReader>();
};

impl SegmentSource for StoreReader {
    fn num_trials(&self) -> usize {
        self.num_trials
    }

    fn num_segments(&self) -> usize {
        self.metas.len()
    }

    fn year_losses(&self, segment: usize) -> &[f64] {
        let start = segment * 2 * self.num_trials;
        &self.columns.losses()[start..start + self.num_trials]
    }

    fn max_occ_losses(&self, segment: usize) -> &[f64] {
        let start = segment * 2 * self.num_trials + self.num_trials;
        &self.columns.losses()[start..start + self.num_trials]
    }

    fn layer_codes(&self) -> &[u32] {
        &self.codes[0]
    }

    fn peril_codes(&self) -> &[u32] {
        &self.codes[1]
    }

    fn region_codes(&self) -> &[u32] {
        &self.codes[2]
    }

    fn lob_codes(&self) -> &[u32] {
        &self.codes[3]
    }

    fn layer_dict(&self) -> &Dictionary<LayerId> {
        &self.layer_dict
    }

    fn peril_dict(&self) -> &Dictionary<Peril> {
        &self.peril_dict
    }

    fn region_dict(&self) -> &Dictionary<Region> {
        &self.region_dict
    }

    fn lob_dict(&self) -> &Dictionary<LineOfBusiness> {
        &self.lob_dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{StoreOptions, StoreWriter};
    use catrisk_riskquery::prelude::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-reader-{}-{}.clm",
            std::process::id(),
            name
        ));
        path
    }

    fn meta(layer: u32, peril: Peril, region: Region) -> SegmentMeta {
        SegmentMeta::new(LayerId(layer), peril, region, LineOfBusiness::Property)
    }

    #[test]
    fn round_trips_columns_and_dimensions() {
        let path = temp_path("roundtrip");
        let mut writer =
            StoreWriter::create_with(&path, 3, StoreOptions { page_trials: 2 }).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 0.0, 5.5],
                &[0.5, 0.0, 5.5],
            )
            .unwrap();
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Japan),
                &[2.0, 4.0, 0.0],
                &[2.0, 3.0, 0.0],
            )
            .unwrap();
        writer.finish().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_trials(), 3);
        assert_eq!(reader.num_segments(), 2);
        assert_eq!(SegmentSource::year_losses(&reader, 0), &[1.0, 0.0, 5.5]);
        assert_eq!(SegmentSource::max_occ_losses(&reader, 0), &[0.5, 0.0, 5.5]);
        assert_eq!(SegmentSource::year_losses(&reader, 1), &[2.0, 4.0, 0.0]);
        assert_eq!(reader.meta(1).peril, Peril::Flood);
        assert_eq!(reader.meta(1).region, Region::Japan);
        assert_eq!(reader.metas().len(), 2);
        assert_eq!(reader.peril_codes(), &[0, 1]);
        assert_eq!(*reader.peril_dict().value(1), Peril::Flood);
        assert!(reader.memory_bytes() >= 2 * 2 * 3 * 8);
        assert!(!reader.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_uncommitted_stores_read_as_empty() {
        let path = temp_path("empty");
        let mut writer = StoreWriter::create(&path, 8).unwrap();
        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 0);
        assert!(reader.is_empty());
        assert_eq!(reader.num_trials(), 8);

        // Appended but uncommitted segments stay invisible.
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[0.0; 8],
                &[0.0; 8],
            )
            .unwrap();
        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_sees_committed_prefix_while_writer_appends() {
        let path = temp_path("prefix");
        let mut writer = StoreWriter::create(&path, 2).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 2.0],
                &[1.0, 2.0],
            )
            .unwrap();
        writer.commit().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 1);
        let seq = reader.commit_seq();

        // The writer keeps going: appends + a second commit.
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Japan),
                &[3.0, 4.0],
                &[3.0, 4.0],
            )
            .unwrap();
        writer.commit().unwrap();

        // The old reader's data is untouched (committed bytes are never
        // overwritten); a fresh open sees both segments.
        assert_eq!(SegmentSource::year_losses(&reader, 0), &[1.0, 2.0]);
        let fresh = StoreReader::open(&path).unwrap();
        assert_eq!(fresh.num_segments(), 2);
        assert_eq!(fresh.commit_seq(), seq + 1);
        assert_eq!(SegmentSource::year_losses(&fresh, 1), &[3.0, 4.0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_reader_scans_concurrently() {
        let path = temp_path("shared");
        let mut writer = StoreWriter::create(&path, 16).unwrap();
        for s in 0..6u32 {
            let losses: Vec<f64> = (0..16).map(|t| (s * 16 + t) as f64).collect();
            writer
                .append_segment(
                    meta(s, Peril::ALL[s as usize % Peril::ALL.len()], Region::Europe),
                    &losses,
                    &losses,
                )
                .unwrap();
        }
        writer.finish().unwrap();

        let reader = StoreReader::open_shared(&path).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();
        let expected = execute(&*reader, &query).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = std::sync::Arc::clone(&reader);
                let query = query.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    assert_eq!(execute(&*reader, &query).unwrap(), expected);
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn queries_run_against_the_reader() {
        let path = temp_path("query");
        let mut writer = StoreWriter::create(&path, 4).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 0.0, 4.0, 2.0],
                &[1.0, 0.0, 3.0, 2.0],
            )
            .unwrap();
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Europe),
                &[0.0, 5.0, 1.0, 3.0],
                &[0.0, 4.0, 1.0, 3.0],
            )
            .unwrap();
        writer.finish().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let result = execute(&reader, &query).unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(7.0 / 4.0));
        assert_eq!(result.rows[1].values[0], AggValue::Scalar(9.0 / 4.0));

        // And through the batched session facade.
        let batched = reader.session().run(std::slice::from_ref(&query)).unwrap();
        assert_eq!(batched[0], result);
        let _ = std::fs::remove_file(&path);
    }
}
