//! Serving-layer equivalence and backpressure properties.
//!
//! The contract of `catrisk-riskserve` is that micro-batching is *only* a
//! throughput optimisation: M queries submitted concurrently from N
//! threads return **bit-identical** results to running them sequentially
//! through a `QuerySession`, for any batch window, batch-size cap or
//! worker count; and overload produces typed `Overloaded` rejections —
//! never a panic, never an accepted request whose reply is dropped.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_riskquery::prelude::*;
use catrisk_riskserve::test_store::random_store;
use catrisk_riskserve::{ServeError, Server, ServerConfig, Ticket};
use catrisk_simkit::rng::RngFactory;

/// Draws `count` random valid queries against a `trials`-trial store:
/// random aggregate sets (scalar metrics, quantile metrics, EP curves),
/// random group-bys, random dimension filters, trial windows and loss
/// ranges — with duplicates likely, so cross-submitter dedup is
/// exercised.
fn random_queries(trials: usize, count: usize, seed: u64) -> Vec<Query> {
    let factory = RngFactory::new(seed).derive("serve-queries");
    let mut rng = factory.stream(0);
    let mut pick = |n: usize| (rng.uniform() * n as f64) as usize % n;
    (0..count)
        .map(|_| {
            let mut builder = QueryBuilder::new();
            for _ in 0..1 + pick(2) {
                builder = builder.aggregate(match pick(8) {
                    0 => Aggregate::Mean,
                    1 => Aggregate::StdDev,
                    2 => Aggregate::MaxLoss,
                    3 => Aggregate::AttachProb,
                    4 => Aggregate::Var {
                        level: [0.9, 0.95, 0.99][pick(3)],
                    },
                    5 => Aggregate::Tvar {
                        level: [0.9, 0.95, 0.99][pick(3)],
                    },
                    6 => Aggregate::Pml {
                        return_period: [10.0, 100.0, 250.0][pick(3)],
                        basis: if pick(2) == 0 { Basis::Aep } else { Basis::Oep },
                    },
                    _ => Aggregate::EpCurve {
                        basis: if pick(2) == 0 { Basis::Aep } else { Basis::Oep },
                        points: 2 + pick(10),
                    },
                });
            }
            for dim in [
                Dimension::Layer,
                Dimension::Peril,
                Dimension::Region,
                Dimension::Lob,
            ] {
                if pick(4) == 0 {
                    builder = builder.group_by(dim);
                }
            }
            if pick(3) == 0 {
                builder = builder
                    .with_perils((0..1 + pick(3)).map(|i| Peril::ALL[(i * 2) % Peril::ALL.len()]));
            }
            if pick(4) == 0 {
                builder = builder.in_regions([Region::ALL[pick(Region::ALL.len())]]);
            }
            if pick(4) == 0 {
                let start = pick(trials);
                let len = 1 + pick(trials - start);
                builder = builder.trials(start..start + len);
            }
            if pick(3) == 0 {
                let min = pick(200_000) as f64;
                builder = if pick(2) == 0 {
                    builder.loss_at_least(min)
                } else {
                    builder.loss_in(min, min + pick(1_000_000) as f64)
                };
            }
            builder.build().expect("generated query is valid")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// M queries from N threads through the server are bit-identical to a
    /// sequential session run, for any batch window / batch cap / worker
    /// count.
    #[test]
    fn concurrent_serving_matches_sequential_session(
        trials in 16..160usize,
        segments in 2..16usize,
        threads in 1..6usize,
        per_thread in 1..6usize,
        window_us in 0..1_500u64,
        max_batch in 1..40usize,
        workers in 1..4usize,
        seed in 0..1_000u64,
    ) {
        let store = Arc::new(random_store(trials, segments, seed));
        let queries = random_queries(trials, threads * per_thread, seed ^ 0xD5);

        // The ground truth: one thread, one session, declaration order.
        let expected = QuerySession::new(&*store).run(&queries).unwrap();

        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                max_batch,
                batch_window: Duration::from_micros(window_us),
                queue_depth: usize::MAX,
                workers,
                ..ServerConfig::default()
            },
        );
        let results: Vec<Vec<QueryResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let slice = &queries[t * per_thread..(t + 1) * per_thread];
                    let server = &server;
                    scope.spawn(move || {
                        // Submit everything first (so requests from many
                        // threads coexist in the queue), then wait.
                        let tickets: Vec<Ticket> = slice
                            .iter()
                            .map(|q| server.submit(q.clone()).expect("admitted"))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|ticket| ticket.wait().expect("served").result)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, thread_results) in results.into_iter().enumerate() {
            for (k, served) in thread_results.into_iter().enumerate() {
                prop_assert_eq!(
                    &served,
                    &expected[t * per_thread + k],
                    "thread {} query {} diverged from the sequential session",
                    t,
                    k
                );
            }
        }
        let stats = server.stats();
        prop_assert_eq!(stats.completed, (threads * per_thread) as u64);
        prop_assert_eq!(stats.rejected, 0);
    }
}

/// Overload produces typed `Overloaded` rejections; every *accepted*
/// request is still answered.  A long batch window with a single worker
/// pins requests in the queue, so the depth bound is actually hit.
#[test]
fn backpressure_rejects_typed_and_drops_nothing() {
    let store = Arc::new(random_store(64, 6, 77));
    let depth = 4;
    let server = Server::new(
        Arc::clone(&store),
        ServerConfig {
            max_batch: 64,
            batch_window: Duration::from_millis(300),
            queue_depth: depth,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let query = QueryBuilder::new()
        .group_by(Dimension::Region)
        .aggregate(Aggregate::Mean)
        .build()
        .unwrap();

    let mut accepted: Vec<Ticket> = Vec::new();
    let mut rejections = 0usize;
    // Twice the depth: the tail must see typed Overloaded errors, because
    // the single worker is holding its 300ms window open.
    for _ in 0..2 * depth {
        match server.submit(query.clone()) {
            Ok(ticket) => accepted.push(ticket),
            Err(ServeError::Overloaded { depth: observed }) => {
                assert!(observed >= depth, "rejected below the configured depth");
                rejections += 1;
            }
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    assert!(rejections > 0, "overload never triggered");
    assert!(!accepted.is_empty());
    let expected = catrisk_riskquery::execute(&*store, &query).unwrap();
    for ticket in accepted {
        // No dropped replies: every accepted ticket resolves, correctly.
        let reply = ticket.wait().expect("accepted requests are answered");
        assert_eq!(reply.result, expected);
    }
    assert_eq!(server.stats().rejected, rejections as u64);
    server.shutdown();
}

/// Shutdown drains: requests accepted before shutdown are all answered,
/// requests after are refused with the typed `ShuttingDown` error.
#[test]
fn shutdown_answers_accepted_requests_then_refuses() {
    let store = Arc::new(random_store(64, 6, 99));
    let server = Server::new(
        Arc::clone(&store),
        ServerConfig {
            // A window far longer than the test: only shutdown's drain can
            // release these requests.
            batch_window: Duration::from_secs(30),
            max_batch: 1_000,
            queue_depth: 1_000,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let query = QueryBuilder::new()
        .aggregate(Aggregate::Tvar { level: 0.9 })
        .build()
        .unwrap();
    let tickets: Vec<Ticket> = (0..8)
        .map(|_| server.submit(query.clone()).expect("admitted"))
        .collect();
    server.shutdown();
    let expected = catrisk_riskquery::execute(&*store, &query).unwrap();
    for ticket in tickets {
        assert_eq!(ticket.wait().expect("drained").result, expected);
    }
    assert!(matches!(
        server.submit(query),
        Err(ServeError::ShuttingDown)
    ));
}

/// Many threads hammering a tiny queue: the sum of successes and typed
/// rejections accounts for every submit — nothing panics, nothing is
/// silently lost.
#[test]
fn hammering_a_tiny_queue_loses_nothing() {
    let store = Arc::new(random_store(48, 8, 123));
    let server = Server::new(
        Arc::clone(&store),
        ServerConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(200),
            queue_depth: 2,
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let queries = random_queries(48, 8, 5);
    let per_thread = 40usize;
    let threads = 8usize;
    let (ok, overloaded) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let server = &server;
                let queries = &queries;
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut overloaded = 0u64;
                    for k in 0..per_thread {
                        match server.submit(queries[(t + k) % queries.len()].clone()) {
                            Ok(ticket) => {
                                ticket.wait().expect("accepted => answered");
                                ok += 1;
                            }
                            Err(ServeError::Overloaded { .. }) => overloaded += 1,
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    (ok, overloaded)
                })
            })
            .collect();
        handles.into_iter().fold((0u64, 0u64), |acc, h| {
            let (ok, over) = h.join().unwrap();
            (acc.0 + ok, acc.1 + over)
        })
    });
    assert_eq!(ok + overloaded, (threads * per_thread) as u64);
    assert!(ok > 0, "some requests must get through");
    let stats = server.stats();
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.rejected, overloaded);
}
