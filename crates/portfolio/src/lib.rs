//! # catrisk-portfolio
//!
//! Portfolio management, contract pricing and enterprise risk roll-up —
//! stages 2 and 3 of the analytical pipeline described in the paper's
//! introduction.
//!
//! The aggregate risk engine answers "what does this layer lose in each
//! simulated year"; this crate turns that into the business quantities a
//! reinsurer actually acts on:
//!
//! * [`contract`] — reinsurance contracts: a layer over a set of exposure
//!   ELTs plus premium and treaty metadata;
//! * [`portfolio`] — a book of contracts analysed against a common Year
//!   Event Table, producing per-contract and portfolio-level Year Loss
//!   Tables in one engine run;
//! * [`pricing`] — technical pricing from a contract's YLT: expected loss,
//!   volatility and tail loadings, rate on line;
//! * [`marginal`] — marginal/diversification analysis: how much portfolio
//!   tail risk a candidate contract adds, and the capital-based price that
//!   implies;
//! * [`realtime`] — the paper's real-time pricing scenario (§IV): quote a
//!   contract at 50 K trials fast enough for an underwriter on the phone;
//! * [`enterprise`] — combine business-unit portfolios sharing the same YET
//!   into an enterprise view with capital allocation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contract;
pub mod enterprise;
pub mod marginal;
pub mod portfolio;
pub mod pricing;
pub mod realtime;

pub use contract::{Contract, ContractId};
pub use enterprise::{BusinessUnit, EnterpriseView};
pub use marginal::MarginalAnalysis;
pub use portfolio::{Portfolio, PortfolioAnalysis};
pub use pricing::{PricingConfig, Quote};
pub use realtime::RealTimeQuoter;

/// Errors produced by portfolio assembly and pricing.
#[derive(Debug, Clone, PartialEq)]
pub enum PortfolioError {
    /// The portfolio or one of its contracts is inconsistent.
    Invalid(String),
}

impl std::fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortfolioError::Invalid(msg) => write!(f, "invalid portfolio: {msg}"),
        }
    }
}

impl std::error::Error for PortfolioError {}

/// Result alias for portfolio operations.
pub type Result<T> = std::result::Result<T, PortfolioError>;
