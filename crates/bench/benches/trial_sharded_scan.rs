//! Trial-sharded catalog benchmark: the stitched scan over 1/2/4 trial
//! windows, and the per-shard partial-aggregate cache cold vs warm.
//!
//! The same store is cut into 1, 2 and 4 trial-window shard files (the
//! paper's partition axis), so every catalog stitches an identical axis
//! and the scan cost differences isolate the trial-sharding layer itself
//! (window location, cut-aligned blocks, adjacent-window combine).  The
//! cache benchmarks measure the tentpole claim: after a *single-shard*
//! commit, a served query rescans one window and re-combines the other
//! windows' cached partials, instead of rescanning the whole axis the
//! way the whole-result cache alone would.  The `trial_equivalence`
//! target asserts bit-identity across all window counts and that the
//! partial cache actually hit.  `CATRISK_BENCH_QUICK=1` shrinks the
//! workload for smoke runs.

use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::Region;
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_riskserve::{Server, ServerConfig, ShardAxis, SourceProvider, StoreCatalog};
use catrisk_riskstore::{StoreOptions, StoreWriter};
use catrisk_simkit::rng::RngFactory;

fn quick() -> bool {
    std::env::var("CATRISK_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

fn trials() -> usize {
    if quick() {
        4_000
    } else {
        20_000
    }
}

/// A CI-sized production-shaped store (same construction as the
/// segment-axis sharding bench).
fn build_store(trials: usize, books: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("trial-sharded-bench");
    let mut store = ResultStore::new(trials);
    let mut segment = 0u64;
    for book in 0..books {
        let region = Region::ALL[book % Region::ALL.len()];
        let lob = LineOfBusiness::ALL[book % LineOfBusiness::ALL.len()];
        for peril in region.active_perils() {
            let mut rng = factory.stream(segment);
            segment += 1;
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(LayerId(book as u32), *peril, region, lob);
            store
                .ingest(&YearLossTable::new(LayerId(book as u32), outcomes), meta)
                .expect("ingest");
        }
    }
    store
}

/// Cuts the base store's trial axis into `windows` equal shard files
/// (each holding every segment over its window, stamped with its
/// offset) and opens them as a trial-axis catalog.
fn write_trial_catalog(
    base: &ResultStore,
    windows: usize,
    tag: &str,
) -> (Vec<PathBuf>, StoreCatalog) {
    let trials = base.num_trials();
    let per_window = trials / windows;
    let extra = trials % windows;
    let mut paths = Vec::new();
    let mut start = 0usize;
    for window in 0..windows {
        let len = per_window + usize::from(window < extra);
        let end = start + len;
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-trial-bench-{}-{tag}-{windows}-{window}.clm",
            std::process::id()
        ));
        let mut writer = StoreWriter::create_with(
            &path,
            len,
            StoreOptions {
                trial_offset: start as u64,
                ..StoreOptions::default()
            },
        )
        .expect("create window shard");
        for segment in 0..base.num_segments() {
            writer
                .append_segment(
                    *base.meta(segment),
                    &base.year_losses(segment)[start..end],
                    &base.max_occ_losses(segment)[start..end],
                )
                .expect("append");
        }
        writer.finish().expect("commit window shard");
        paths.push(path);
        start = end;
    }
    let catalog = StoreCatalog::open(&paths).expect("open trial catalog");
    if windows > 1 {
        assert_eq!(catalog.axis(), ShardAxis::Trial);
    }
    (paths, catalog)
}

fn remove(paths: &[PathBuf]) {
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

/// The mixed batch answered per iteration (same mix as the segment-axis
/// bench, so the two reports are comparable).
fn query_mix() -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Var { level: 0.99 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 10,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_at_least(1.0e5)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .unwrap(),
    ]
}

/// One fused batch over the catalog's current snapshot, bypassing every
/// cache — the raw stitched scan cost.
fn fused_batch(catalog: &StoreCatalog, queries: &[Query]) -> Vec<QueryResult> {
    catalog.with_source(|snapshot| {
        QuerySession::new(snapshot.source)
            .run(queries)
            .expect("batch")
    })
}

/// Submits the mix and waits for every reply.
fn drive(server: &Server<StoreCatalog>, queries: &[Query]) {
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("admitted"))
        .collect();
    for ticket in tickets {
        criterion::black_box(ticket.wait().expect("served"));
    }
}

fn trial_sharded_scan(c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_mix();
    let mut group = c.benchmark_group("trial_sharded_fused_batch");
    group.sample_size(10);
    for windows in [1usize, 2, 4] {
        let (paths, catalog) = write_trial_catalog(&base, windows, "scan");
        group.bench_function(format!("{windows}_windows"), |b| {
            b.iter(|| criterion::black_box(fused_batch(&catalog, &queries)))
        });
        remove(&paths);
    }
    group.finish();
}

fn partial_cache_cold_vs_warm(c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_mix();
    let trials = base.num_trials();
    let mut group = c.benchmark_group("trial_partial_cache");
    group.sample_size(10);

    let (paths, catalog) = write_trial_catalog(&base, 4, "cache");
    let server = Server::new(
        catalog,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );

    // Cold: every iteration's queries carry a never-seen trial window,
    // so each batch misses both caches and rescans all 4 windows.
    let mut window = 0usize;
    group.bench_function("cold_all_windows_rescan", |b| {
        b.iter(|| {
            window += 1;
            let end = trials - (window % (trials / 2));
            let unique: Vec<Query> = queries
                .iter()
                .map(|q| {
                    let mut q = q.clone();
                    q.filter.trials = Some((0, end));
                    q
                })
                .collect();
            let tickets: Vec<_> = unique
                .into_iter()
                .map(|q| server.submit(q).expect("admitted"))
                .collect();
            for ticket in tickets {
                criterion::black_box(ticket.wait().expect("served"));
            }
        })
    });

    // Warm partials after a single-shard refresh: each iteration commits
    // one fresh segment to window 0 only (its generation moves, the
    // common prefix stays — the layer is missing from the other
    // windows), so the repeated mix misses the result cache but rescans
    // only window 0's quarter of the axis, re-combining the other three
    // windows' cached partials.
    drive(&server, &queries); // populate the partial cache
    let window0_trials = trials.div_ceil(4);
    let mut layer = 800_000u32;
    group.bench_function("single_shard_refresh_rescans_one_window", |b| {
        b.iter(|| {
            layer += 1;
            let mut writer = StoreWriter::open_append(&paths[0]).expect("append window 0");
            let losses = vec![1.0; window0_trials];
            writer
                .append_segment(
                    SegmentMeta::new(
                        LayerId(layer),
                        catrisk_eventgen::peril::Peril::WinterStorm,
                        Region::Europe,
                        LineOfBusiness::Property,
                    ),
                    &losses,
                    &losses,
                )
                .expect("append");
            writer.commit().expect("commit");
            drop(writer);
            drive(&server, &queries);
        })
    });

    // Fully warm: the same mix repeats with no commit in between, so
    // every reply comes from the whole-result cache.
    group.bench_function("warm_result_cache_hit", |b| {
        b.iter(|| drive(&server, &queries))
    });
    group.finish();

    let stats = server.stats();
    assert!(
        stats.partial_hits > 0,
        "single-shard refreshes must re-serve cached partials: {stats:?}"
    );
    assert!(
        stats.cache_hits > 0,
        "the warm path must hit the result cache: {stats:?}"
    );
    server.shutdown();
    remove(&paths);
}

/// Prints the acceptance numbers and pins the equivalence: every window
/// count answers the mix bit-identically to the in-memory store, and a
/// single-shard refresh re-serves the untouched windows' partials.
fn trial_equivalence(_c: &mut Criterion) {
    let base = Arc::new(build_store(trials(), 8, 2012));
    let queries = query_mix();
    let expected = QuerySession::new(&*base).run(&queries).expect("reference");

    for windows in [1usize, 2, 4] {
        let (paths, catalog) = write_trial_catalog(&base, windows, "equiv");
        let results = fused_batch(&catalog, &queries);
        assert_eq!(
            results, expected,
            "{windows}-window trial catalog diverged from the in-memory store"
        );
        assert_eq!(catalog.num_shards(), windows);
        remove(&paths);
    }

    let (paths, catalog) = write_trial_catalog(&base, 4, "equiv-cache");
    let window0_trials = catalog.shard_windows()[0].1;
    let server = Server::new(catalog, ServerConfig::default());
    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(
            &server.query(query.clone()).expect("served").result,
            expected
        );
    }
    // One window commits a layer its peers don't have: results must be
    // unchanged (prefix clamp) and only that window rescans.
    let mut writer = StoreWriter::open_append(&paths[0]).expect("append");
    let losses = vec![1.0; window0_trials];
    writer
        .append_segment(
            SegmentMeta::new(
                LayerId(900_000),
                catrisk_eventgen::peril::Peril::WinterStorm,
                Region::Europe,
                LineOfBusiness::Property,
            ),
            &losses,
            &losses,
        )
        .expect("append");
    writer.commit().expect("commit");
    drop(writer);
    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(
            &server.query(query.clone()).expect("served").result,
            expected,
            "a layer missing from three of four windows must stay invisible"
        );
    }
    let stats = server.stats();
    assert_eq!(
        stats.partial_hits,
        3 * queries.len() as u64,
        "exactly the three untouched windows re-serve partials: {stats:?}"
    );
    println!(
        "trial_equivalence: {} queries x 1/2/4 windows bit-identical; partial cache \
         hits {} / rescans {} (hit rate {:.0}%) after a single-window commit",
        queries.len(),
        stats.partial_hits,
        stats.partial_misses,
        stats.partial_hit_rate() * 100.0
    );
    server.shutdown();
    remove(&paths);
}

criterion_group!(
    benches,
    trial_sharded_scan,
    partial_cache_cold_vs_warm,
    trial_equivalence
);
criterion_main!(benches);
