//! Replica fleet: N `serve` processes over one catalog directory.
//!
//! A [`Fleet`] spawns replica processes, registers the address each one
//! announces on its first stdout line, and watches their health.  Every
//! replica serves the *same* catalog directory with auto-discovery on,
//! so the fleet is N identical read-only views of one store set — which
//! is what makes client-side failover
//! ([`RoutedClient`](catrisk_riskclient::RoutedClient)) sound: any
//! replica can answer any query, bit-identically.
//!
//! Health is judged by two probes, both over a fresh connection so a
//! wedged pooled socket cannot mask a dead process:
//!
//! * **ping** — the protocol-level liveness check; answered before the
//!   queue, so it proves the process accepts connections and parses
//!   requests even when the queue is saturated.
//! * **stats staleness** — a `stats` round trip must parse within the
//!   configured window.  A replica that pings but cannot produce a
//!   stats snapshot is wedged past its accept loop and counts as
//!   unhealthy once the window lapses.
//!
//! The fleet restarts replicas whose *process* has exited, re-pinning
//! the replacement to the dead replica's address so client address
//! lists stay valid across the restart.  In-flight queries lost with
//! the dead process are the client's job to resubmit (the routed
//! client does, counting each resubmission as a failover).

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use catrisk_riskclient::{Client, ClientConfig};

/// How a [`Fleet`] spawns and probes its replicas.
#[derive(Debug, Clone, Copy)]
pub struct FleetOptions {
    /// Replica processes to run.
    pub replicas: usize,
    /// Per-probe connect/read budget.
    pub client: ClientConfig,
    /// How long a freshly spawned replica may take to announce its
    /// address on stdout before the spawn is declared failed.
    pub spawn_timeout: Duration,
    /// A replica whose last successful stats round trip is older than
    /// this is reported stale by [`Fleet::probe`].
    pub stats_staleness: Duration,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            replicas: 2,
            client: ClientConfig::default(),
            spawn_timeout: Duration::from_secs(10),
            stats_staleness: Duration::from_secs(30),
        }
    }
}

/// One replica's probe verdict.
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    /// Index into the fleet's replica list (stable across restarts).
    pub index: usize,
    /// The address the replica announced.
    pub addr: String,
    /// The replica process has not exited.
    pub process_alive: bool,
    /// A fresh-connection `ping` round trip succeeded.
    pub ping_ok: bool,
    /// The last successful `stats` round trip is within the staleness
    /// window.
    pub stats_fresh: bool,
}

impl ReplicaHealth {
    /// Healthy = running, answering pings, and producing fresh stats.
    pub fn healthy(&self) -> bool {
        self.process_alive && self.ping_ok && self.stats_fresh
    }
}

struct Replica {
    addr: String,
    child: Child,
    /// Instant of the last successful stats round trip (spawn counts:
    /// announcing an address proves the process came up).
    last_stats: Instant,
    /// The replica exited cleanly (a drained protocol `shutdown`): it
    /// is done, not dead, and must not be restarted.
    retired: bool,
}

/// Builds the command that runs one replica.  `pin` is `Some(addr)`
/// when the fleet is restarting a dead replica and the replacement
/// must bind the same address; `None` for the initial spawn, where the
/// replica picks its own port and announces it.
pub type ReplicaCommand = Box<dyn FnMut(usize, Option<&str>) -> Command + Send>;

/// A set of replica `serve` processes over one catalog directory.
pub struct Fleet {
    replicas: Vec<Replica>,
    command: ReplicaCommand,
    options: FleetOptions,
    restarts: u64,
}

impl Fleet {
    /// Spawns `options.replicas` replica processes and waits for each
    /// to announce its bound address (first stdout line).  Fails — and
    /// reaps everything already spawned — if any replica fails to come
    /// up within `spawn_timeout`.
    pub fn spawn(mut command: ReplicaCommand, options: FleetOptions) -> Result<Fleet, FleetError> {
        if options.replicas == 0 {
            return Err(FleetError::new("a fleet needs at least one replica"));
        }
        let mut replicas: Vec<Replica> = Vec::with_capacity(options.replicas);
        for index in 0..options.replicas {
            match spawn_replica(&mut command, index, None, options.spawn_timeout) {
                Ok(replica) => replicas.push(replica),
                Err(err) => {
                    for mut replica in replicas {
                        let _ = replica.child.kill();
                        let _ = replica.child.wait();
                    }
                    return Err(err);
                }
            }
        }
        Ok(Fleet {
            replicas,
            command,
            options,
            restarts: 0,
        })
    }

    /// The announced replica addresses, in spawn order.  Stable across
    /// restarts: a replacement replica re-binds its predecessor's
    /// address.
    pub fn addrs(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.addr.clone()).collect()
    }

    /// The replica process ids, in spawn order (for external fault
    /// injection — the CI smoke kills a replica by pid).
    pub fn pids(&self) -> Vec<u32> {
        self.replicas.iter().map(|r| r.child.id()).collect()
    }

    /// Replicas restarted since spawn.
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// Every replica has exited cleanly (as observed by
    /// [`Fleet::restart_dead`]): the fleet is done and the monitor can
    /// stop.
    pub fn drained(&self) -> bool {
        self.replicas.iter().all(|r| r.retired)
    }

    /// Probes every replica (fresh connection each, so a poisoned
    /// pooled socket cannot fake health) and reports per-replica
    /// verdicts in spawn order.
    pub fn probe(&mut self) -> Vec<ReplicaHealth> {
        let config = self.options.client;
        let staleness = self.options.stats_staleness;
        self.replicas
            .iter_mut()
            .enumerate()
            .map(|(index, replica)| {
                let process_alive =
                    !replica.retired && matches!(replica.child.try_wait(), Ok(None));
                let mut ping_ok = false;
                let mut stats_ok = false;
                if process_alive {
                    if let Ok(mut client) = Client::connect(&replica.addr, config) {
                        ping_ok = matches!(client.round_trip("ping"), Ok(reply) if reply.ok);
                        stats_ok = match client.round_trip("stats") {
                            Ok(reply) => reply.ok && reply.stats.is_some(),
                            Err(_) => false,
                        };
                    }
                }
                if stats_ok {
                    replica.last_stats = Instant::now();
                }
                ReplicaHealth {
                    index,
                    addr: replica.addr.clone(),
                    process_alive,
                    ping_ok,
                    stats_fresh: replica.last_stats.elapsed() <= staleness,
                }
            })
            .collect()
    }

    /// Restarts every replica whose process *died* — exited unclean or
    /// was killed — re-pinning the replacement to the dead replica's
    /// address.  Returns the indices restarted.  A replica that exited
    /// cleanly is retired, not restarted: a drained protocol `shutdown`
    /// is the fleet winding down, and resurrecting it would make the
    /// fleet unstoppable.  A replica that is merely unhealthy (wedged
    /// but running) is also left alone — killing a live process is the
    /// operator's call, via [`Fleet::kill`].
    pub fn restart_dead(&mut self) -> Result<Vec<usize>, FleetError> {
        let mut restarted = Vec::new();
        for index in 0..self.replicas.len() {
            if self.replicas[index].retired {
                continue;
            }
            match self.replicas[index].child.try_wait() {
                Ok(None) => continue,
                Ok(Some(status)) if status.success() => {
                    self.replicas[index].retired = true;
                    continue;
                }
                _ => {}
            }
            let addr = self.replicas[index].addr.clone();
            let replacement = spawn_replica(
                &mut self.command,
                index,
                Some(&addr),
                self.options.spawn_timeout,
            )?;
            self.replicas[index] = replacement;
            self.restarts += 1;
            restarted.push(index);
        }
        Ok(restarted)
    }

    /// Kills one replica process outright (no drain) — the fault
    /// injection the failover tests are built on.
    pub fn kill(&mut self, index: usize) -> Result<(), FleetError> {
        let replica = self
            .replicas
            .get_mut(index)
            .ok_or_else(|| FleetError::new(format!("no replica {index}")))?;
        replica
            .child
            .kill()
            .map_err(|err| FleetError::new(format!("kill replica {index}: {err}")))?;
        let _ = replica.child.wait();
        Ok(())
    }

    /// Gracefully stops the fleet: sends each replica the protocol
    /// `shutdown`, waits for the processes to drain and exit, and
    /// force-kills any that outlive `grace`.  Returns how many replicas
    /// acknowledged the shutdown.
    pub fn shutdown(mut self, grace: Duration) -> usize {
        let mut config = self.options.client;
        config.connect_timeout = config.connect_timeout.min(Duration::from_secs(1));
        let mut acked = 0;
        for replica in &self.replicas {
            if let Ok(mut client) = Client::connect(&replica.addr, config) {
                if matches!(client.round_trip("shutdown"), Ok(reply) if reply.ok) {
                    acked += 1;
                }
            }
        }
        let deadline = Instant::now() + grace;
        for replica in &mut self.replicas {
            loop {
                match replica.child.try_wait() {
                    Ok(Some(_)) => break,
                    _ if Instant::now() >= deadline => {
                        let _ = replica.child.kill();
                        let _ = replica.child.wait();
                        break;
                    }
                    _ => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
        acked
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for replica in &mut self.replicas {
            let _ = replica.child.kill();
            let _ = replica.child.wait();
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("addrs", &self.addrs())
            .field("restarts", &self.restarts)
            .finish_non_exhaustive()
    }
}

/// Fleet management failure: a replica that would not spawn, announce,
/// or die on request.
#[derive(Debug)]
pub struct FleetError(String);

impl FleetError {
    fn new(message: impl Into<String>) -> Self {
        FleetError(message.into())
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FleetError {}

fn spawn_replica(
    command: &mut ReplicaCommand,
    index: usize,
    pin: Option<&str>,
    timeout: Duration,
) -> Result<Replica, FleetError> {
    let mut child = command(index, pin)
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .map_err(|err| FleetError::new(format!("spawn replica {index}: {err}")))?;
    let stdout = child.stdout.take().expect("stdout was piped at spawn");
    match read_announcement(stdout, timeout) {
        Some(addr) if !addr.is_empty() => {
            if let Some(pinned) = pin {
                if addr != pinned {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(FleetError::new(format!(
                        "replica {index} rebound to {addr}, expected pinned {pinned}"
                    )));
                }
            }
            Ok(Replica {
                addr,
                child,
                last_stats: Instant::now(),
                retired: false,
            })
        }
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            Err(FleetError::new(format!(
                "replica {index} did not announce an address within {timeout:?}"
            )))
        }
    }
}

/// Reads the replica's first stdout line (its announced address) with
/// a timeout, then detaches a drain thread so the child never blocks
/// on a full stdout pipe.
fn read_announcement(stdout: impl Read + Send + 'static, timeout: Duration) -> Option<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() {
            let _ = tx.send(line.trim().to_string());
        }
        // Keep draining so the replica's later stdout writes (reports,
        // shutdown notices) cannot fill the pipe and wedge it.
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    rx.recv_timeout(timeout).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::tcp::TcpFrontEnd;
    use crate::test_store::random_store;
    use std::sync::Arc;

    /// A fleet whose "replica processes" are shell stubs announcing the
    /// address of an in-process front end — exercises spawn, announce,
    /// probe, kill, and restart mechanics without needing the real
    /// binary (the CLI integration tests cover that end).
    fn stub_fleet(addrs: &[String], replicas: usize) -> Fleet {
        let addrs = addrs.to_vec();
        let command: ReplicaCommand = Box::new(move |index, pin| {
            let addr = pin
                .map(str::to_string)
                .unwrap_or_else(|| addrs[index].clone());
            let mut cmd = Command::new("sh");
            cmd.arg("-c").arg(format!("echo {addr}; exec sleep 600"));
            cmd
        });
        Fleet::spawn(
            command,
            FleetOptions {
                replicas,
                client: ClientConfig {
                    connect_timeout: Duration::from_millis(500),
                    read_timeout: Some(Duration::from_secs(5)),
                },
                spawn_timeout: Duration::from_secs(5),
                stats_staleness: Duration::from_secs(30),
            },
        )
        .unwrap()
    }

    #[test]
    fn fleet_registers_announced_addrs_and_probes_health() {
        let store = Arc::new(random_store(64, 6, 7));
        let fronts: Vec<_> = (0..2)
            .map(|_| {
                TcpFrontEnd::bind(Server::with_defaults(Arc::clone(&store)), "127.0.0.1:0").unwrap()
            })
            .collect();
        let addrs: Vec<String> = fronts.iter().map(|f| f.local_addr().to_string()).collect();

        let mut fleet = stub_fleet(&addrs, 2);
        assert_eq!(fleet.addrs(), addrs);

        let health = fleet.probe();
        assert!(health.iter().all(ReplicaHealth::healthy));

        // Stop one backend: its stub process still runs, but ping and
        // stats go dark — the probe must say so without restarting it.
        fronts[1].stop();
        let health = fleet.probe();
        assert!(health[0].healthy());
        assert!(health[1].process_alive);
        assert!(!health[1].ping_ok);
        assert!(fleet.restart_dead().unwrap().is_empty());
        fronts[0].stop();
    }

    #[test]
    fn dead_replicas_are_restarted_on_their_old_addr() {
        let store = Arc::new(random_store(32, 4, 3));
        let front =
            TcpFrontEnd::bind(Server::with_defaults(Arc::clone(&store)), "127.0.0.1:0").unwrap();
        let addrs = vec![front.local_addr().to_string()];

        let mut fleet = stub_fleet(&addrs, 1);
        fleet.kill(0).unwrap();
        assert!(!fleet.probe()[0].process_alive);

        let restarted = fleet.restart_dead().unwrap();
        assert_eq!(restarted, vec![0]);
        assert_eq!(fleet.restart_count(), 1);
        assert_eq!(fleet.addrs(), addrs, "the replacement re-pins the address");
        assert!(fleet.probe()[0].healthy());
        front.stop();
    }

    #[test]
    fn cleanly_exited_replicas_retire_instead_of_restarting() {
        let command: ReplicaCommand = Box::new(|_, _| {
            let mut cmd = Command::new("sh");
            cmd.arg("-c").arg("echo 127.0.0.1:1; exit 0"); // drains instantly
            cmd
        });
        let mut fleet = Fleet::spawn(
            command,
            FleetOptions {
                replicas: 1,
                spawn_timeout: Duration::from_secs(5),
                ..FleetOptions::default()
            },
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !fleet.drained() {
            assert!(Instant::now() < deadline, "the clean exit never retired");
            assert!(
                fleet.restart_dead().unwrap().is_empty(),
                "retire, not restart"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(fleet.restart_count(), 0);
    }

    #[test]
    fn spawn_failure_reports_the_silent_replica() {
        let command: ReplicaCommand = Box::new(|_, _| {
            let mut cmd = Command::new("sh");
            cmd.arg("-c").arg("exec sleep 600"); // never announces
            cmd
        });
        let err = Fleet::spawn(
            command,
            FleetOptions {
                replicas: 1,
                spawn_timeout: Duration::from_millis(200),
                ..FleetOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("did not announce"));
    }
}
