//! Minimal stand-in for the `crossbeam` crate: only `thread::scope`, built
//! on `std::thread::scope` (which stabilised after crossbeam's scoped
//! threads and covers this workspace's usage).

/// Scoped threads, API-compatible with `crossbeam::thread` as used here.
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure (crossbeam lets spawned threads spawn siblings).
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread, joined like `crossbeam`'s.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning `Err` if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope.  The closure receives the scope
        /// so it can spawn further siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner: &'scope std::thread::Scope<'scope, 'env> = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Creates a scope in which threads borrowing from the enclosing
    /// environment can be spawned; all threads are joined before `scope`
    /// returns.
    ///
    /// Unlike crossbeam, a panicking child that is explicitly joined inside
    /// the closure propagates its panic instead of surfacing through the
    /// returned `Result` — every call site in this workspace joins and
    /// `expect`s each handle, so the observable behaviour matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_environment() {
            let data = vec![1u32, 2, 3];
            let data = &data;
            let total = super::scope(|scope| {
                let handles: Vec<_> = (0..3).map(|i| scope.spawn(move |_| data[i] * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
            })
            .unwrap();
            assert_eq!(total, 60);
        }

        #[test]
        fn nested_spawn_from_worker() {
            let out = super::scope(|scope| {
                scope
                    .spawn(|inner| inner.spawn(|_| 7u8).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(out, 7);
        }
    }
}
