//! Cross-engine equivalence: every engine implementation — sequential,
//! parallel CPU (any thread count, with or without oversubscription),
//! chunked CPU (any chunk size), streaming, and the two simulated-GPU
//! kernels — must produce bit-identical Year Loss Tables on the same input.
//!
//! This is the correctness backbone of the reproduction: the paper compares
//! the *performance* of these implementations, which is only meaningful
//! because they compute the same thing.

use std::sync::Arc;

use catrisk::catmodel::generator::ExposureConfig;
use catrisk::catmodel::runner::{CatModel, CatModelConfig};
use catrisk::engine::chunked::ChunkedEngine;
use catrisk::engine::input::{AnalysisInput, AnalysisInputBuilder};
use catrisk::engine::parallel::ParallelEngine;
use catrisk::engine::sequential::SequentialEngine;
use catrisk::engine::streaming::StreamingEngine;
use catrisk::engine::ylt::TrialOutcome;
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::peril::Region;
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::terms::LayerTerms;
use catrisk::finterms::treaty::Treaty;
use catrisk::gpusim::executor::Executor;
use catrisk::gpusim::kernel::LaunchConfig;
use catrisk::gpusim::kernels::{run_gpu_analysis, GpuVariant};
use catrisk::lookup::LookupKind;
use catrisk::prelude::RngFactory;

/// A realistic (but small) analysis input built through the full
/// catastrophe-model pipeline rather than synthetic tables.
fn pipeline_input(lookup: LookupKind) -> AnalysisInput {
    let factory = RngFactory::new(424242);
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 8_000,
            annual_event_budget: 400.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .expect("catalog");
    let model = CatModel::new(CatModelConfig::default()).expect("model");
    let regions = [Region::NorthAmericaEast, Region::Europe, Region::Japan];
    let elts: Vec<_> = regions
        .iter()
        .enumerate()
        .map(|(i, region)| {
            let exposure = ExposureConfig::regional(format!("book-{i}"), *region, 600)
                .generate(&factory)
                .expect("exposure");
            model.run(&catalog, &exposure, &factory)
        })
        .collect();
    let yet = YetGenerator::new(&catalog, YetConfig::with_trials(800))
        .expect("generator")
        .generate(&factory);

    let scale = elts.iter().map(|e| e.max_loss()).fold(0.0, f64::max);
    let mut builder = AnalysisInputBuilder::new();
    builder.with_lookup(lookup);
    builder.set_yet_shared(Arc::new(yet));
    let indices: Vec<usize> = elts
        .iter()
        .map(|elt| builder.add_elt(&elt.loss_pairs(), elt.financial_terms))
        .collect();
    builder.add_layer_over(
        &indices,
        Treaty::cat_xl(0.05 * scale, 0.4 * scale).layer_terms(),
    );
    builder.add_layer_over(
        &indices[..2],
        LayerTerms::aggregate(0.1 * scale, 0.8 * scale).unwrap(),
    );
    builder.add_layer_over(
        &[indices[2]],
        LayerTerms::new(0.02 * scale, 0.3 * scale, 0.05 * scale, 0.5 * scale).unwrap(),
    );
    builder.build().expect("input")
}

#[test]
fn all_cpu_engines_match_sequential() {
    let input = pipeline_input(LookupKind::Direct);
    let reference = SequentialEngine::new().run(&input);
    assert!(
        reference.layers().iter().any(|ylt| ylt.mean_loss() > 0.0),
        "workload must be non-trivial"
    );

    for threads in [1, 2, 5, 16] {
        let out = ParallelEngine::with_threads(threads).run(&input);
        assert_eq!(
            reference.max_abs_difference(&out),
            0.0,
            "parallel {threads} threads"
        );
    }
    for (threads, items) in [(2, 8), (4, 32)] {
        let out = ParallelEngine::oversubscribed(threads, items).run(&input);
        assert_eq!(
            reference.max_abs_difference(&out),
            0.0,
            "oversubscribed {threads}x{items}"
        );
    }
    for chunk in [1, 3, 4, 16, 500] {
        let out = ChunkedEngine::new(chunk).run(&input);
        assert_eq!(reference.max_abs_difference(&out), 0.0, "chunked {chunk}");
    }
}

#[test]
fn streaming_engine_matches_sequential() {
    let input = pipeline_input(LookupKind::Direct);
    let reference = SequentialEngine::new().run(&input);
    let mut collected: Vec<Vec<TrialOutcome>> = vec![Vec::new(); input.layers().len()];
    StreamingEngine::new(97).run_with(&input, |_, _, block| {
        for (i, ylt) in block.layers().iter().enumerate() {
            collected[i].extend_from_slice(ylt.outcomes());
        }
    });
    for (i, outcomes) in collected.iter().enumerate() {
        assert_eq!(outcomes.len(), reference.layer(i).num_trials());
        for (a, b) in outcomes.iter().zip(reference.layer(i).outcomes()) {
            assert_eq!(a.year_loss, b.year_loss);
        }
    }
}

#[test]
fn gpu_kernels_match_sequential() {
    let input = pipeline_input(LookupKind::Direct);
    let reference = SequentialEngine::new().run(&input);
    let executor = Executor::tesla_c2075();

    for tpb in [64u32, 256, 512] {
        let (out, launches) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Basic,
            LaunchConfig::with_block_size(tpb),
        )
        .expect("basic launch");
        assert_eq!(
            reference.max_abs_difference(&out),
            0.0,
            "gpu basic tpb={tpb}"
        );
        assert!(launches.iter().all(|l| l.simulated_seconds() > 0.0));
    }
    for chunk in [1usize, 4, 12, 32] {
        let (out, _) = run_gpu_analysis(
            &executor,
            &input,
            GpuVariant::Chunked { chunk_size: chunk },
            LaunchConfig::with_block_size(64),
        )
        .expect("chunked launch");
        assert_eq!(
            reference.max_abs_difference(&out),
            0.0,
            "gpu chunked chunk={chunk}"
        );
    }
}

#[test]
fn all_lookup_structures_give_identical_results() {
    let reference = SequentialEngine::new().run(&pipeline_input(LookupKind::Direct));
    for kind in [LookupKind::Sorted, LookupKind::Hashed, LookupKind::Cuckoo] {
        let out = SequentialEngine::new().run(&pipeline_input(kind));
        assert_eq!(reference.max_abs_difference(&out), 0.0, "{kind}");
    }
}

#[test]
fn query_results_are_identical_across_engines() {
    use catrisk::engine::ylt::{AnalysisOutput, YearLossTable};
    use catrisk::eventgen::peril::Peril;
    use catrisk::finterms::terms::FinancialTerms;
    use catrisk::riskquery::prelude::*;
    use catrisk::riskquery::{SegmentedBook, SegmentedInput};

    // A dimension-sliced input through the full catastrophe-model pipeline.
    let factory = RngFactory::new(77);
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 6_000,
            annual_event_budget: 350.0,
            rate_tail_index: 1.25,
        },
        &factory,
    )
    .expect("catalog");
    let model = CatModel::new(CatModelConfig::default()).expect("model");
    let regions = [Region::NorthAmericaEast, Region::Europe, Region::Japan];
    let lobs = [
        LineOfBusiness::Property,
        LineOfBusiness::Marine,
        LineOfBusiness::Energy,
    ];
    let yet = Arc::new(
        YetGenerator::new(&catalog, YetConfig::with_trials(600))
            .expect("generator")
            .generate(&factory),
    );
    let books: Vec<SegmentedBook> = regions
        .iter()
        .zip(lobs)
        .enumerate()
        .map(|(i, (region, lob))| {
            let exposure = ExposureConfig::regional(format!("qbook-{i}"), *region, 400)
                .generate(&factory)
                .expect("exposure");
            let elt = model.run(&catalog, &exposure, &factory);
            let scale = (elt.total_mean_loss() / 1_000.0).max(1.0);
            SegmentedBook {
                pairs: elt.loss_pairs(),
                financial_terms: FinancialTerms::pass_through(),
                layer_terms: LayerTerms::new(0.05 * scale, 5.0 * scale, 0.0, 20.0 * scale)
                    .expect("terms"),
                region: *region,
                lob,
            }
        })
        .collect();
    let segmented = SegmentedInput::build(yet, &catalog, &books).expect("segmented input");

    // The same batch of ad-hoc queries every store will answer.
    let queries = vec![
        QueryBuilder::new()
            .with_perils([Peril::Hurricane, Peril::Flood])
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .expect("query"),
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Var { level: 0.995 })
            .aggregate(Aggregate::Pml {
                return_period: 100.0,
                basis: Basis::Oep,
            })
            .build()
            .expect("query"),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .trials(100..500)
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 12,
            })
            .aggregate(Aggregate::StdDev)
            .build()
            .expect("query"),
    ];

    let answer = |output: &AnalysisOutput| -> Vec<QueryResult> {
        let store = segmented.ingest(output).expect("ingest");
        QuerySession::new(&store).run(&queries).expect("batch")
    };

    let reference = answer(&SequentialEngine::new().run(&segmented.input));
    assert!(
        reference.iter().any(|r| !r.rows.is_empty()),
        "queries must produce non-trivial results"
    );

    for threads in [1, 3, 8] {
        let results = answer(&ParallelEngine::with_threads(threads).run(&segmented.input));
        assert_eq!(reference, results, "parallel engine, {threads} threads");
    }
    for chunk in [1, 16, 300] {
        let results = answer(&ChunkedEngine::new(chunk).run(&segmented.input));
        assert_eq!(reference, results, "chunked engine, chunk {chunk}");
    }
    {
        // Streaming: reassemble block outputs into one AnalysisOutput.
        let mut collected: Vec<Vec<TrialOutcome>> =
            vec![Vec::new(); segmented.input.layers().len()];
        StreamingEngine::new(113).run_with(&segmented.input, |_, _, block| {
            for (i, ylt) in block.layers().iter().enumerate() {
                collected[i].extend_from_slice(ylt.outcomes());
            }
        });
        let output = AnalysisOutput::new(
            segmented
                .input
                .layers()
                .iter()
                .zip(collected)
                .map(|(layer, outcomes)| YearLossTable::new(layer.id, outcomes))
                .collect(),
        );
        let results = answer(&output);
        assert_eq!(reference, results, "streaming engine");
    }
}
