//! Shared synthetic-world construction for the CLI commands.

use std::sync::Arc;

use catrisk_catmodel::elt::EventLossTable;
use catrisk_catmodel::generator::ExposureConfig;
use catrisk_catmodel::runner::{CatModel, CatModelConfig};
use catrisk_engine::input::{AnalysisInput, AnalysisInputBuilder};
use catrisk_eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk_eventgen::peril::Region;
use catrisk_eventgen::simulate::{YetConfig, YetGenerator};
use catrisk_eventgen::yet::YearEventTable;
use catrisk_finterms::terms::LayerTerms;
use catrisk_simkit::rng::RngFactory;

/// Parameters of the synthetic world.
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Catalog size (number of stochastic events).
    pub num_events: u32,
    /// Locations per exposure set.
    pub locations: usize,
    /// Number of YET trials.
    pub trials: usize,
}

/// A fully synthesised analysis world: the ELTs of several regional books
/// and a Year Event Table.
pub struct World {
    /// The stochastic event catalog.
    pub catalog: EventCatalog,
    /// One ELT per exposure set.
    pub elts: Vec<EventLossTable>,
    /// `(name, region)` of each exposure book, aligned with `elts`.
    pub books: Vec<(String, Region)>,
    /// The pre-simulated Year Event Table.
    pub yet: Arc<YearEventTable>,
}

impl World {
    /// Builds the synthetic world: catalog, four regional exposure books,
    /// their ELTs, and the YET.
    pub fn build(config: &WorldConfig) -> Result<World, String> {
        let factory = RngFactory::new(config.seed);
        let catalog = EventCatalog::generate(
            &CatalogConfig {
                num_events: config.num_events,
                annual_event_budget: 1_000.0,
                rate_tail_index: 1.2,
            },
            &factory,
        )
        .map_err(|e| e.to_string())?;

        let books = [
            ("us-gulf-wind", Region::NorthAmericaEast),
            ("us-west-quake", Region::NorthAmericaWest),
            ("europe-all-perils", Region::Europe),
            ("japan-quake-wind", Region::Japan),
        ];
        let model = CatModel::new(CatModelConfig::default()).map_err(|e| e.to_string())?;
        let mut elts = Vec::new();
        for (name, region) in books {
            let exposure = ExposureConfig::regional(name, region, config.locations)
                .generate(&factory)
                .map_err(|e| e.to_string())?;
            elts.push(model.run(&catalog, &exposure, &factory));
        }

        let yet = YetGenerator::new(&catalog, YetConfig::with_trials(config.trials))
            .map_err(|e| e.to_string())?
            .generate(&factory);
        let books = books
            .iter()
            .map(|(name, region)| (name.to_string(), *region))
            .collect();
        Ok(World {
            catalog,
            elts,
            books,
            yet: Arc::new(yet),
        })
    }

    /// Builds an engine input covering all ELTs under a representative
    /// combined per-occurrence / aggregate layer.
    pub fn standard_input(&self) -> Result<AnalysisInput, String> {
        let mean_loss: f64 = self.elts.iter().map(|e| e.total_mean_loss()).sum::<f64>()
            / self.elts.len().max(1) as f64;
        let scale = (mean_loss / 1_000.0).max(1.0);
        let mut builder = AnalysisInputBuilder::new();
        builder.set_yet_shared(Arc::clone(&self.yet));
        let mut indices = Vec::new();
        for elt in &self.elts {
            indices.push(builder.add_elt(&elt.loss_pairs(), elt.financial_terms));
        }
        builder.add_layer_over(
            &indices,
            LayerTerms::new(0.05 * scale, 5.0 * scale, 0.0, 20.0 * scale)
                .map_err(|e| e.to_string())?,
        );
        builder.build().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_consistently() {
        let config = WorldConfig {
            seed: 1,
            num_events: 3_000,
            locations: 200,
            trials: 100,
        };
        let world = World::build(&config).unwrap();
        assert_eq!(world.catalog.len(), 3_000);
        assert_eq!(world.elts.len(), 4);
        assert!(world.elts.iter().all(|e| !e.is_empty()));
        assert_eq!(world.yet.num_trials(), 100);
        let input = world.standard_input().unwrap();
        assert_eq!(input.elts().len(), 4);
        assert_eq!(input.layers().len(), 1);
    }
}
