//! Quickstart: the full aggregate risk analysis pipeline on a small
//! synthetic book.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps (mirroring the paper's pipeline):
//! 1. generate a stochastic event catalog;
//! 2. generate a synthetic exposure database and run the catastrophe model
//!    to obtain an Event Loss Table (ELT);
//! 3. pre-simulate a Year Event Table (YET);
//! 4. describe a reinsurance layer (Cat XL) over the ELT;
//! 5. run the Aggregate Risk Engine in parallel;
//! 6. derive PML / TVaR from the Year Loss Table.

use std::sync::Arc;

use catrisk::catmodel::generator::ExposureConfig;
use catrisk::catmodel::runner::{CatModel, CatModelConfig};
use catrisk::engine::input::AnalysisInputBuilder;
use catrisk::engine::parallel::ParallelEngine;
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::peril::Region;
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::treaty::Treaty;
use catrisk::metrics::report::RiskReport;
use catrisk::prelude::RngFactory;

fn main() {
    let factory = RngFactory::new(2012);

    // 1. Stochastic event catalog (20k events, ~1000 occurrences/year).
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 20_000,
            annual_event_budget: 1_000.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .expect("catalog");
    println!(
        "catalog: {} events, {:.0} expected occurrences/year",
        catalog.len(),
        catalog.total_annual_rate()
    );

    // 2. Exposure database + catastrophe model -> ELT.
    let exposure = ExposureConfig::regional("gulf-coast-book", Region::NorthAmericaEast, 2_000)
        .generate(&factory)
        .expect("exposure");
    println!(
        "exposure: {} locations, {:.1}M total insured value",
        exposure.len(),
        exposure.total_tiv() / 1.0e6
    );
    let model = CatModel::new(CatModelConfig::default()).expect("model");
    let elt = model.run(&catalog, &exposure, &factory);
    println!(
        "ELT: {} events with non-zero loss, largest {:.1}M",
        elt.len(),
        elt.max_loss() / 1.0e6
    );

    // 3. Year Event Table: 50k alternative views of the contractual year.
    let yet = YetGenerator::new(&catalog, YetConfig::with_trials(50_000))
        .expect("generator")
        .generate(&factory);
    println!(
        "YET: {} trials, {:.0} events/trial on average",
        yet.num_trials(),
        yet.avg_events_per_trial()
    );

    // 4. A Cat XL layer over the ELT.
    let attachment = 0.05 * elt.max_loss();
    let limit = 0.50 * elt.max_loss();
    let treaty = Treaty::cat_xl(attachment, limit);
    println!("layer: {}", treaty.describe());

    let mut builder = AnalysisInputBuilder::new();
    builder.set_yet_shared(Arc::new(yet));
    let elt_index = builder.add_elt(&elt.loss_pairs(), elt.financial_terms);
    builder.add_layer_over(&[elt_index], treaty.layer_terms());
    let input = builder.build().expect("analysis input");

    // 5. Aggregate analysis on all cores.
    let output = ParallelEngine::new().run(&input);
    let ylt = output.layer(0);
    println!(
        "aggregate analysis: {} trials, expected annual loss {:.1}M, attaches in {:.1}% of years",
        ylt.num_trials(),
        ylt.mean_loss() / 1.0e6,
        100.0 * ylt.nonzero_fraction()
    );

    // 6. Risk metrics.
    let report = RiskReport::from_ylt("gulf-coast Cat XL", ylt);
    println!("\n{}", report.to_text());
}
