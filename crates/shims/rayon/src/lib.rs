//! Minimal stand-in for `rayon` implemented over `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the rayon API the workspace uses: `into_par_iter` /
//! `par_iter` with the `map`, `map_init`, `filter_map` and `fold` adapters,
//! the `collect` / `reduce` / `sum` terminals, and explicit thread pools
//! (`ThreadPoolBuilder`, `ThreadPool::install`).
//!
//! Execution model: terminals split the materialised items into
//! **fine-grained chunks** — [`chunks_per_worker`] chunks per worker
//! rather than one — and run them with **chunked self-scheduling**: the
//! chunks sit behind a shared atomic claim index, and every executor
//! (the persistent pool's workers *and* the submitting thread, which
//! helps rather than blocking) loops claim-next-chunk → run → store
//! until the supply is drained.  A worker that lands on a cheap chunk
//! simply claims another, so skewed workloads (uneven segment sizes,
//! cut-split trial blocks) keep all cores busy without deque-based
//! stealing.  Results are stored by chunk index and concatenated (or
//! reduced) **in chunk order**, so `collect` preserves input order
//! exactly like rayon's indexed collect and `reduce` combines partials
//! deterministically — claim interleaving can never change output
//! order, which is what lets bit-exact callers tolerate any schedule.
//! The persistent pool is lazily started and process-wide; nested
//! terminals — a parallel iterator used inside a worker's chunk — fall
//! back to scoped threads running the same claim loop, which keeps the
//! pool deadlock-free.
//!
//! Environment knobs (shim extensions; upstream rayon equivalents in
//! parentheses):
//!
//! * `CATRISK_THREADS` (`RAYON_NUM_THREADS`) pins the default worker
//!   count — both [`current_num_threads`]'s default and the size of the
//!   persistent pool — so benches and tests can run deterministically
//!   sized (`CATRISK_THREADS=1` runs every terminal inline on the
//!   calling thread).
//! * `CATRISK_CHUNKS_PER_WORKER` (no upstream equivalent) sets the
//!   self-scheduling granularity; `1` reproduces the old static
//!   one-contiguous-chunk-per-worker split, which is the baseline the
//!   `scan_kernel` bench compares against.  [`set_chunks_per_worker`]
//!   overrides it programmatically.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CATRISK_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Unset sentinel for the granularity knob (0 chunks is meaningless).
const CHUNKS_UNSET: usize = 0;

static CHUNKS_PER_WORKER: AtomicUsize = AtomicUsize::new(CHUNKS_UNSET);

/// Default self-scheduling granularity: enough chunks per worker that
/// the claim loop can rebalance skew, few enough that per-chunk
/// dispatch overhead stays negligible.
const DEFAULT_CHUNKS_PER_WORKER: usize = 4;

/// Chunks each terminal splits its items into, per worker thread (a
/// shim extension; upstream rayon splits adaptively).  Defaults to 4;
/// `CATRISK_CHUNKS_PER_WORKER` or [`set_chunks_per_worker`] override.
/// `1` reproduces the old static one-chunk-per-worker split.
pub fn chunks_per_worker() -> usize {
    match CHUNKS_PER_WORKER.load(Ordering::Relaxed) {
        CHUNKS_UNSET => {
            let chunks = std::env::var("CATRISK_CHUNKS_PER_WORKER")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(DEFAULT_CHUNKS_PER_WORKER);
            CHUNKS_PER_WORKER.store(chunks, Ordering::Relaxed);
            chunks
        }
        chunks => chunks,
    }
}

/// Overrides [`chunks_per_worker`] programmatically (a shim extension
/// used by scheduling benches and granularity-invariance tests).
/// `None` clears the override and re-reads the environment.  Chunk
/// granularity never changes what a terminal returns — results are
/// always collected in chunk order — only how evenly chunks schedule.
pub fn set_chunks_per_worker(chunks: Option<usize>) {
    CHUNKS_PER_WORKER.store(chunks.map_or(CHUNKS_UNSET, |c| c.max(1)), Ordering::Relaxed);
}

/// Number of worker threads terminals on this thread will use: the
/// innermost installed pool's size, or the number of logical CPUs.
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by the
/// shim; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicit-size [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = one per logical CPU).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A "thread pool": in the shim, a resolved worker count that terminals
/// running under [`ThreadPool::install`] will use.  It owns no threads of
/// its own — chunks execute on the shared process-wide worker pool (or on
/// scoped fallback threads when nested); `install` only scopes how many
/// chunks a terminal splits its input into.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

struct ThreadsGuard {
    prev: usize,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count active on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let guard = ThreadsGuard {
            prev: CURRENT_THREADS.with(Cell::get),
        };
        CURRENT_THREADS.with(|c| c.set(self.threads));
        let result = op();
        drop(guard);
        result
    }

    /// This pool's worker-thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------------
// Parallel execution core
// ---------------------------------------------------------------------------

thread_local! {
    /// True on threads owned by the global worker pool; used to detect
    /// nested terminals.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide persistent worker pool.
///
/// Started lazily on the first multi-chunk terminal; one worker per
/// logical CPU (or `CATRISK_THREADS` when set), fed from a single
/// queue.  Workers live for the rest of
/// the process (the submitting side blocks until its jobs finish, so an
/// idle pool merely parks in `recv`).
struct WorkerPool {
    sender: Mutex<mpsc::Sender<Job>>,
}

impl WorkerPool {
    fn submit(&self, job: Job) {
        self.sender
            .lock()
            .expect("rayon shim: pool sender poisoned")
            .send(job)
            .expect("rayon shim: worker pool hung up");
    }
}

fn worker_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for index in 0..default_threads() {
            let receiver = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("rayon-shim-{index}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|flag| flag.set(true));
                    loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = receiver
                            .lock()
                            .expect("rayon shim: pool receiver poisoned")
                            .recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    }
                })
                .expect("rayon shim: failed to spawn pool worker");
        }
        WorkerPool {
            sender: Mutex::new(sender),
        }
    })
}

/// A counts-down-to-zero gate the submitting thread waits on.
struct Latch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            zero: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("rayon shim: latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("rayon shim: latch poisoned");
        while *remaining > 0 {
            remaining = self
                .zero
                .wait(remaining)
                .expect("rayon shim: latch poisoned");
        }
    }
}

/// The shared state of one self-scheduled terminal: fine-grained chunks
/// behind an atomic claim index, with a result slot per chunk so output
/// order is chunk order no matter which executor ran what.
struct ChunkQueue<T, R> {
    /// Unclaimed chunks; an executor that wins index `i` takes the chunk
    /// out of slot `i` exactly once.
    pending: Vec<Mutex<Option<Vec<T>>>>,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Per-chunk outcomes, stored at the chunk's index.
    results: Vec<Mutex<Option<std::thread::Result<R>>>>,
}

impl<T: Send, R: Send> ChunkQueue<T, R> {
    fn new(chunks: Vec<Vec<T>>) -> Self {
        let results = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        Self {
            pending: chunks.into_iter().map(|c| Mutex::new(Some(c))).collect(),
            next: AtomicUsize::new(0),
            results,
        }
    }

    /// The claim loop every executor runs: claim the next chunk index,
    /// run it, store the outcome at that index; repeat until the supply
    /// is drained.  Never blocks on other executors, so an executor
    /// stuck behind a heavy chunk simply stops claiming while the rest
    /// drain the queue — self-scheduling without a deque.
    fn drain(&self, per_chunk: &(impl Fn(Vec<T>) -> R + Sync)) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.pending.len() {
                break;
            }
            let chunk = self.pending[index]
                .lock()
                .expect("rayon shim: chunk slot poisoned")
                .take()
                .expect("rayon shim: chunk claimed twice");
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| per_chunk(chunk)));
            *self.results[index]
                .lock()
                .expect("rayon shim: result slot poisoned") = Some(outcome);
        }
    }

    /// Unpacks the outcomes in chunk order, re-raising the first
    /// panicking chunk's payload on the calling thread.
    fn into_results(self) -> Vec<R> {
        self.results
            .into_iter()
            .map(|slot| {
                let outcome = slot
                    .into_inner()
                    .expect("rayon shim: result slot poisoned")
                    .expect("rayon shim: chunk finished without a result");
                match outcome {
                    Ok(result) => result,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })
            .collect()
    }
}

/// Splits `items` into [`chunks_per_worker`] contiguous chunks per
/// worker and self-schedules them — on the persistent pool (with the
/// submitting thread claiming chunks too), or on scoped threads when
/// already running inside a pool worker (nested parallelism) — and
/// returns the per-chunk results in chunk order.
fn run_chunks<T: Send, R: Send>(items: Vec<T>, per_chunk: impl Fn(Vec<T>) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return vec![per_chunk(items)];
    }
    let chunk_size = items.len().div_ceil(threads * chunks_per_worker()).max(1);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(items.len().div_ceil(chunk_size));
    let mut rest = items;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    if IS_POOL_WORKER.with(Cell::get) {
        run_chunks_scoped(chunks, &per_chunk, threads)
    } else {
        run_chunks_pooled(chunks, &per_chunk, threads)
    }
}

/// Self-schedules the chunks across the persistent pool *and* the
/// submitting thread: up to `threads - 1` pool jobs each run the claim
/// loop, and the submitter runs it too instead of blocking — so
/// progress never depends on pool capacity, and a pool smaller than the
/// installed thread count just rebalances over fewer executors.  The
/// first panicking chunk's payload is re-raised on the submitting
/// thread after all chunks ran.
fn run_chunks_pooled<T: Send, R: Send>(
    chunks: Vec<Vec<T>>,
    per_chunk: &(impl Fn(Vec<T>) -> R + Sync),
    threads: usize,
) -> Vec<R> {
    let pool = worker_pool();
    // The submitter is one executor; extra claimants beyond the chunk
    // count could never win a claim, so don't submit them.
    let helpers = (threads - 1).min(chunks.len().saturating_sub(1));
    let queue = ChunkQueue::new(chunks);
    let latch = Latch::new(helpers);
    {
        let queue = &queue;
        let latch = &latch;
        for _ in 0..helpers {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                queue.drain(per_chunk);
                latch.count_down();
            });
            // SAFETY: the job borrows `per_chunk`, `queue` and `latch`
            // from this stack frame.  `latch.wait()` below blocks until
            // every submitted job has run its closure to completion (the
            // count-down is the closure's last action), so the erased
            // borrows never outlive their referents — the same latch
            // argument real rayon's scoped injection rests on.
            let job: Job = unsafe { std::mem::transmute(job) };
            pool.submit(job);
        }
        // Claim chunks on this thread too — the submitter is the one
        // executor guaranteed to exist even when the pool is saturated
        // by other terminals.
        queue.drain(per_chunk);
        latch.wait();
    }
    queue.into_results()
}

/// Scoped-thread fallback used for nested terminals: a chunk running on
/// a pool worker cannot wait for queue capacity without risking
/// deadlock, so nested splits run the same claim loop on their own
/// short-lived scope instead (at most one scoped thread per chunk).
fn run_chunks_scoped<T: Send, R: Send>(
    chunks: Vec<Vec<T>>,
    per_chunk: &(impl Fn(Vec<T>) -> R + Sync),
    threads: usize,
) -> Vec<R> {
    let workers = threads.min(chunks.len()).max(1);
    let queue = ChunkQueue::new(chunks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            scope.spawn(move || {
                // Deeper nesting must keep using scoped threads: the
                // pool's workers may all be blocked under this very
                // call chain.
                IS_POOL_WORKER.with(|flag| flag.set(true));
                queue.drain(per_chunk);
            });
        }
    });
    queue.into_results()
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// A materialised parallel iterator: the source of every adapter chain.
pub struct IterBase<T> {
    items: Vec<T>,
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator over its elements.
    fn into_par_iter(self) -> IterBase<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IterBase<T> {
        IterBase { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for Range<$ty> {
            type Item = $ty;
            fn into_par_iter(self) -> IterBase<$ty> {
                IterBase { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize);

/// Borrowing conversion for slices and vectors (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send;
    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&'a self) -> IterBase<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters and terminals
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct Map<T, F> {
    items: Vec<T>,
    f: F,
}

/// `map_init` adapter.
pub struct MapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

/// `filter_map` adapter.
pub struct FilterMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// `fold` adapter: a parallel iterator of per-chunk accumulators.
pub struct Fold<T, ID, F> {
    items: Vec<T>,
    identity: ID,
    fold: F,
}

impl<T: Send> IterBase<T> {
    /// Maps each element through `f`.
    pub fn map<O, F: Fn(T) -> O + Sync>(self, f: F) -> Map<T, F> {
        Map {
            items: self.items,
            f,
        }
    }

    /// Maps with per-worker scratch state created by `init`.
    pub fn map_init<S, O, INIT, F>(self, init: INIT, f: F) -> MapInit<T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> O + Sync,
    {
        MapInit {
            items: self.items,
            init,
            f,
        }
    }

    /// Maps and filters in one pass.
    pub fn filter_map<O, F: Fn(T) -> Option<O> + Sync>(self, f: F) -> FilterMap<T, F> {
        FilterMap {
            items: self.items,
            f,
        }
    }

    /// Folds each worker's chunk into a private accumulator.
    pub fn fold<A, ID, F>(self, identity: ID, fold: F) -> Fold<T, ID, F>
    where
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        Fold {
            items: self.items,
            identity,
            fold,
        }
    }

    /// Collects the elements unchanged.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> Map<T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        let f = &self.f;
        let chunks = run_chunks(self.items, |chunk| {
            chunk.into_iter().map(f).collect::<Vec<O>>()
        });
        C::from(chunks.into_iter().flatten().collect())
    }

    /// Reduces mapped elements with `combine`, starting each worker (and the
    /// final combination) from `identity()`.  Partial results are combined
    /// in chunk order.
    pub fn reduce<ID, C>(self, identity: ID, combine: C) -> O
    where
        ID: Fn() -> O + Sync,
        C: Fn(O, O) -> O + Sync,
    {
        let f = &self.f;
        let id = &identity;
        let combine_ref = &combine;
        let partials = run_chunks(self.items, |chunk| {
            chunk.into_iter().map(f).fold(id(), combine_ref)
        });
        partials.into_iter().fold(identity(), combine)
    }

    /// Sums the mapped elements (combined in input order).
    pub fn sum<S: std::iter::Sum<O> + std::iter::Sum<S> + Send>(self) -> S {
        let f = &self.f;
        let partials = run_chunks(self.items, |chunk| chunk.into_iter().map(f).sum::<S>());
        partials.into_iter().sum()
    }
}

impl<T, S, O, INIT, F> MapInit<T, INIT, F>
where
    T: Send,
    O: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> O + Sync,
{
    /// Runs the map in parallel (one scratch state per worker) and collects
    /// results in input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        let f = &self.f;
        let init = &self.init;
        let chunks = run_chunks(self.items, |chunk| {
            let mut state = init();
            chunk
                .into_iter()
                .map(|item| f(&mut state, item))
                .collect::<Vec<O>>()
        });
        C::from(chunks.into_iter().flatten().collect())
    }
}

impl<T: Send, O: Send, F: Fn(T) -> Option<O> + Sync> FilterMap<T, F> {
    /// Runs the filter-map in parallel and collects retained results in
    /// input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        let f = &self.f;
        let chunks = run_chunks(self.items, |chunk| {
            chunk.into_iter().filter_map(f).collect::<Vec<O>>()
        });
        C::from(chunks.into_iter().flatten().collect())
    }
}

impl<T, A, ID, F> Fold<T, ID, F>
where
    T: Send,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, T) -> A + Sync,
{
    /// Combines the per-chunk accumulators in chunk order.
    pub fn reduce<ID2, C>(self, identity: ID2, combine: C) -> A
    where
        ID2: Fn() -> A + Sync,
        C: Fn(A, A) -> A + Sync,
    {
        let fold = &self.fold;
        let id = &self.identity;
        let partials = run_chunks(self.items, |chunk| chunk.into_iter().fold(id(), fold));
        partials.into_iter().fold(identity(), combine)
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn fold_reduce_sums() {
        let id = || 0u64;
        let total = (0..10_000u64)
            .into_par_iter()
            .fold(&id, |acc, i| acc + i)
            .reduce(&id, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_reduce_deterministic() {
        let out =
            (0..100usize)
                .into_par_iter()
                .map(|i| vec![i])
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn filter_map_drops_elements() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 2 == 0).then_some(i))
            .collect();
        assert_eq!(out.len(), 50);
        assert_eq!(out[1], 2);
    }

    #[test]
    fn pool_is_a_process_singleton() {
        // Force the pool up, then check no new pool is built per terminal.
        let _: Vec<u32> = (0..64u32).into_par_iter().map(|i| i).collect();
        let pool = worker_pool();
        let _: Vec<u32> = (0..64u32).into_par_iter().map(|i| i + 1).collect();
        let again = worker_pool();
        assert!(std::ptr::eq(pool, again), "the pool is a process singleton");
    }

    #[test]
    fn nested_terminals_complete_without_deadlock() {
        let out: Vec<u64> = (0..16u64)
            .into_par_iter()
            .map(|i| {
                // A parallel terminal inside a pool worker's chunk.
                (0..100u64).into_par_iter().map(|j| i + j).sum::<u64>()
            })
            .collect();
        assert_eq!(out.len(), 16);
        assert_eq!(out[0], 99 * 100 / 2);
        assert_eq!(out[1], 99 * 100 / 2 + 100);
    }

    #[test]
    fn panics_propagate_to_the_submitting_thread() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0..1000u32)
                .into_par_iter()
                .map(|i| {
                    if i == 997 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .collect();
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool survives a panicked job and keeps serving.
        let out: Vec<u32> = (0..100u32).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out[99], 297);
    }

    #[test]
    fn chunk_granularity_never_changes_output() {
        let expected: Vec<usize> = (0..500).map(|i| i * i).collect();
        for chunks in [1, 2, 4, 16] {
            set_chunks_per_worker(Some(chunks));
            let out: Vec<usize> = (0..500usize).into_par_iter().map(|i| i * i).collect();
            assert_eq!(out, expected, "chunks_per_worker={chunks}");
        }
        set_chunks_per_worker(None);
    }

    #[test]
    fn self_scheduling_runs_every_item_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let out: Vec<usize> = (0..333usize)
            .into_par_iter()
            .map(|i| {
                count.fetch_add(1, Ordering::Relaxed);
                i
            })
            .collect();
        assert_eq!(out, (0..333).collect::<Vec<_>>());
        assert_eq!(count.load(Ordering::Relaxed), 333);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i
            })
            .collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
