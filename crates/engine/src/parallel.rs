//! The multi-core engine: the paper's OpenMP analogue.
//!
//! "In all implementations a single thread is employed per trial" (paper
//! §III.B): trials are independent, so the parallel engine simply maps the
//! per-trial kernel over the Year Event Table on a rayon pool whose size is
//! the experiment's core count (Fig. 3a).  The oversubscribed mode assigns
//! many logical work items to each worker thread, reproducing the paper's
//! "threads per core" sweep (Fig. 3b) where modest gains come from finer
//! grained scheduling.

use rayon::prelude::*;

use catrisk_simkit::parallel::build_pool;

use crate::input::AnalysisInput;
use crate::steps;
use crate::ylt::{AnalysisOutput, TrialOutcome, YearLossTable};

/// Multi-core aggregate analysis engine.
#[derive(Debug, Clone, Copy)]
pub struct ParallelEngine {
    /// Worker threads (0 = one per logical CPU).
    pub threads: usize,
    /// Logical work items per worker thread (1 = plain work stealing).
    pub work_items_per_thread: usize,
}

impl Default for ParallelEngine {
    fn default() -> Self {
        Self {
            threads: 0,
            work_items_per_thread: 1,
        }
    }
}

impl ParallelEngine {
    /// Engine using every logical CPU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit worker-thread count (the Fig. 3a sweep).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            work_items_per_thread: 1,
        }
    }

    /// Engine with explicit oversubscription (the Fig. 3b sweep): each of
    /// the `threads` workers is assigned `work_items_per_thread` logical
    /// work items.
    pub fn oversubscribed(threads: usize, work_items_per_thread: usize) -> Self {
        Self {
            threads,
            work_items_per_thread: work_items_per_thread.max(1),
        }
    }

    /// Runs the analysis: one YLT per layer, identical to the sequential
    /// engine's output.
    pub fn run(&self, input: &AnalysisInput) -> AnalysisOutput {
        let pool = build_pool(self.threads);
        pool.install(|| self.run_in_current_pool(input))
    }

    /// Runs on whatever rayon pool is already active (used by callers that
    /// manage their own pool, e.g. the benchmark harness).
    pub fn run_in_current_pool(&self, input: &AnalysisInput) -> AnalysisOutput {
        if self.work_items_per_thread > 1 {
            return self.run_oversubscribed(input);
        }
        let yet = input.yet();
        let ylts = input
            .layers()
            .iter()
            .map(|layer| {
                let elts = input.layer_elts(layer);
                let outcomes: Vec<TrialOutcome> = (0..yet.num_trials())
                    .into_par_iter()
                    .map_init(Vec::new, |scratch, t| {
                        steps::trial_outcome(&elts, &layer.terms, yet.trial(t).occurrences, scratch)
                    })
                    .collect();
                YearLossTable::new(layer.id, outcomes)
            })
            .collect();
        AnalysisOutput::new(ylts)
    }

    /// Oversubscribed execution: trials are split into
    /// `threads × work_items_per_thread` contiguous blocks which worker
    /// threads claim dynamically.  Scheduling differs from the plain mode
    /// but per-trial arithmetic is unchanged, so results are identical.
    fn run_oversubscribed(&self, input: &AnalysisInput) -> AnalysisOutput {
        let yet = input.yet();
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let total_items = threads * self.work_items_per_thread;
        let blocks = catrisk_simkit::sampling::stratify(yet.num_trials(), total_items);

        let ylts = input
            .layers()
            .iter()
            .map(|layer| {
                let elts = input.layer_elts(layer);
                let next_block = std::sync::atomic::AtomicUsize::new(0);
                let results: Vec<(usize, Vec<TrialOutcome>)> = crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let elts = &elts;
                            let blocks = &blocks;
                            let next_block = &next_block;
                            let layer_terms = &layer.terms;
                            scope.spawn(move |_| {
                                let mut scratch = Vec::new();
                                let mut local: Vec<(usize, Vec<TrialOutcome>)> = Vec::new();
                                loop {
                                    let idx = next_block
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if idx >= blocks.len() {
                                        break;
                                    }
                                    let block = blocks[idx].clone();
                                    let outcomes: Vec<TrialOutcome> = block
                                        .clone()
                                        .map(|t| {
                                            steps::trial_outcome(
                                                elts,
                                                layer_terms,
                                                yet.trial(t).occurrences,
                                                &mut scratch,
                                            )
                                        })
                                        .collect();
                                    local.push((block.start, outcomes));
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("worker thread panicked"))
                        .collect()
                })
                .expect("crossbeam scope failed");

                // Reassemble in trial order.
                let mut sorted = results;
                sorted.sort_by_key(|(start, _)| *start);
                let mut outcomes = Vec::with_capacity(yet.num_trials());
                for (_, mut block) in sorted {
                    outcomes.append(&mut block);
                }
                YearLossTable::new(layer.id, outcomes)
            })
            .collect();
        AnalysisOutput::new(ylts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AnalysisInputBuilder;
    use crate::sequential::SequentialEngine;
    use catrisk_finterms::terms::{FinancialTerms, LayerTerms};
    use catrisk_simkit::rng::RngFactory;

    /// A moderately sized pseudo-random input exercising several layers.
    fn random_input(trials: usize, seed: u64) -> crate::input::AnalysisInput {
        let factory = RngFactory::new(seed);
        let catalog_size = 5_000u32;
        let mut b = AnalysisInputBuilder::new();

        // Random YET.
        let mut yet_trials = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = factory.stream(t as u64);
            let n = rng.below(40) as usize;
            let mut trial = Vec::with_capacity(n);
            for i in 0..n {
                trial.push((rng.below(u64::from(catalog_size)) as u32, i as f32));
            }
            yet_trials.push(trial);
        }
        b.set_yet_from_trials(catalog_size, yet_trials);

        // Random ELTs.
        let mut elt_indices = Vec::new();
        for e in 0..6u64 {
            let mut rng = factory.stream2(1, e);
            let n = 400 + rng.below(400) as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((
                    rng.below(u64::from(catalog_size)) as u32,
                    1_000.0 + rng.uniform() * 2.0e6,
                ));
            }
            let terms = FinancialTerms::new(500.0, 1.5e6, 0.9, 1.0).unwrap();
            elt_indices.push(b.add_elt(&pairs, terms));
        }

        b.add_layer_over(
            &elt_indices[0..3],
            LayerTerms::new(1.0e4, 5.0e5, 0.0, 2.0e6).unwrap(),
        );
        b.add_layer_over(
            &elt_indices[2..6],
            LayerTerms::per_occurrence(5.0e4, 8.0e5).unwrap(),
        );
        b.add_layer_over(
            &elt_indices[..],
            LayerTerms::aggregate(1.0e5, 3.0e6).unwrap(),
        );
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let input = random_input(400, 42);
        let sequential = SequentialEngine::new().run(&input);
        for threads in [1, 2, 4, 8] {
            let parallel = ParallelEngine::with_threads(threads).run(&input);
            assert_eq!(
                sequential.max_abs_difference(&parallel),
                0.0,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn oversubscribed_matches_sequential() {
        let input = random_input(250, 7);
        let sequential = SequentialEngine::new().run(&input);
        for (threads, items) in [(2, 4), (4, 16), (3, 1)] {
            let engine = ParallelEngine::oversubscribed(threads, items);
            let out = engine.run(&input);
            assert_eq!(
                sequential.max_abs_difference(&out),
                0.0,
                "{threads}x{items}"
            );
        }
    }

    #[test]
    fn zero_threads_uses_all_cores() {
        let input = random_input(100, 3);
        let out = ParallelEngine::new().run(&input);
        assert_eq!(out.num_layers(), 3);
        assert_eq!(out.layer(0).num_trials(), 100);
    }

    #[test]
    fn oversubscribed_constructor_clamps_items() {
        let e = ParallelEngine::oversubscribed(2, 0);
        assert_eq!(e.work_items_per_thread, 1);
    }

    #[test]
    fn run_in_current_pool_reuses_pool() {
        let input = random_input(100, 9);
        let pool = catrisk_simkit::parallel::build_pool(2);
        let reference = SequentialEngine::new().run(&input);
        let out = pool.install(|| ParallelEngine::new().run_in_current_pool(&input));
        assert_eq!(reference.max_abs_difference(&out), 0.0);
    }
}
