//! Site-level financial terms: ground-up loss to gross loss.
//!
//! The catastrophe model's final step computes "the resultant expected loss,
//! given the customer's financial terms" (paper §I).  At the location level
//! this means applying the site deductible and site limit to the ground-up
//! loss (TIV × damage ratio); the result summed over locations is the
//! event's gross loss for the exposure set, which is what lands in the ELT.

use crate::exposure::Location;

/// Applies a location's site terms to a ground-up loss.
#[inline]
pub fn site_gross_loss(location: &Location, ground_up: f64) -> f64 {
    debug_assert!(ground_up >= 0.0);
    (ground_up - location.site_deductible)
        .max(0.0)
        .min(location.site_limit)
}

/// Ground-up loss of a location for a given damage ratio.
#[inline]
pub fn ground_up_loss(location: &Location, damage_ratio: f64) -> f64 {
    location.tiv * damage_ratio.clamp(0.0, 1.0)
}

/// Convenience composition: damage ratio → gross loss at a location.
#[inline]
pub fn location_gross_loss(location: &Location, damage_ratio: f64) -> f64 {
    site_gross_loss(location, ground_up_loss(location, damage_ratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposure::{Construction, Occupancy};
    use catrisk_eventgen::peril::Region;

    fn location(tiv: f64, deductible: f64, limit: f64) -> Location {
        Location {
            id: 0,
            region: Region::Europe,
            x: 0.0,
            y: 0.0,
            construction: Construction::Concrete,
            occupancy: Occupancy::Commercial,
            year_built: 2000,
            tiv,
            site_deductible: deductible,
            site_limit: limit,
        }
    }

    #[test]
    fn ground_up_is_tiv_times_damage() {
        let loc = location(2.0e6, 0.0, f64::INFINITY);
        assert_eq!(ground_up_loss(&loc, 0.25), 0.5e6);
        assert_eq!(ground_up_loss(&loc, 0.0), 0.0);
        assert_eq!(
            ground_up_loss(&loc, 1.5),
            2.0e6,
            "damage ratio clamped to 1"
        );
    }

    #[test]
    fn site_terms_apply_deductible_then_limit() {
        let loc = location(1.0e6, 50_000.0, 400_000.0);
        assert_eq!(site_gross_loss(&loc, 30_000.0), 0.0);
        assert_eq!(site_gross_loss(&loc, 50_000.0), 0.0);
        assert_eq!(site_gross_loss(&loc, 250_000.0), 200_000.0);
        assert_eq!(site_gross_loss(&loc, 900_000.0), 400_000.0);
    }

    #[test]
    fn composition_matches_manual() {
        let loc = location(1.0e6, 100_000.0, 500_000.0);
        // 40% damage = 400k ground-up, minus 100k deductible = 300k.
        assert_eq!(location_gross_loss(&loc, 0.4), 300_000.0);
        // 90% damage = 900k ground-up, capped at 500k after deductible.
        assert_eq!(location_gross_loss(&loc, 0.9), 500_000.0);
        // No damage, no loss.
        assert_eq!(location_gross_loss(&loc, 0.0), 0.0);
    }

    #[test]
    fn unlimited_site_terms_pass_through() {
        let loc = location(3.0e6, 0.0, f64::INFINITY);
        assert_eq!(location_gross_loss(&loc, 0.5), 1.5e6);
    }
}
