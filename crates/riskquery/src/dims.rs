//! Query dimensions and per-segment metadata.

use serde::{Deserialize, Serialize};

use catrisk_catmodel::exposure::Occupancy;
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;

/// Line of business: the underwriting classification a segment's losses
/// belong to.  This is the third slicing dimension named by QuPARA (after
/// peril and region); the synthetic pipeline derives it from the exposure
/// book's dominant [`Occupancy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LineOfBusiness {
    /// Residential and commercial property.
    Property,
    /// Casualty / liability lines.
    Casualty,
    /// Marine and cargo.
    Marine,
    /// Energy, utilities and industrial facilities.
    Energy,
}

impl LineOfBusiness {
    /// All lines of business, in display order.
    pub const ALL: [LineOfBusiness; 4] = [
        LineOfBusiness::Property,
        LineOfBusiness::Casualty,
        LineOfBusiness::Marine,
        LineOfBusiness::Energy,
    ];

    /// Short reporting code.
    pub fn code(&self) -> &'static str {
        match self {
            LineOfBusiness::Property => "PROP",
            LineOfBusiness::Casualty => "CAS",
            LineOfBusiness::Marine => "MAR",
            LineOfBusiness::Energy => "ENG",
        }
    }
}

impl From<Occupancy> for LineOfBusiness {
    /// Maps a book's dominant occupancy onto the line written for it in the
    /// synthetic world.
    fn from(occupancy: Occupancy) -> Self {
        match occupancy {
            Occupancy::Residential => LineOfBusiness::Property,
            Occupancy::Commercial => LineOfBusiness::Casualty,
            Occupancy::Industrial => LineOfBusiness::Energy,
            Occupancy::Public => LineOfBusiness::Marine,
        }
    }
}

impl std::fmt::Display for LineOfBusiness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A dimension segments can be filtered and grouped by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dimension {
    /// The reinsurance layer the segment belongs to.
    Layer,
    /// The peril that generated the segment's losses.
    Peril,
    /// The geographic region of the underlying exposures.
    Region,
    /// The line of business written.
    Lob,
}

impl Dimension {
    /// All dimensions, in canonical display order.
    pub const ALL: [Dimension; 4] = [
        Dimension::Layer,
        Dimension::Peril,
        Dimension::Region,
        Dimension::Lob,
    ];

    /// The dimension's name as used in query text.
    pub fn name(&self) -> &'static str {
        match self {
            Dimension::Layer => "layer",
            Dimension::Peril => "peril",
            Dimension::Region => "region",
            Dimension::Lob => "lob",
        }
    }
}

impl std::fmt::Display for Dimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The dimension tags of one store segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// The layer the segment's losses belong to.
    pub layer: LayerId,
    /// The peril that generated the losses.
    pub peril: Peril,
    /// The region of the underlying exposures.
    pub region: Region,
    /// The line of business written.
    pub lob: LineOfBusiness,
}

impl SegmentMeta {
    /// Creates a fully specified segment tag.
    pub fn new(layer: LayerId, peril: Peril, region: Region, lob: LineOfBusiness) -> Self {
        Self {
            layer,
            peril,
            region,
            lob,
        }
    }
}

impl std::fmt::Display for SegmentMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.layer, self.peril, self.region, self.lob
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lob_codes_unique() {
        let codes: std::collections::BTreeSet<_> =
            LineOfBusiness::ALL.iter().map(|l| l.code()).collect();
        assert_eq!(codes.len(), LineOfBusiness::ALL.len());
    }

    #[test]
    fn occupancy_mapping_covers_all() {
        for occ in Occupancy::ALL {
            let _ = LineOfBusiness::from(occ);
        }
    }

    #[test]
    fn meta_display_is_compact() {
        let meta = SegmentMeta::new(
            LayerId(3),
            Peril::Hurricane,
            Region::Europe,
            LineOfBusiness::Property,
        );
        assert_eq!(meta.to_string(), "L3/HU/EUR/PROP");
    }

    #[test]
    fn serde_round_trip() {
        let meta = SegmentMeta::new(
            LayerId(1),
            Peril::Flood,
            Region::Japan,
            LineOfBusiness::Marine,
        );
        let json = serde_json::to_string(&meta).unwrap();
        assert_eq!(serde_json::from_str::<SegmentMeta>(&json).unwrap(), meta);
    }
}
