//! Latency accounting and server counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Per-request timing attribution, attached to every successful reply.
///
/// `queue_micros` covers admission to batch-execution start — it includes
/// the batch window the scheduler deliberately held the request for.
/// `exec_micros` is the wall-clock of the fused batch scan the request rode
/// in (shared by every request of the batch, not divided among them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTimings {
    /// Microseconds between `submit` and the start of the batch execution.
    pub queue_micros: u64,
    /// Microseconds the batch execution took.
    pub exec_micros: u64,
    /// Number of requests coalesced into the batch this request rode in.
    pub batch_size: u32,
}

/// Monotonic server counters, updated lock-free by the submit path and the
/// workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub batches: AtomicU64,
    pub largest_batch: AtomicU64,
    pub max_queue_depth: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub partial_hits: AtomicU64,
    pub partial_misses: AtomicU64,
    pub refreshes: AtomicU64,
}

impl Counters {
    pub fn bump_max(cell: &AtomicU64, observed: u64) {
        cell.fetch_max(observed, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            partial_misses: self.partial_misses.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the server counters (the `stats` protocol
/// command returns this as JSON).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (`Overloaded`).
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error after admission.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub largest_batch: u64,
    /// Deepest queue observed at submit time.
    pub max_queue_depth: u64,
    /// Unique batch queries answered from the generation-keyed result
    /// cache without scanning.
    pub cache_hits: u64,
    /// Unique batch queries that had to scan (then populated the cache).
    pub cache_misses: u64,
    /// Per-shard partial aggregates reused from the partial cache on a
    /// trial-sharded catalog: each hit is one shard's trial window that
    /// did **not** need rescanning for a query that missed the result
    /// cache.
    pub partial_hits: u64,
    /// Per-shard trial windows that had to be rescanned (then populated
    /// the partial cache).
    pub partial_misses: u64,
    /// Store refreshes that made newly committed segments visible.
    pub refreshes: u64,
}

impl StatsSnapshot {
    /// Mean requests per executed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }

    /// Fraction of unique batch queries answered from the result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-shard trial windows served from cached partials
    /// (trial-sharded catalogs only; 0 when the partial path never ran).
    pub fn partial_hit_rate(&self) -> f64 {
        let total = self.partial_hits + self.partial_misses;
        if total == 0 {
            0.0
        } else {
            self.partial_hits as f64 / total as f64
        }
    }
}

/// The `p`-th percentile (0–100) of an **ascending-sorted** sample set,
/// by the nearest-rank method.  Returns 0 for an empty set.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn snapshot_mean_batch() {
        let counters = Counters::default();
        assert_eq!(counters.snapshot().mean_batch(), 0.0);
        counters.completed.store(30, Ordering::Relaxed);
        counters.batches.store(10, Ordering::Relaxed);
        Counters::bump_max(&counters.largest_batch, 5);
        Counters::bump_max(&counters.largest_batch, 3);
        let snap = counters.snapshot();
        assert_eq!(snap.mean_batch(), 3.0);
        assert_eq!(snap.largest_batch, 5);
    }
}
