//! Synthetic workload construction with exactly controlled shape.

use catrisk_engine::input::{AnalysisInput, AnalysisInputBuilder};
use catrisk_eventgen::yet::{EventOccurrence, YetBuilder};
use catrisk_finterms::terms::{FinancialTerms, LayerTerms};
use catrisk_lookup::LookupKind;
use catrisk_simkit::distributions::{Distribution, LogNormal, Poisson};
use catrisk_simkit::rng::RngFactory;

/// The shape of an aggregate-analysis workload.
///
/// The defaults are the *bench-scale* problem used by the Criterion benches
/// and the `figures` harness; [`WorkloadSpec::paper_scale`] is the paper's
/// standard problem (1 M trials × 1000 events × 15 ELTs — ~15 billion
/// lookups), which is practical for the simulated-GPU timing model but slow
/// for wall-clock CPU sweeps on a laptop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Size of the stochastic event catalog (event ids are `0..num_events`).
    pub num_events: u32,
    /// Number of trials in the Year Event Table.
    pub trials: usize,
    /// Mean number of events per trial (Poisson distributed per trial).
    pub events_per_trial: f64,
    /// Number of ELTs available to layers.
    pub num_elts: usize,
    /// Number of `(event, loss)` records per ELT.
    pub elt_records: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Number of ELTs covered by each layer.
    pub elts_per_layer: usize,
    /// Lookup structure used for the ELTs.
    pub lookup: LookupKind,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::bench_scale()
    }
}

impl WorkloadSpec {
    /// The default bench-scale problem: large enough to be memory-access
    /// bound, small enough for repeated wall-clock measurement.
    pub fn bench_scale() -> Self {
        Self {
            num_events: 200_000,
            trials: 20_000,
            events_per_trial: 1_000.0,
            num_elts: 15,
            elt_records: 15_000,
            num_layers: 1,
            elts_per_layer: 15,
            lookup: LookupKind::Direct,
            seed: 2012,
        }
    }

    /// A small smoke-test problem used by unit tests.
    pub fn tiny() -> Self {
        Self {
            num_events: 2_000,
            trials: 200,
            events_per_trial: 50.0,
            num_elts: 4,
            elt_records: 300,
            num_layers: 2,
            elts_per_layer: 3,
            lookup: LookupKind::Direct,
            seed: 7,
        }
    }

    /// The paper's standard problem size (§III.B): 1 M trials, 1000 events
    /// per trial, one layer of 15 ELTs over a 2 M-event catalog.
    pub fn paper_scale() -> Self {
        Self {
            num_events: 2_000_000,
            trials: 1_000_000,
            events_per_trial: 1_000.0,
            num_elts: 15,
            elt_records: 20_000,
            num_layers: 1,
            elts_per_layer: 15,
            lookup: LookupKind::Direct,
            seed: 2012,
        }
    }

    /// Total expected number of ELT lookups (`trials × events/trial × ELTs
    /// per layer × layers`).
    pub fn expected_lookups(&self) -> f64 {
        self.trials as f64
            * self.events_per_trial
            * self.elts_per_layer as f64
            * self.num_layers as f64
    }

    /// Scales the trial count (used by Fig. 2b).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Scales the events per trial (used by Fig. 2d).
    pub fn with_events_per_trial(mut self, events: f64) -> Self {
        self.events_per_trial = events;
        self
    }

    /// Sets ELTs per layer (used by Fig. 2a).
    pub fn with_elts_per_layer(mut self, elts: usize) -> Self {
        self.elts_per_layer = elts;
        self.num_elts = self.num_elts.max(elts);
        self
    }

    /// Sets the number of layers (used by Fig. 2c).
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.num_layers = layers;
        self
    }

    /// Sets the lookup structure (used by the lookup ablation).
    pub fn with_lookup(mut self, lookup: LookupKind) -> Self {
        self.lookup = lookup;
        self
    }
}

/// Builds the analysis input for a workload specification.
///
/// Event losses are log-normally distributed (heavy tailed, like real ELTs);
/// trial event counts are Poisson around `events_per_trial`; every layer
/// covers a distinct rotation of the ELT list and carries representative
/// per-occurrence and aggregate terms so all four steps of the algorithm do
/// real work.
pub fn build_input(spec: &WorkloadSpec) -> AnalysisInput {
    assert!(
        spec.elts_per_layer <= spec.num_elts,
        "layers cannot cover more ELTs than exist"
    );
    let factory = RngFactory::new(spec.seed).derive("bench-workload");
    let mut builder = AnalysisInputBuilder::new();
    builder.with_lookup(spec.lookup);

    // Year Event Table: Poisson number of uniformly drawn events per trial.
    let count_dist = Poisson::new(spec.events_per_trial).expect("positive mean");
    let mut yet = YetBuilder::new(
        spec.num_events,
        spec.trials,
        spec.events_per_trial as usize + 8,
    );
    let yet_factory = factory.derive("yet");
    let mut trial_buffer: Vec<EventOccurrence> = Vec::new();
    for t in 0..spec.trials {
        let mut rng = yet_factory.stream(t as u64);
        let n = count_dist.sample(&mut rng) as usize;
        trial_buffer.clear();
        trial_buffer.reserve(n);
        for i in 0..n {
            trial_buffer.push(EventOccurrence {
                event: rng.below(u64::from(spec.num_events)) as u32,
                time: 365.0 * (i as f32 + 0.5) / n.max(1) as f32,
            });
        }
        yet.push_sorted_trial(&trial_buffer);
    }
    builder.set_yet(yet.build());

    // ELTs: heavy-tailed losses over uniformly drawn event ids.
    let loss_dist = LogNormal::from_mean_cv(250_000.0, 2.0).expect("valid");
    let elt_factory = factory.derive("elts");
    for e in 0..spec.num_elts {
        let mut rng = elt_factory.stream(e as u64);
        let mut pairs = Vec::with_capacity(spec.elt_records);
        for _ in 0..spec.elt_records {
            pairs.push((
                rng.below(u64::from(spec.num_events)) as u32,
                loss_dist.sample(&mut rng),
            ));
        }
        let terms = FinancialTerms::new(10_000.0, 5_000_000.0, 0.9, 1.0).expect("valid");
        builder.add_elt(&pairs, terms);
    }

    // Layers: rotations of the ELT list under representative XL terms.
    for l in 0..spec.num_layers {
        let indices: Vec<usize> = (0..spec.elts_per_layer)
            .map(|i| (l + i) % spec.num_elts)
            .collect();
        let terms =
            LayerTerms::new(100_000.0, 2_000_000.0, 500_000.0, 10_000_000.0).expect("valid");
        builder.add_layer_over(&indices, terms);
    }

    builder
        .build()
        .expect("workload construction is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::sequential::SequentialEngine;

    #[test]
    fn tiny_workload_matches_spec() {
        let spec = WorkloadSpec::tiny();
        let input = build_input(&spec);
        assert_eq!(input.num_trials(), spec.trials);
        assert_eq!(input.elts().len(), spec.num_elts);
        assert_eq!(input.layers().len(), spec.num_layers);
        assert_eq!(input.layers()[0].num_elts(), spec.elts_per_layer);
        let avg = input.yet().avg_events_per_trial();
        assert!((avg - spec.events_per_trial).abs() < 5.0, "avg {avg}");
        // The workload produces non-trivial losses.
        let out = SequentialEngine::new().run(&input);
        assert!(out.layer(0).mean_loss() > 0.0);
    }

    #[test]
    fn workload_is_deterministic() {
        let spec = WorkloadSpec::tiny();
        let a = SequentialEngine::new().run(&build_input(&spec));
        let b = SequentialEngine::new().run(&build_input(&spec));
        assert_eq!(a.max_abs_difference(&b), 0.0);
    }

    #[test]
    fn sweep_helpers_adjust_shape() {
        let spec = WorkloadSpec::tiny()
            .with_trials(77)
            .with_events_per_trial(20.0);
        let input = build_input(&spec);
        assert_eq!(input.num_trials(), 77);
        assert!(input.yet().avg_events_per_trial() < 30.0);

        let spec = WorkloadSpec::tiny().with_elts_per_layer(4).with_layers(3);
        let input = build_input(&spec);
        assert_eq!(input.layers().len(), 3);
        assert_eq!(input.layers()[2].num_elts(), 4);

        let spec = WorkloadSpec::tiny().with_lookup(LookupKind::Sorted);
        let input = build_input(&spec);
        assert_eq!(input.elts()[0].lookup.kind(), LookupKind::Sorted);
    }

    #[test]
    fn expected_lookups_formula() {
        let spec = WorkloadSpec::paper_scale();
        assert!((spec.expected_lookups() - 15.0e9).abs() < 1.0);
        assert_eq!(WorkloadSpec::default(), WorkloadSpec::bench_scale());
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn invalid_spec_panics() {
        let mut spec = WorkloadSpec::tiny();
        spec.elts_per_layer = spec.num_elts + 1;
        build_input(&spec);
    }
}
