//! Hazard footprints: translating catalog events into local intensities.
//!
//! A catastrophe model "quantifies the hazard intensity at the exposure
//! site" (paper §I).  Real models use physical wind fields, ground-motion
//! prediction equations and hydraulic models; this substrate uses compact
//! parametric stand-ins with the same interface and qualitative behaviour:
//! every catalog event has a deterministic footprint centre inside its
//! region, an intensity that decays with distance, and a peril-specific
//! footprint radius, so severe events affect many locations strongly and
//! small events affect few locations weakly.

use catrisk_eventgen::catalog::CatalogEvent;
use catrisk_eventgen::peril::Peril;
use catrisk_simkit::rng::mix;

use crate::exposure::Location;

/// Peril-specific footprint parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintParams {
    /// Radius (in normalised region coordinates) within which the event
    /// produces damaging intensities, for the most severe event of the peril.
    pub max_radius: f64,
    /// Exponent of the distance decay (higher = faster decay).
    pub decay: f64,
}

impl FootprintParams {
    /// Default parameters of a peril.
    pub fn for_peril(peril: Peril) -> Self {
        match peril {
            // Hurricanes have very large footprints with gradual decay.
            Peril::Hurricane => Self {
                max_radius: 0.60,
                decay: 1.5,
            },
            // Earthquake shaking attenuates quickly with distance.
            Peril::Earthquake => Self {
                max_radius: 0.35,
                decay: 2.5,
            },
            // Floods are spatially extensive but shallow at the margins.
            Peril::Flood => Self {
                max_radius: 0.40,
                decay: 2.0,
            },
            // Tornado outbreak swaths are comparatively narrow.
            Peril::Tornado => Self {
                max_radius: 0.15,
                decay: 3.0,
            },
            // Winter storms cover very large areas.
            Peril::WinterStorm => Self {
                max_radius: 0.70,
                decay: 1.2,
            },
            // Wildfire perimeters are localised.
            Peril::Wildfire => Self {
                max_radius: 0.20,
                decay: 2.5,
            },
        }
    }
}

/// The hazard model: computes local intensities of catalog events at
/// exposure locations.
#[derive(Debug, Clone, Copy, Default)]
pub struct HazardModel;

impl HazardModel {
    /// Creates the default hazard model.
    pub fn new() -> Self {
        Self
    }

    /// Deterministic footprint centre of an event, derived from the event id
    /// so that every ELT built from the same catalog sees the same footprint
    /// (the catalog does not carry explicit coordinates).
    pub fn footprint_center(&self, event: &CatalogEvent) -> (f64, f64) {
        let h = mix(0xF00D_F00D, u64::from(event.id));
        let x = (h >> 32) as f64 / u32::MAX as f64;
        let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
        (x, y)
    }

    /// Local hazard intensity of `event` at `location`, in `[0, 1]`.
    ///
    /// Returns 0 when the location is outside the event's region or outside
    /// the footprint radius.
    pub fn local_intensity(&self, event: &CatalogEvent, location: &Location) -> f64 {
        if event.region != location.region {
            return 0.0;
        }
        let params = FootprintParams::for_peril(event.peril);
        let (cx, cy) = self.footprint_center(event);
        let dx = location.x - cx;
        let dy = location.y - cy;
        let distance = (dx * dx + dy * dy).sqrt();
        // Footprint radius scales with the event's severity.
        let radius = params.max_radius * (0.25 + 0.75 * event.intensity);
        if distance >= radius {
            return 0.0;
        }
        // Smooth decay from full intensity at the centre to zero at the edge.
        let falloff = (1.0 - distance / radius).powf(params.decay);
        (event.intensity * falloff).clamp(0.0, 1.0)
    }

    /// Fraction of the unit square covered by the event's footprint; a cheap
    /// upper bound used by tests and by the runner's statistics.
    pub fn footprint_area(&self, event: &CatalogEvent) -> f64 {
        let params = FootprintParams::for_peril(event.peril);
        let radius = params.max_radius * (0.25 + 0.75 * event.intensity);
        (std::f64::consts::PI * radius * radius).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposure::{Construction, Occupancy};
    use catrisk_eventgen::peril::Region;

    fn event(id: u32, peril: Peril, region: Region, intensity: f64) -> CatalogEvent {
        CatalogEvent {
            id,
            peril,
            region,
            annual_rate: 0.01,
            intensity,
        }
    }

    fn location(region: Region, x: f64, y: f64) -> Location {
        Location {
            id: 0,
            region,
            x,
            y,
            construction: Construction::Masonry,
            occupancy: Occupancy::Commercial,
            year_built: 1990,
            tiv: 1.0e6,
            site_deductible: 0.0,
            site_limit: f64::INFINITY,
        }
    }

    #[test]
    fn wrong_region_has_zero_intensity() {
        let hazard = HazardModel::new();
        let ev = event(1, Peril::Hurricane, Region::Caribbean, 0.9);
        let loc = location(Region::Europe, 0.5, 0.5);
        assert_eq!(hazard.local_intensity(&ev, &loc), 0.0);
    }

    #[test]
    fn intensity_peaks_at_center_and_decays() {
        let hazard = HazardModel::new();
        let ev = event(7, Peril::Earthquake, Region::Japan, 1.0);
        let (cx, cy) = hazard.footprint_center(&ev);
        let at_center = hazard.local_intensity(&ev, &location(Region::Japan, cx, cy));
        assert!(at_center > 0.9, "intensity at epicentre {at_center}");
        let near = hazard.local_intensity(&ev, &location(Region::Japan, cx + 0.05, cy));
        let far = hazard.local_intensity(&ev, &location(Region::Japan, cx + 0.2, cy));
        assert!(
            at_center >= near && near >= far,
            "{at_center} >= {near} >= {far}"
        );
        let outside = hazard.local_intensity(&ev, &location(Region::Japan, cx + 0.9, cy + 0.9));
        assert_eq!(outside, 0.0);
    }

    #[test]
    fn footprint_center_is_deterministic_and_in_unit_square() {
        let hazard = HazardModel::new();
        for id in 0..100u32 {
            let ev = event(id, Peril::Flood, Region::Europe, 0.5);
            let (x, y) = hazard.footprint_center(&ev);
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
            assert_eq!(hazard.footprint_center(&ev), (x, y));
        }
        let a = hazard.footprint_center(&event(1, Peril::Flood, Region::Europe, 0.5));
        let b = hazard.footprint_center(&event(2, Peril::Flood, Region::Europe, 0.5));
        assert_ne!(a, b);
    }

    #[test]
    fn severe_events_reach_further() {
        let hazard = HazardModel::new();
        let weak = event(11, Peril::Hurricane, Region::Caribbean, 0.1);
        let strong = event(11, Peril::Hurricane, Region::Caribbean, 1.0);
        let (cx, cy) = hazard.footprint_center(&weak);
        let probe = location(Region::Caribbean, (cx + 0.3).min(1.0), cy);
        assert!(hazard.local_intensity(&strong, &probe) >= hazard.local_intensity(&weak, &probe));
        assert!(hazard.footprint_area(&strong) > hazard.footprint_area(&weak));
    }

    #[test]
    fn intensity_bounded_by_unit_interval() {
        let hazard = HazardModel::new();
        for peril in Peril::ALL {
            let ev = event(3, peril, Region::NorthAmericaEast, 1.0);
            let (cx, cy) = hazard.footprint_center(&ev);
            for dx in [0.0, 0.01, 0.1, 0.3, 0.7] {
                let v = hazard.local_intensity(
                    &ev,
                    &location(Region::NorthAmericaEast, (cx + dx).min(1.0), cy),
                );
                assert!((0.0..=1.0).contains(&v), "{peril} at dx={dx}: {v}");
            }
        }
    }

    #[test]
    fn footprint_area_bounded() {
        let hazard = HazardModel::new();
        for peril in Peril::ALL {
            let ev = event(9, peril, Region::Oceania, 1.0);
            let a = hazard.footprint_area(&ev);
            assert!(a > 0.0 && a <= 1.0, "{peril}: {a}");
        }
    }
}
