//! Strategies: value generators composable with `prop_map`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.uniform() as $ty;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1_000 {
            let u = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (0.0..2.5f64).generate(&mut rng);
            assert!((0.0..2.5).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = (0u32..10, 0.0..1.0f64).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }
}
