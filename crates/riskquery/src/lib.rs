//! # catrisk-riskquery
//!
//! A QuPARA-style query engine: ad-hoc aggregate risk queries over columnar
//! Year Loss Table stores.
//!
//! The Aggregate Risk Engine in `catrisk-engine` answers one fixed question
//! per run — a Year Loss Table per layer.  Production aggregate risk
//! analysis looks different: analysts fire *many* ad-hoc questions at the
//! same simulation outputs ("the TVaR of hurricane losses in Europe", "an
//! OEP curve per line of business", "mean annual loss by peril for layers
//! 2–5 over the first 100k trials").  QuPARA (Rau-Chaplin et al.) framed
//! this as query-driven portfolio aggregate risk analysis on MapReduce;
//! this crate is the same architecture in-memory and multi-core.
//!
//! ## The QuPARA mapping
//!
//! | QuPARA (MapReduce)                   | this crate                                  |
//! |--------------------------------------|---------------------------------------------|
//! | distributed file of per-layer YLTs   | [`ResultStore`]: columnar loss vectors      |
//! | query (filters + grouping + metrics) | [`Query`] AST built by [`QueryBuilder`]     |
//! | input-format filter pushdown         | [`plan`]: dictionary-coded segment pruning  |
//! | mapper: per-split partial aggregates | [`exec`]: per-shard [`PartialAggregate`]    |
//! | combiner/reducer: merge + finalize   | monoid `combine` + metric finalisation      |
//! | batch of queries per job             | [`QuerySession`]: one scan, many queries    |
//!
//! A *segment* is the store's unit of data: one YLT (one loss value per
//! trial) tagged with dictionary-encoded dimensions — layer, peril, region,
//! line of business.  Filters prune whole segments by dictionary code
//! without touching loss data (pushdown); grouping assigns surviving
//! segments to groups; per-trial loss vectors of each group are summed
//! (year losses) and max-merged (occurrence losses) shard-by-shard and the
//! shard partials are combined in segment order, so results are
//! bit-identical to a sequential scan.  Aggregates — mean, standard
//! deviation, VaR, TVaR, PML, AEP/OEP exceedance curves, attachment
//! probability, maximum loss — reuse the kernels in `catrisk-metrics`.
//!
//! ```
//! use catrisk_riskquery::prelude::*;
//! use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
//! use catrisk_eventgen::peril::{Peril, Region};
//! use catrisk_finterms::layer::LayerId;
//!
//! // A store with two segments over three trials.
//! let mut store = ResultStore::new(3);
//! let outcome = |l: f64| TrialOutcome { year_loss: l, max_occurrence_loss: l, nonzero_events: 1 };
//! store
//!     .ingest(
//!         &YearLossTable::new(LayerId(0), vec![outcome(1.0), outcome(0.0), outcome(5.0)]),
//!         SegmentMeta::new(LayerId(0), Peril::Hurricane, Region::Europe, LineOfBusiness::Property),
//!     )
//!     .unwrap();
//! store
//!     .ingest(
//!         &YearLossTable::new(LayerId(1), vec![outcome(2.0), outcome(4.0), outcome(0.0)]),
//!         SegmentMeta::new(LayerId(1), Peril::Flood, Region::Europe, LineOfBusiness::Marine),
//!     )
//!     .unwrap();
//!
//! // Mean annual loss by peril.
//! let query = QueryBuilder::new()
//!     .group_by(Dimension::Peril)
//!     .aggregate(Aggregate::Mean)
//!     .build()
//!     .unwrap();
//! let result = execute(&store, &query).unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```
//!
//! The scan pipeline is generic over [`SegmentSource`], so the same
//! queries run against the in-memory [`ResultStore`], against
//! persistent stores reopened from disk by the `catrisk-riskstore` crate
//! (whose reader hands the scan zero-copy column slices), and against a
//! whole catalog of such stores at once along either sharding axis:
//! [`ShardedSource`] is the **segment**-union view (shards own disjoint
//! segment sets over one shared trial axis; dictionaries merge, global
//! segment indices remap to shard-local column offsets), while
//! [`TrialShardedSource`] is the **trial**-union view (shards own
//! disjoint trial windows of the *same* segments — the paper's own
//! partition axis — stitched by the adjacent-window monoid, with
//! [`TrialPartial`] as the cacheable per-shard unit of reuse).  Both are
//! bit-identical to a single store holding everything; see
//! `docs/ARCHITECTURE.md` at the repository root for the two-axis
//! picture.  The
//! `catrisk-riskserve` crate serves concurrent client requests by
//! coalescing them into [`QuerySession`] batches — [`Query`] is cheap to
//! clone and `Eq + Hash` (with a total, NaN-free float treatment) exactly
//! so that front-end can dedup identical requests across submitters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dict;
pub mod dims;
pub mod exec;
pub mod kernel;
pub mod parse;
pub mod partial;
pub mod plan;
pub mod query;
pub mod result;
pub mod segmentation;
pub mod session;
pub mod sharded;
pub mod store;
pub mod trial_sharded;

pub use dict::Dictionary;
pub use dims::{Dimension, LineOfBusiness, SegmentMeta};
pub use exec::{execute, PartialAggregate};
pub use kernel::SimdLevel;
pub use parse::{parse_group_by, parse_select, parse_where};
pub use partial::{
    combine_segment_partials, combine_trial_partial_refs, combine_trial_partials,
    plan_is_shard_aligned, restrict_plan_to_segments, scan_trial_partial,
    scan_trial_partials_fused, TrialPartial,
};
pub use plan::{QueryPlan, ScanAttribution};
pub use query::{Aggregate, Basis, Filter, LossRange, Query, QueryBuilder};
pub use result::{AggValue, DimValue, QueryResult, ResultRow};
pub use segmentation::{split_pairs_by_peril, SegmentedBook, SegmentedInput};
pub use session::QuerySession;
pub use sharded::{MergedSchema, ShardedSource};
pub use store::{ResultStore, SegmentSource};
pub use trial_sharded::TrialShardedSource;

/// Convenience re-exports for query construction and execution.
pub mod prelude {
    pub use crate::dims::{Dimension, LineOfBusiness, SegmentMeta};
    pub use crate::exec::execute;
    pub use crate::query::{Aggregate, Basis, Filter, LossRange, Query, QueryBuilder};
    pub use crate::result::{AggValue, DimValue, QueryResult, ResultRow};
    pub use crate::session::QuerySession;
    pub use crate::sharded::ShardedSource;
    pub use crate::store::{ResultStore, SegmentSource};
    pub use crate::trial_sharded::TrialShardedSource;
}

/// Errors produced while building, parsing or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse(String),
    /// The query is structurally invalid (bad level, empty aggregate list,
    /// duplicate group-by dimension, ...).
    InvalidQuery(String),
    /// The store rejected an ingest or the query references data the store
    /// does not hold.
    Store(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "query parse error: {msg}"),
            QueryError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            QueryError::Store(msg) => write!(f, "store error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;
