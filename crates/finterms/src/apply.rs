//! Scalar term-application kernels shared by all engine implementations.
//!
//! Every engine variant — sequential CPU, multi-core CPU, and the simulated
//! GPU kernels — calls these same functions, which is what makes the
//! cross-engine bit-equality tests meaningful.

/// `min(max(x − retention, 0), limit)` — the fundamental excess-of-loss
/// transformation used by both occurrence terms (paper line 11) and
/// aggregate terms (paper line 15).
#[inline]
pub fn retention_and_limit(x: f64, retention: f64, limit: f64) -> f64 {
    (x - retention).max(0.0).min(limit)
}

/// Applies occurrence terms to a whole trial's per-occurrence losses in place
/// (paper lines 10–11).
pub fn apply_occurrence_terms(losses: &mut [f64], retention: f64, limit: f64) {
    for l in losses.iter_mut() {
        *l = retention_and_limit(*l, retention, limit);
    }
}

/// Replaces a slice of per-occurrence losses by its cumulative sums in place
/// (paper lines 12–13).
pub fn cumulative_sums(losses: &mut [f64]) {
    let mut acc = 0.0;
    for l in losses.iter_mut() {
        acc += *l;
        *l = acc;
    }
}

/// Applies aggregate terms to a cumulative-loss series in place
/// (paper lines 14–15).
pub fn apply_aggregate_terms(cumulative: &mut [f64], retention: f64, limit: f64) {
    for c in cumulative.iter_mut() {
        *c = retention_and_limit(*c, retention, limit);
    }
}

/// Differences a capped cumulative series back into per-occurrence
/// contributions in place (paper lines 16–17) and returns their sum — the
/// trial's aggregate loss net of all layer terms (paper lines 18–19).
///
/// Because the capped cumulative series is non-decreasing, the sum of the
/// differences telescopes to the last element; the differences themselves are
/// still materialised because downstream consumers (per-occurrence
/// reporting, reinstatement accounting) need them.
pub fn difference_and_sum(capped_cumulative: &mut [f64]) -> f64 {
    let mut prev = 0.0;
    let mut total = 0.0;
    for c in capped_cumulative.iter_mut() {
        let current = *c;
        *c = current - prev;
        total += *c;
        prev = current;
    }
    total
}

/// Convenience composition of the full per-trial layer-terms pipeline
/// (paper lines 10–19): occurrence terms, cumulative sum, aggregate terms,
/// differencing, final sum.
///
/// `occurrence_losses` must contain the per-occurrence losses already net of
/// the ELT financial terms and accumulated across the layer's ELTs.  The
/// slice is consumed as scratch space.
pub fn layer_terms_pipeline(
    occurrence_losses: &mut [f64],
    occ_retention: f64,
    occ_limit: f64,
    agg_retention: f64,
    agg_limit: f64,
) -> f64 {
    apply_occurrence_terms(occurrence_losses, occ_retention, occ_limit);
    cumulative_sums(occurrence_losses);
    apply_aggregate_terms(occurrence_losses, agg_retention, agg_limit);
    difference_and_sum(occurrence_losses)
}

/// Reference implementation of the same pipeline using per-occurrence
/// "remaining limit" accounting instead of the cumulative-difference
/// formulation.  Used only by tests and property tests to cross-validate
/// [`layer_terms_pipeline`]; the two must agree for every input.
pub fn layer_terms_reference(
    occurrence_losses: &[f64],
    occ_retention: f64,
    occ_limit: f64,
    agg_retention: f64,
    agg_limit: f64,
) -> f64 {
    let mut remaining_retention = agg_retention;
    let mut remaining_limit = agg_limit;
    let mut total = 0.0;
    for &gross in occurrence_losses {
        let occ = retention_and_limit(gross, occ_retention, occ_limit);
        // The aggregate retention erodes first.
        let after_retention = if occ <= remaining_retention {
            remaining_retention -= occ;
            0.0
        } else {
            let net = occ - remaining_retention;
            remaining_retention = 0.0;
            net
        };
        // Whatever remains consumes the aggregate limit.
        let paid = after_retention.min(remaining_limit);
        remaining_limit -= paid;
        total += paid;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_and_limit_cases() {
        assert_eq!(retention_and_limit(5.0, 10.0, 100.0), 0.0);
        assert_eq!(retention_and_limit(50.0, 10.0, 100.0), 40.0);
        assert_eq!(retention_and_limit(500.0, 10.0, 100.0), 100.0);
        assert_eq!(retention_and_limit(500.0, 0.0, f64::INFINITY), 500.0);
        assert_eq!(retention_and_limit(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn cumulative_sums_basic() {
        let mut v = [1.0, 2.0, 3.0];
        cumulative_sums(&mut v);
        assert_eq!(v, [1.0, 3.0, 6.0]);
        let mut empty: [f64; 0] = [];
        cumulative_sums(&mut empty);
    }

    #[test]
    fn difference_recovers_increments_and_sum() {
        let mut v = [1.0, 3.0, 6.0, 6.0, 10.0];
        let total = difference_and_sum(&mut v);
        assert_eq!(v, [1.0, 2.0, 3.0, 0.0, 4.0]);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn pipeline_matches_hand_computation() {
        // Occurrence terms: 10 xs 5; aggregate terms: 20 xs 10.
        let losses = [4.0, 12.0, 30.0, 8.0];
        // Net of occurrence terms: [0, 7, 10, 3]; cumulative: [0, 7, 17, 20]
        // Net of aggregate (20 xs 10): [0, 0, 7, 10]; differences: [0,0,7,3]; sum 10.
        let mut scratch = losses;
        let total = layer_terms_pipeline(&mut scratch, 5.0, 10.0, 10.0, 20.0);
        assert_eq!(total, 10.0);
        assert_eq!(scratch, [0.0, 0.0, 7.0, 3.0]);
    }

    #[test]
    fn pipeline_with_unlimited_terms_is_plain_sum() {
        let losses = [1.5, 2.5, 10.0];
        let mut scratch = losses;
        let total = layer_terms_pipeline(&mut scratch, 0.0, f64::INFINITY, 0.0, f64::INFINITY);
        assert!((total - 14.0).abs() < 1e-12);
    }

    #[test]
    fn pipeline_agrees_with_reference_on_examples() {
        let cases: Vec<(Vec<f64>, f64, f64, f64, f64)> = vec![
            (vec![4.0, 12.0, 30.0, 8.0], 5.0, 10.0, 10.0, 20.0),
            (vec![0.0, 0.0], 1.0, 2.0, 3.0, 4.0),
            (vec![100.0], 0.0, f64::INFINITY, 0.0, f64::INFINITY),
            (vec![10.0, 10.0, 10.0], 0.0, 5.0, 7.0, 6.0),
            (vec![1.0, 2.0, 3.0, 4.0, 5.0], 2.0, 2.0, 1.0, 100.0),
            (vec![1e9, 2e9, 3e9], 5e8, 1e9, 1e9, 2e9),
        ];
        for (losses, or_, ol, ar, al) in cases {
            let mut scratch = losses.clone();
            let a = layer_terms_pipeline(&mut scratch, or_, ol, ar, al);
            let b = layer_terms_reference(&losses, or_, ol, ar, al);
            assert!((a - b).abs() < 1e-6, "mismatch for {losses:?}: {a} vs {b}");
        }
    }

    #[test]
    fn occurrence_and_aggregate_term_helpers() {
        let mut v = [5.0, 15.0, 25.0];
        apply_occurrence_terms(&mut v, 10.0, 10.0);
        assert_eq!(v, [0.0, 5.0, 10.0]);
        let mut c = [5.0, 15.0, 25.0];
        apply_aggregate_terms(&mut c, 10.0, 10.0);
        assert_eq!(c, [0.0, 5.0, 10.0]);
    }
}
