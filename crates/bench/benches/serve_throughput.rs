//! Serving-throughput benchmark: the micro-batched server against the
//! one-scan-per-request baseline, at 32 concurrent clients.
//!
//! The baseline models serving without the batching layer: every client
//! request runs its own `execute` — one full scan of the loss columns per
//! request, which is exactly what a naive "thread per request" front-end
//! over the query engine would do.  The server coalesces whatever the 32
//! clients have in flight into batch windows and answers each batch with
//! one fused scan, so the same request stream costs ~`distinct scan
//! specs` scans per window instead of `requests` scans.
//!
//! The `serve_speedup` target prints the measured ratio and enforces the
//! acceptance bar: the batched server must hold >= 2x the baseline's
//! throughput on the CI-sized store.  `CATRISK_BENCH_QUICK=1` shrinks the
//! workload for smoke runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_riskserve::{Server, ServerConfig, Ticket};
use catrisk_simkit::rng::RngFactory;

const CLIENTS: usize = 32;

fn quick() -> bool {
    std::env::var("CATRISK_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

/// Requests each client fires per measured iteration.
fn requests_per_client() -> usize {
    if quick() {
        4
    } else {
        16
    }
}

/// A CI-sized production-shaped store (same construction as the
/// query-engine bench).
fn build_store(trials: usize, books: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("serve-bench");
    let mut store = ResultStore::new(trials);
    let mut segment = 0u64;
    for book in 0..books {
        let region = Region::ALL[book % Region::ALL.len()];
        let lob = LineOfBusiness::ALL[book % LineOfBusiness::ALL.len()];
        for peril in region.active_perils() {
            let mut rng = factory.stream(segment);
            segment += 1;
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(LayerId(book as u32), *peril, region, lob);
            store
                .ingest(&YearLossTable::new(LayerId(book as u32), outcomes), meta)
                .expect("ingest");
        }
    }
    store
}

fn ci_sized_store() -> ResultStore {
    let trials = if quick() { 5_000 } else { 20_000 };
    build_store(trials, 12, 2012)
}

/// The mixed interactive workload: several distinct scan specs, several
/// metric sets per spec — the request stream the 32 clients cycle
/// through.
fn query_mix() -> Vec<Query> {
    let hu_fl = |b: QueryBuilder| {
        b.with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Region)
    };
    vec![
        hu_fl(QueryBuilder::new())
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        hu_fl(QueryBuilder::new())
            .aggregate(Aggregate::Var { level: 0.99 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 10,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::StdDev)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Pml {
                return_period: 250.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_at_least(1.0e5)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .unwrap(),
    ]
}

/// 32 clients, each scanning per request — no batching layer.
fn run_baseline(store: &ResultStore, mix: &[Query], per_client: usize) {
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let mix = &mix;
            scope.spawn(move || {
                for k in 0..per_client {
                    let query = &mix[(client + k) % mix.len()];
                    criterion::black_box(execute(store, query).expect("baseline query"));
                }
            });
        }
    });
}

/// 32 clients submitting to the shared micro-batching server.
fn run_batched(server: &Server<Arc<ResultStore>>, mix: &[Query], per_client: usize) {
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let mix = &mix;
            scope.spawn(move || {
                // Keep one request in flight per client, like a TCP
                // connection handler does.
                for k in 0..per_client {
                    let query = mix[(client + k) % mix.len()].clone();
                    let ticket: Ticket = server.submit(query).expect("admitted");
                    criterion::black_box(ticket.wait().expect("served"));
                }
            });
        }
    });
}

fn serving_config() -> ServerConfig {
    ServerConfig {
        max_batch: 64,
        batch_window: Duration::from_micros(500),
        queue_depth: 4096,
        workers: 2,
        // The result cache is disabled so this bench keeps measuring the
        // *batching* speedup alone; the cold/warm cache path has its own
        // bench (`sharded_scan`).
        cache_capacity: 0,
        partial_cache_capacity: 0,
        // Telemetry stays at its serving defaults: the speedup bar below
        // is also the regression gate proving the stage histograms and
        // recorder don't tax the hot path.
        ..ServerConfig::default()
    }
}

/// The serving config with tracing at sampling=always: every request
/// builds its span tree and stamps exemplars.  The speedup bar gates the
/// full tracing cost, not just the off-by-default branch.
fn traced_config() -> ServerConfig {
    ServerConfig {
        trace_sample_every: 1,
        ..serving_config()
    }
}

fn serve_throughput(c: &mut Criterion) {
    let store = Arc::new(ci_sized_store());
    let mix = query_mix();
    let per_client = requests_per_client();
    let mut group = c.benchmark_group("serve_throughput_32_clients");
    group.sample_size(10);
    group.bench_function("baseline_scan_per_request", |b| {
        b.iter(|| run_baseline(&store, &mix, per_client))
    });
    group.bench_function("micro_batched_server", |b| {
        let server = Server::new(Arc::clone(&store), serving_config());
        b.iter(|| run_batched(&server, &mix, per_client));
        server.shutdown();
    });
    group.bench_function("micro_batched_server_traced", |b| {
        let server = Server::new(Arc::clone(&store), traced_config());
        b.iter(|| run_batched(&server, &mix, per_client));
        server.shutdown();
    });
    group.finish();
}

/// Prints the measured speedup (the acceptance number) and verifies the
/// served results are bit-identical to direct execution.
fn serve_speedup(_c: &mut Criterion) {
    let store = Arc::new(ci_sized_store());
    let mix = query_mix();
    let per_client = requests_per_client();
    let server = Server::new(Arc::clone(&store), serving_config());

    // Equivalence: a served reply matches a direct scan, bit for bit.
    for query in &mix {
        let served = server.query(query.clone()).expect("served").result;
        let direct = execute(&*store, query).expect("direct");
        assert_eq!(served, direct, "served must be bit-identical to direct");
    }

    // Warm both paths once, then take the best of several runs each.
    run_baseline(&store, &mix, 2);
    run_batched(&server, &mix, 2);
    let samples = 5;
    let baseline_secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run_baseline(&store, &mix, per_client);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let batched_secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run_batched(&server, &mix, per_client);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let requests = (CLIENTS * per_client) as f64;
    let speedup = baseline_secs / batched_secs;
    println!(
        "serve_speedup: {requests:.0} requests from {CLIENTS} clients: \
         baseline {:.0} req/s, batched {:.0} req/s, speedup {speedup:.2}x \
         (stats: {:?})",
        requests / baseline_secs,
        requests / batched_secs,
        server.stats()
    );
    assert!(
        speedup >= 2.0,
        "micro-batched serving must be >= 2x the scan-per-request baseline, got {speedup:.2}x"
    );
    server.shutdown();

    // The same bar with tracing at sampling=always: span trees and
    // exemplars must not eat the batching speedup.
    let traced_server = Server::new(Arc::clone(&store), traced_config());
    run_batched(&traced_server, &mix, 2);
    let traced_secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run_batched(&traced_server, &mix, per_client);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let traced_speedup = baseline_secs / traced_secs;
    let traced_stats = traced_server.stats();
    println!(
        "serve_speedup (traced, sampling=always): {:.0} req/s, speedup {traced_speedup:.2}x, \
         {} traces started",
        requests / traced_secs,
        traced_stats.traces_started
    );
    assert_eq!(
        traced_stats.traces_started, traced_stats.submitted,
        "sampling=always must trace every request"
    );
    assert!(
        traced_speedup >= 2.0,
        "tracing at sampling=always must keep the >= 2x bar, got {traced_speedup:.2}x"
    );
    traced_server.shutdown();
}

criterion_group!(benches, serve_throughput, serve_speedup);
criterion_main!(benches);
