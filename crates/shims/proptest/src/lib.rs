//! Minimal stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` override, range strategies over
//! integers and floats, tuple strategies, [`collection::vec`],
//! `Strategy::prop_map`, [`strategy::Just`], and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and name), there is no
//! shrinking, and failures surface as ordinary assertion panics annotated
//! with the case number.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes an ordinary test that draws `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strategy,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __run = || {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                };
                if let Err(__panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest shim: test {} failed on case {}/{} (no shrinking)",
                        stringify!($name), __case + 1, __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}
