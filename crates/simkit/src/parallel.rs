//! Parallel execution helpers.
//!
//! The aggregate risk engine parallelises over trials ("a single thread is
//! employed per trial" in the paper).  These helpers make that pattern
//! deterministic and controllable:
//!
//! * [`build_pool`] creates a rayon thread pool of an explicit size, which is
//!   how the Fig. 3a core-count sweep is driven;
//! * [`par_map_indexed`] maps a function over `0..n` in parallel and returns
//!   results in index order, so output never depends on scheduling;
//! * [`chunked_par_map`] processes indices in fixed-size chunks, the CPU
//!   analogue of the "chunking" used by the optimised GPU kernel.

use rayon::prelude::*;
use rayon::ThreadPool;

/// Builds a rayon thread pool with exactly `threads` worker threads.
///
/// A `threads` value of 0 lets rayon pick the default (number of logical
/// CPUs).
pub fn build_pool(threads: usize) -> ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon thread pool")
}

/// Maps `f` over `0..n` in parallel on the global pool; results are returned
/// in index order.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    (0..n).into_par_iter().map(f).collect()
}

/// Maps `f` over `0..n` in parallel on a specific pool.
pub fn par_map_indexed_on<T, F>(pool: &ThreadPool, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    pool.install(|| par_map_indexed(n, f))
}

/// Processes `0..n` in chunks of `chunk_size`, calling `f(chunk_range)` for
/// each chunk in parallel, and concatenates the per-chunk outputs in chunk
/// order.
///
/// `f` must return exactly `chunk.len()` results; this is checked.
pub fn chunked_par_map<T, F>(n: usize, chunk_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync + Send,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk_size)
        .map(|start| start..(start + chunk_size).min(n))
        .collect();
    let results: Vec<Vec<T>> = chunks
        .into_par_iter()
        .map(|range| {
            let expected = range.len();
            let out = f(range);
            assert_eq!(
                out.len(),
                expected,
                "chunk function returned wrong number of results"
            );
            out
        })
        .collect();
    let mut flat = Vec::with_capacity(n);
    for mut v in results {
        flat.append(&mut v);
    }
    flat
}

/// Fold-then-reduce over `0..n` in parallel: each worker folds a private
/// accumulator with `fold`, accumulators are combined with `combine`.
///
/// `identity` must be a true identity for `combine`.
pub fn par_fold<A, Fo, C, I>(n: usize, identity: I, fold: Fo, combine: C) -> A
where
    A: Send,
    I: Fn() -> A + Sync + Send,
    Fo: Fn(A, usize) -> A + Sync + Send,
    C: Fn(A, A) -> A + Sync + Send,
{
    (0..n)
        .into_par_iter()
        .fold(&identity, fold)
        .reduce(&identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_has_requested_threads() {
        let pool = build_pool(3);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map_indexed(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn par_map_on_pool_runs_inside_pool() {
        let pool = build_pool(2);
        let seen = AtomicUsize::new(0);
        let out = par_map_indexed_on(&pool, 100, |i| {
            seen.fetch_add(1, Ordering::Relaxed);
            i + 1
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn chunked_map_equals_plain_map() {
        for chunk in [1, 3, 7, 100, 1000] {
            let out = chunked_par_map(250, chunk, |range| range.map(|i| i * i).collect());
            let expected: Vec<usize> = (0..250).map(|i| i * i).collect();
            assert_eq!(out, expected, "chunk={chunk}");
        }
    }

    #[test]
    fn chunked_map_empty_input() {
        let out: Vec<usize> = chunked_par_map(0, 4, |range| range.collect());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn chunked_map_zero_chunk_panics() {
        chunked_par_map(10, 0, |range| range.collect::<Vec<_>>());
    }

    #[test]
    fn par_fold_sums_correctly() {
        let total = par_fold(10_000, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }
}
