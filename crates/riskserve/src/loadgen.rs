//! Open-loop load generation against a running TCP front-end, with an
//! optional ingest-writer companion that commits segments mid-run.
//!
//! Each client thread owns one [`RoutedClient`] over the listed replica
//! addresses and fires its share of the request schedule; with several
//! addresses the load spreads round-robin and a request whose replica
//! dies mid-exchange is resubmitted to a live sibling (counted in
//! [`LoadReport::failovers`]).  In open-loop mode (`rps > 0`) send times are fixed
//! up front — request `k` of a client is due at `start + k / client_rate`
//! — and a request's latency is measured from its *scheduled* time, so a
//! slow server accrues queueing delay instead of silently slowing the
//! generator down (no coordinated omission).  With `rps = 0` every client
//! runs closed-loop, firing as fast as replies return.
//!
//! With [`LoadgenOptions::refresh_writers`] set, a writer thread appends
//! and commits segments to the listed shard files *while the clients
//! run* — the serve-while-ingesting exercise.  One path exercises a
//! segment-axis catalog shard; listing every shard of a **trial**-axis
//! catalog appends the same new layer to each trial window per round
//! (the union only serves a layer once every window holds it), which
//! also drives the server's per-shard partial cache: between the
//! per-shard commits, queries rescan only the committed window and reuse
//! the other windows' cached partials.  The run then reports, alongside
//! the
//! usual throughput and percentiles: how many segments/commits landed,
//! whether a probe query observed rows from segments committed after the
//! run started (refresh visibility), the server's cache hit/miss/refresh
//! counters, and the latency percentiles of requests that overlapped a
//! commit-and-refresh window versus steady-state requests — the measured
//! latency impact of refresh.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskclient::{round_trip, ClientConfig, ClientError, RoutedClient};
use catrisk_riskquery::{LineOfBusiness, SegmentMeta};
use catrisk_riskstore::StoreWriter;

use catrisk_telemetry::{MetricsSnapshot, TraceRecord};

use crate::stats::{percentile, StatsSnapshot};
use crate::telemetry::stage;

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server addresses, e.g. `127.0.0.1:7433`.  One entry is classic
    /// single-server load; several entries are treated as replicas of
    /// one fleet — each client spreads requests round-robin across them
    /// through a [`RoutedClient`] and fails over to a sibling when the
    /// replica serving it dies mid-run.
    pub addrs: Vec<String>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Open-loop target rate in requests/second across all clients;
    /// `0.0` = closed loop (each client fires as fast as replies return).
    pub rps: f64,
    /// The query-line mix, cycled through per client.
    pub queries: Vec<String>,
    /// Seconds to keep retrying the initial connect (lets a just-spawned
    /// server finish opening its store).
    pub connect_timeout_secs: u64,
    /// Send a `shutdown` line after the run, stopping the server.
    pub shutdown: bool,
    /// Append+commit segments to these store files while the clients run
    /// (empty = off).  Each file must be one of the shards the server is
    /// catalog-serving, or the commits will never become visible; for a
    /// trial-axis catalog list *every* shard (each round appends the
    /// same new layer to each window, which is when the union can serve
    /// it).
    pub refresh_writers: Vec<String>,
    /// Commits the ingest writer makes (one fresh segment each).
    pub refresh_commits: usize,
    /// Pause between ingest commits, in milliseconds.
    pub refresh_every_ms: u64,
    /// Fail the run (nonzero exit from the CLI) when the post-run `stats`
    /// or `metrics` scrape cannot be fetched — CI smokes set this so a
    /// silently absent server-side report cannot pass.
    pub require_stats: bool,
    /// Send every Nth request per client with the `trace` prefix (0 =
    /// never): the reply carries the server's execution profile, and the
    /// report keeps the slowest one seen.
    pub trace_every: u64,
    /// Replace the query mix with the skewed power-law trial-window
    /// preset (see [`skewed_mix`]): the run probes the server for its
    /// trial count, then generates windowed queries whose lengths halve
    /// geometrically — a few full-axis scans among many small windows,
    /// the imbalanced per-request costs the self-scheduling scan layer
    /// exists for.  Takes precedence over [`LoadgenOptions::queries`].
    pub skewed: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addrs: vec!["127.0.0.1:7433".to_string()],
            clients: 32,
            requests: 3200,
            rps: 0.0,
            queries: default_mix(),
            connect_timeout_secs: 30,
            shutdown: false,
            refresh_writers: Vec::new(),
            refresh_commits: 4,
            refresh_every_ms: 250,
            require_stats: false,
            trace_every: 0,
            skewed: false,
        }
    }
}

/// The default mixed-query workload: distinct scan specs and metric sets,
/// so batches exercise dedup, fusion and shared order statistics.
pub fn default_mix() -> Vec<String> {
    [
        "select mean, tvar(0.99) where peril=HU|FL group by region",
        "select var(0.99), aep(10) where peril=HU|FL group by region",
        "select mean, stddev group by lob",
        "select opml(250) group by lob",
        "select mean where loss>=1e5 group by region",
        "select maxloss, attach group by peril",
        "select tvar(0.95)",
    ]
    .map(str::to_string)
    .to_vec()
}

/// The skewed power-law trial-window mix: `lines` query lines whose
/// windows start uniformly across the axis and whose lengths halve
/// geometrically (a ~`2^-k` length distribution), cycling through a few
/// select/group-by shapes.  Most requests scan a small window while a
/// few scan most of the axis — the per-request cost skew that drives
/// the scan layer's chunked self-scheduling (a static split would park
/// whole workers behind the rare long scans).  Deterministic in
/// `(trials, lines, seed)`, so a smoke run is reproducible.
pub fn skewed_mix(trials: usize, lines: usize, seed: u64) -> Vec<String> {
    let trials = trials.max(2);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let selects = ["mean", "mean, maxloss", "stddev", "tvar(0.95)", "attach"];
    let groups = ["", " group by peril", "", " group by region"];
    (0..lines.max(1))
        .map(|k| {
            let mut len = trials;
            while len > 2 && next() < 0.5 {
                len /= 2;
            }
            let start = (next() * (trials - len) as f64) as usize;
            format!(
                "select {} where trial={start}..{}{}",
                selects[k % selects.len()],
                start + len,
                groups[k % groups.len()]
            )
        })
        .collect()
}

/// The probe line the skewed preset uses to learn the served trial
/// count before generating its windows.
const TRIALS_PROBE_QUERY: &str = "select maxloss";

/// The served trial count, fetched through the control-plane router.
fn probe_trials(control: &RoutedClient) -> Result<usize, String> {
    let reply = control
        .round_trip(TRIALS_PROBE_QUERY)
        .map_err(|e| e.to_string())?;
    match reply.result {
        Some(result) if reply.ok => Ok(result.trials),
        _ => Err(format!("trial-count probe failed: {reply:?}")),
    }
}

/// The probe line the ingest exercise uses to detect refresh visibility:
/// freshly committed segments carry never-seen layer ids, so the row
/// count of a per-layer grouping strictly grows when they become visible.
const PROBE_QUERY: &str = "select maxloss group by layer";

/// What the ingest-writer companion measured.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Segments appended and committed during the run.
    pub segments: u64,
    /// Commits published during the run.
    pub commits: u64,
    /// Whether a probe query observed rows from segments committed
    /// *after* the run started — the serve-while-ingesting signal.
    pub visible: bool,
    /// p50 latency of requests overlapping a commit+refresh window, µs.
    pub during_p50_micros: u64,
    /// p99 latency of requests overlapping a commit+refresh window, µs.
    pub during_p99_micros: u64,
    /// Requests that overlapped a commit+refresh window.
    pub during_samples: u64,
    /// p50 latency of the remaining (steady-state) requests, µs.
    pub steady_p50_micros: u64,
    /// p99 latency of the remaining (steady-state) requests, µs.
    pub steady_p99_micros: u64,
    /// Steady-state requests.
    pub steady_samples: u64,
}

/// What one load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful `result` replies.
    pub ok: u64,
    /// Typed `overloaded` rejections (well-formed backpressure, counted
    /// separately from errors).
    pub overloaded: u64,
    /// Any other error reply or transport failure.
    pub errors: u64,
    /// Requests resubmitted to a sibling replica after the one serving
    /// them died mid-exchange (always 0 in single-server runs).
    pub failovers: u64,
    /// Total result rows across successful replies.
    pub rows: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Successful replies per second.
    pub throughput: f64,
    /// Latency percentiles over successful replies, in microseconds.
    pub p50_micros: u64,
    /// 90th percentile latency.
    pub p90_micros: u64,
    /// 99th percentile latency.
    pub p99_micros: u64,
    /// Worst latency.
    pub max_micros: u64,
    /// Mean batch size reported by the server across replies.
    pub mean_batch: f64,
    /// The server's counters snapshot, fetched after the run (before any
    /// shutdown) — carries the cache hit/miss and refresh counts.
    pub server_stats: Option<StatsSnapshot>,
    /// The server's full metric registry, fetched after the run (before
    /// any shutdown) — carries the per-stage latency histograms, so CI
    /// smokes can assert on *server-side* p99 per stage rather than only
    /// the client-observed round trip.
    pub server_metrics: Option<MetricsSnapshot>,
    /// The ingest-writer companion's report, when one ran.
    pub ingest: Option<IngestReport>,
    /// The slowest execution profile among traced replies (requests sent
    /// with the `trace` prefix under [`LoadgenOptions::trace_every`]).
    pub slowest_trace: Option<TraceRecord>,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} requests in {:.2}s: {} ok, {} overloaded, {} errors ({} rows)",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.ok,
            self.overloaded,
            self.errors,
            self.rows
        )?;
        writeln!(f, "throughput: {:.0} req/s", self.throughput)?;
        if self.failovers > 0 {
            writeln!(
                f,
                "failovers: {} requests resubmitted to a sibling replica",
                self.failovers
            )?;
        }
        writeln!(
            f,
            "latency: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            self.p50_micros as f64 / 1_000.0,
            self.p90_micros as f64 / 1_000.0,
            self.p99_micros as f64 / 1_000.0,
            self.max_micros as f64 / 1_000.0
        )?;
        write!(f, "mean batch size: {:.1}", self.mean_batch)?;
        if let Some(stats) = &self.server_stats {
            write!(
                f,
                "\nserver: {} batches, cache hits {} / misses {} (hit rate {:.0}%), \
                 {} refreshes",
                stats.batches,
                stats.cache_hits,
                stats.cache_misses,
                stats.cache_hit_rate() * 100.0,
                stats.refreshes
            )?;
            if stats.partial_hits + stats.partial_misses > 0 {
                write!(
                    f,
                    "\nserver partial cache: {} shard-window hits / {} rescans \
                     (hit rate {:.0}%)",
                    stats.partial_hits,
                    stats.partial_misses,
                    stats.partial_hit_rate() * 100.0
                )?;
            }
        }
        if let Some(metrics) = &self.server_metrics {
            let mut stages = Vec::new();
            for (label, name) in [
                ("queue", stage::QUEUE),
                ("scan", stage::SCAN),
                ("batch exec", stage::BATCH_EXEC),
            ] {
                if let Some(h) = metrics.histogram(name) {
                    if h.count > 0 {
                        stages.push(format!(
                            "{label} p50 {:.2} / p99 {:.2} ms ({} samples)",
                            h.percentile(50.0) as f64 / 1_000.0,
                            h.percentile(99.0) as f64 / 1_000.0,
                            h.count
                        ));
                    }
                }
            }
            if !stages.is_empty() {
                write!(f, "\nserver stages: {}", stages.join("; "))?;
            }
        }
        if let Some(trace) = &self.slowest_trace {
            write!(f, "\nslowest traced request:\n{trace}")?;
        }
        if let Some(ingest) = &self.ingest {
            write!(
                f,
                "\ningest: {} segments in {} commits, refresh visible: {}\n\
                 latency during refresh: p50 {:.2} ms, p99 {:.2} ms ({} samples); \
                 steady: p50 {:.2} ms, p99 {:.2} ms ({} samples)",
                ingest.segments,
                ingest.commits,
                if ingest.visible { "yes" } else { "NO" },
                ingest.during_p50_micros as f64 / 1_000.0,
                ingest.during_p99_micros as f64 / 1_000.0,
                ingest.during_samples,
                ingest.steady_p50_micros as f64 / 1_000.0,
                ingest.steady_p99_micros as f64 / 1_000.0,
                ingest.steady_samples
            )?;
        }
        Ok(())
    }
}

/// Per-client tallies, merged into the report at the end.
#[derive(Debug, Default)]
struct ClientOutcome {
    sent: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    rows: u64,
    batch_sum: u64,
    /// Requests this client's router resubmitted to a sibling replica.
    failovers: u64,
    /// `(send offset since run start, latency)` per successful reply, µs.
    samples: Vec<(u64, u64)>,
    /// The slowest execution profile among this client's traced replies.
    slowest_trace: Option<TraceRecord>,
}

impl ClientOutcome {
    /// Keeps `candidate` when it is slower than the current record.
    fn keep_slowest(&mut self, candidate: Option<TraceRecord>) {
        if let Some(candidate) = candidate {
            if self
                .slowest_trace
                .as_ref()
                .is_none_or(|current| candidate.total_micros > current.total_micros)
            {
                self.slowest_trace = Some(candidate);
            }
        }
    }
}

/// Row count of the layer-grouping probe query, fetched through the
/// run's control-plane router (any live replica serves the same union).
fn probe_layer_rows(control: &RoutedClient) -> Result<usize, String> {
    let reply = control.round_trip(PROBE_QUERY).map_err(|e| e.to_string())?;
    match reply.result {
        Some(result) if reply.ok => Ok(result.rows.len()),
        _ => Err(format!("probe query failed: {reply:?}")),
    }
}

/// The ingest writer's raw outcome: what landed, and when.
#[derive(Debug, Default)]
struct IngestOutcome {
    segments: u64,
    commits: u64,
    /// Commit windows as `(start, end)` offsets since run start, µs.
    windows: Vec<(u64, u64)>,
}

/// Appends and commits fresh segments to every path in `paths` while the
/// clients run: one new layer per round, appended and committed to each
/// listed shard in turn (on a trial-axis catalog that is each window's
/// slice of the same logical layer; the union serves it once the last
/// window commits).  Stops after `commits` rounds, or earlier when the
/// clients are done and at least one round has landed.
fn run_refresh_writer(
    paths: &[String],
    commits: usize,
    every: Duration,
    run_start: Instant,
    clients_done: &AtomicBool,
) -> Result<IngestOutcome, String> {
    let mut writers = paths
        .iter()
        .map(|path| {
            StoreWriter::open_append(path)
                .map_err(|e| format!("refresh writer cannot append to `{path}`: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut outcome = IngestOutcome::default();
    // Fresh layer ids no store-write world would produce, so the probe's
    // per-layer row count strictly grows when a commit becomes visible.
    let layer_base = 900_000u32 + (writers[0].num_segments() as u32);
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (writers[0].num_trials() as u64);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for k in 0..commits.max(1) {
        // A round must complete across every listed shard (a trial-axis
        // union only serves a layer once its last window commits), so
        // the early-out sits at round boundaries only.
        if k > 0 && clients_done.load(Ordering::Relaxed) && outcome.commits > 0 {
            break;
        }
        let meta = SegmentMeta::new(
            LayerId(layer_base + k as u32),
            Peril::ALL[k % Peril::ALL.len()],
            Region::ALL[k % Region::ALL.len()],
            LineOfBusiness::ALL[k % LineOfBusiness::ALL.len()],
        );
        for writer in &mut writers {
            // Pace before *every* commit, not per round: the lead-in
            // gives live traffic time to populate the caches, and on a
            // multi-shard round the gap between one shard's commit and
            // the next is exactly when the server's per-shard partial
            // cache proves itself (the committed shard rescans, the
            // others re-serve cached partials).
            std::thread::sleep(every);
            let started = run_start.elapsed().as_micros() as u64;
            let trials = writer.num_trials();
            let mut year = Vec::with_capacity(trials);
            let mut occ = Vec::with_capacity(trials);
            for _ in 0..trials {
                let loss = if next() < 0.3 { next() * 1.0e6 } else { 0.0 };
                year.push(loss);
                occ.push(loss * next());
            }
            writer
                .append_segment(meta, &year, &occ)
                .map_err(|e| e.to_string())?;
            writer.commit().map_err(|e| e.to_string())?;
            outcome.segments += 1;
            outcome.commits += 1;
            outcome
                .windows
                .push((started, run_start.elapsed().as_micros() as u64));
        }
    }
    Ok(outcome)
}

/// Extra slack after a commit window during which request latencies are
/// still attributed to the refresh: the server picks the commit up at the
/// start of its *next* batch, so the impact trails the commit slightly.
const REFRESH_SLACK_MICROS: u64 = 50_000;

/// Splits latency samples into refresh-overlapped and steady-state sets
/// and fills the ingest report's percentile fields.
fn attribute_refresh_latency(
    report: &mut IngestReport,
    samples: &[(u64, u64)],
    windows: &[(u64, u64)],
) {
    let mut during: Vec<u64> = Vec::new();
    let mut steady: Vec<u64> = Vec::new();
    for &(sent, latency) in samples {
        let reply_at = sent + latency;
        let overlaps = windows
            .iter()
            .any(|&(start, end)| sent <= end + REFRESH_SLACK_MICROS && reply_at >= start);
        if overlaps {
            during.push(latency);
        } else {
            steady.push(latency);
        }
    }
    during.sort_unstable();
    steady.sort_unstable();
    report.during_samples = during.len() as u64;
    report.during_p50_micros = percentile(&during, 50.0);
    report.during_p99_micros = percentile(&during, 99.0);
    report.steady_samples = steady.len() as u64;
    report.steady_p50_micros = percentile(&steady, 50.0);
    report.steady_p99_micros = percentile(&steady, 99.0);
}

/// Runs the load and gathers a report.  Transport-level failures are
/// counted per request, not fatal; only a total connection failure of
/// every client errors out.
pub fn run(options: &LoadgenOptions) -> Result<LoadReport, String> {
    let clients = options.clients.max(1);
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(options.connect_timeout_secs),
        read_timeout: Some(Duration::from_secs(60)),
    };
    // Control-plane router for the probes and post-run scrapes; the data
    // plane gets one router per client thread.
    let control = RoutedClient::new(options.addrs.iter().cloned(), config);
    let queries = if options.skewed {
        let trials = probe_trials(&control)?;
        skewed_mix(trials, 16, 0x5EED ^ trials as u64)
    } else if options.queries.is_empty() {
        default_mix()
    } else {
        options.queries.clone()
    };
    let ingesting = !options.refresh_writers.is_empty();

    // Baseline for the visibility probe, before any mid-run commit.
    let rows_before = if ingesting {
        Some(probe_layer_rows(&control)?)
    } else {
        None
    };

    let started = Instant::now();
    let clients_done = AtomicBool::new(false);
    let (outcomes, ingest_outcome): (Vec<Result<ClientOutcome, String>>, _) =
        std::thread::scope(|scope| {
            let writer_handle = ingesting.then(|| {
                let clients_done = &clients_done;
                let options = &options;
                scope.spawn(move || {
                    run_refresh_writer(
                        &options.refresh_writers,
                        options.refresh_commits,
                        Duration::from_millis(options.refresh_every_ms),
                        started,
                        clients_done,
                    )
                })
            });
            let handles: Vec<_> = (0..clients)
                .map(|client_index| {
                    // Split `requests` across clients, remainder to the first.
                    let share = options.requests / clients
                        + usize::from(client_index < options.requests % clients);
                    let queries = &queries;
                    let options = &options;
                    scope.spawn(move || {
                        run_client(options, client_index, share, queries, config, started)
                    })
                })
                .collect();
            let outcomes = handles
                .into_iter()
                .map(|handle| handle.join().expect("loadgen client panicked"))
                .collect();
            clients_done.store(true, Ordering::Relaxed);
            let ingest = writer_handle
                .map(|handle| handle.join().expect("refresh writer panicked"))
                .transpose();
            (outcomes, ingest)
        });
    let elapsed = started.elapsed();
    let ingest_outcome = ingest_outcome?;

    let mut merged = ClientOutcome::default();
    let mut connect_failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(outcome) => {
                merged.sent += outcome.sent;
                merged.ok += outcome.ok;
                merged.overloaded += outcome.overloaded;
                merged.errors += outcome.errors;
                merged.rows += outcome.rows;
                merged.batch_sum += outcome.batch_sum;
                merged.failovers += outcome.failovers;
                merged.samples.extend(outcome.samples);
                merged.keep_slowest(outcome.slowest_trace);
            }
            Err(err) => connect_failures.push(err),
        }
    }
    if merged.sent == 0 {
        return Err(connect_failures
            .first()
            .cloned()
            .unwrap_or_else(|| "no requests sent".to_string()));
    }

    // Visibility probe + ingest attribution, before any shutdown.
    let ingest = match ingest_outcome {
        None => None,
        Some(outcome) => {
            let mut report = IngestReport {
                segments: outcome.segments,
                commits: outcome.commits,
                ..IngestReport::default()
            };
            let before = rows_before.unwrap_or(0);
            for _ in 0..50 {
                match probe_layer_rows(&control) {
                    Ok(rows) if rows > before => {
                        report.visible = true;
                        break;
                    }
                    _ => std::thread::sleep(Duration::from_millis(100)),
                }
            }
            attribute_refresh_latency(&mut report, &merged.samples, &outcome.windows);
            Some(report)
        }
    };

    // Server counters (cache hit rate, refreshes) and the full metric
    // registry (per-stage histograms), both before any shutdown.  A
    // failed scrape warns but only fails the run under `require_stats` —
    // and the shutdown still goes out first, so a CI server never
    // lingers behind the nonzero exit.
    let server_stats = match control.round_trip("stats") {
        Ok(reply) => reply.stats,
        Err(err) => {
            eprintln!("warning: server stats fetch failed: {err}");
            None
        }
    };
    let server_metrics = match control.round_trip("metrics") {
        Ok(reply) => reply.metrics,
        Err(err) => {
            eprintln!("warning: server metrics fetch failed: {err}");
            None
        }
    };

    if options.shutdown {
        send_shutdown(&options.addrs, config)?;
    }
    if options.require_stats && (server_stats.is_none() || server_metrics.is_none()) {
        let missing = match (&server_stats, &server_metrics) {
            (None, None) => "stats and metrics",
            (None, _) => "stats",
            _ => "metrics",
        };
        return Err(format!(
            "--require-stats: could not fetch the server's {missing} report"
        ));
    }

    let mut latencies: Vec<u64> = merged.samples.iter().map(|&(_, l)| l).collect();
    latencies.sort_unstable();
    Ok(LoadReport {
        sent: merged.sent,
        ok: merged.ok,
        overloaded: merged.overloaded,
        errors: merged.errors + connect_failures.len() as u64,
        failovers: merged.failovers,
        rows: merged.rows,
        elapsed,
        throughput: merged.ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_micros: percentile(&latencies, 50.0),
        p90_micros: percentile(&latencies, 90.0),
        p99_micros: percentile(&latencies, 99.0),
        max_micros: latencies.last().copied().unwrap_or(0),
        mean_batch: if merged.ok == 0 {
            0.0
        } else {
            merged.batch_sum as f64 / merged.ok as f64
        },
        server_stats,
        server_metrics,
        ingest,
        slowest_trace: merged.slowest_trace,
    })
}

fn run_client(
    options: &LoadgenOptions,
    client_index: usize,
    share: usize,
    queries: &[String],
    config: ClientConfig,
    run_start: Instant,
) -> Result<ClientOutcome, String> {
    let mut outcome = ClientOutcome::default();
    if share == 0 {
        return Ok(outcome);
    }
    // Each client owns a router over the whole fleet, rotated by client
    // index so the pooled connections spread across replicas from the
    // first request on.  The probe both preserves the old "total connect
    // failure is fatal" semantics and seeds the health marks.
    let mut addrs = options.addrs.clone();
    if addrs.is_empty() {
        return Err("no server address configured".to_string());
    }
    let offset = client_index % addrs.len();
    addrs.rotate_left(offset);
    let routed = RoutedClient::new(addrs, config);
    if !routed.probe().iter().any(|&alive| alive) {
        return Err(format!(
            "connect: no replica of {:?} is reachable",
            options.addrs
        ));
    }

    // Open-loop pacing: this client's inter-arrival gap.
    let clients = options.clients.max(1);
    let gap = if options.rps > 0.0 {
        Duration::from_secs_f64(clients as f64 / options.rps)
    } else {
        Duration::ZERO
    };
    let start = Instant::now();
    outcome.samples.reserve(share);
    for k in 0..share {
        let scheduled = start + gap.mul_f64(k as f64);
        if gap > Duration::ZERO {
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
        }
        let query = &queries[(client_index + k) % queries.len()];
        // Every Nth request per client asks the server for its execution
        // profile; the slowest one surfaces in the report.
        let traced = options.trace_every > 0 && (k as u64).is_multiple_of(options.trace_every);
        let prefix = if traced { "trace " } else { "" };
        outcome.sent += 1;
        let sent_at = Instant::now();
        // Open loop measures from the *scheduled* send (so falling behind
        // schedule shows up as latency), closed loop from the actual one.
        let reference = if gap > Duration::ZERO {
            scheduled
        } else {
            sent_at
        };
        match routed.round_trip(&format!("{prefix}{query}")) {
            Ok(reply) if reply.ok => {
                let latency = Instant::now().saturating_duration_since(reference);
                outcome.ok += 1;
                outcome.rows += reply.result.map_or(0, |r| r.rows.len() as u64);
                outcome.batch_sum += u64::from(reply.timings.batch_size);
                outcome.keep_slowest(reply.trace);
                outcome.samples.push((
                    reference.saturating_duration_since(run_start).as_micros() as u64,
                    latency.as_micros() as u64,
                ));
            }
            Ok(reply) => {
                if reply.error.is_some_and(|e| e.kind == "overloaded") {
                    outcome.overloaded += 1;
                } else {
                    outcome.errors += 1;
                }
            }
            Err(ClientError::Transport(_)) => {
                outcome.errors += 1;
                break; // every replica is unreachable; stop this client
            }
            Err(ClientError::Protocol(_)) => outcome.errors += 1,
        }
    }
    outcome.failovers = routed.failover_count();
    Ok(outcome)
}

/// Sends a `shutdown` line to every replica and waits for the acks.
/// Replicas that already died (e.g. were killed mid-run in a failover
/// exercise) are warned about, not fatal; only a fleet where *no*
/// replica acknowledges fails.  Connect retries are capped so a dead
/// replica cannot stall the teardown for the full connect timeout.
fn send_shutdown(addrs: &[String], config: ClientConfig) -> Result<(), String> {
    let config = ClientConfig {
        connect_timeout: config.connect_timeout.min(Duration::from_secs(1)),
        ..config
    };
    let mut acked = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for addr in addrs {
        match round_trip(addr, config, "shutdown") {
            Ok(reply) if reply.kind == "shutting-down" => acked += 1,
            Ok(reply) => failures.push(format!("unexpected shutdown ack from {addr}: {reply:?}")),
            Err(err) => failures.push(format!("shutdown of {addr}: {err}")),
        }
    }
    if acked == 0 {
        return Err(failures
            .first()
            .cloned()
            .unwrap_or_else(|| "no replica to shut down".to_string()));
    }
    for failure in &failures {
        eprintln!("warning: {failure}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::StoreCatalog;
    use crate::server::{Server, ServerConfig};
    use crate::tcp::TcpFrontEnd;
    use crate::test_store::random_store;
    use std::sync::Arc;

    #[test]
    fn loadgen_drives_a_server_and_shuts_it_down() {
        let store = Arc::new(random_store(256, 16, 21));
        let front = TcpFrontEnd::bind(
            Server::new(
                Arc::clone(&store),
                ServerConfig {
                    batch_window: Duration::from_micros(200),
                    ..ServerConfig::default()
                },
            ),
            "127.0.0.1:0",
        )
        .expect("bind");
        let options = LoadgenOptions {
            addrs: vec![front.local_addr().to_string()],
            clients: 8,
            requests: 64,
            shutdown: true,
            trace_every: 4,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.sent, 64);
        assert_eq!(report.ok, 64, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        assert!(report.rows > 0);
        assert!(report.mean_batch >= 1.0);
        assert!(report.p50_micros <= report.p99_micros);
        assert!(report.p99_micros <= report.max_micros);
        let stats = report.server_stats.expect("stats fetched before shutdown");
        assert!(stats.completed >= 64);
        assert!(
            stats.cache_hits > 0,
            "the cycled query mix must produce cache hits: {stats:?}"
        );
        let metrics = report
            .server_metrics
            .as_ref()
            .expect("metrics fetched before shutdown");
        let queue = metrics.histogram(stage::QUEUE).expect("queue histogram");
        assert_eq!(
            queue.count,
            stats.completed + stats.failed,
            "one queue sample per answered request"
        );
        let scan = metrics.histogram(stage::SCAN).expect("scan histogram");
        assert_eq!(scan.count, stats.cache_misses, "one scan sample per miss");
        assert!(format!("{report}").contains("server stages:"), "{report}");
        // Every 4th request per client was traced; the report keeps the
        // slowest profile, whose arithmetic matches its reply's timings.
        let trace = report.slowest_trace.as_ref().expect("a traced reply");
        assert!(trace.id > 0);
        assert_eq!(trace.root.name, "request");
        assert!(format!("{report}").contains("slowest traced request:"));
        front.wait().expect("server exited cleanly");
    }

    #[test]
    fn refresh_writer_ingests_into_a_served_catalog() {
        // A catalog shard on disk, initially holding a couple of segments.
        let mut path = std::env::temp_dir();
        path.push(format!("catrisk-loadgen-ingest-{}.clm", std::process::id()));
        {
            let store = random_store(64, 3, 17);
            let mut writer = catrisk_riskstore::StoreWriter::create(&path, 64).unwrap();
            for s in 0..store.num_segments() {
                writer
                    .append_segment(
                        *store.meta(s),
                        store.year_losses(s),
                        store.max_occ_losses(s),
                    )
                    .unwrap();
            }
            writer.finish().unwrap();
        }
        let catalog = StoreCatalog::open([&path]).unwrap();
        let front = TcpFrontEnd::bind(Server::new(catalog, ServerConfig::default()), "127.0.0.1:0")
            .expect("bind");
        let options = LoadgenOptions {
            addrs: vec![front.local_addr().to_string()],
            clients: 4,
            requests: 48,
            refresh_writers: vec![path.to_string_lossy().into_owned()],
            refresh_commits: 2,
            refresh_every_ms: 20,
            shutdown: true,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.errors, 0, "{report}");
        let ingest = report.ingest.as_ref().expect("ingest report");
        assert!(ingest.commits >= 1, "{report}");
        assert!(
            ingest.visible,
            "segments committed mid-run must become visible: {report}"
        );
        assert_eq!(
            ingest.during_samples + ingest.steady_samples,
            report.ok,
            "every successful reply is attributed"
        );
        let stats = report.server_stats.expect("stats");
        assert!(stats.refreshes >= 1, "{stats:?}");
        front.wait().expect("clean shutdown");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refresh_writers_drive_a_trial_sharded_catalog() {
        // Two trial-window shard files cut from one 64-trial store.
        let store = random_store(64, 3, 29);
        let mut paths = Vec::new();
        for (index, (start, end)) in [(0usize, 32usize), (32, 64)].into_iter().enumerate() {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "catrisk-loadgen-trial-{}-{index}.clm",
                std::process::id()
            ));
            let mut writer = catrisk_riskstore::StoreWriter::create_with(
                &path,
                end - start,
                catrisk_riskstore::StoreOptions {
                    trial_offset: start as u64,
                    ..catrisk_riskstore::StoreOptions::default()
                },
            )
            .unwrap();
            for s in 0..store.num_segments() {
                writer
                    .append_segment(
                        *store.meta(s),
                        &store.year_losses(s)[start..end],
                        &store.max_occ_losses(s)[start..end],
                    )
                    .unwrap();
            }
            writer.finish().unwrap();
            paths.push(path);
        }
        let catalog = StoreCatalog::open(&paths).unwrap();
        assert_eq!(catalog.axis(), crate::catalog::ShardAxis::Trial);
        let front = TcpFrontEnd::bind(Server::new(catalog, ServerConfig::default()), "127.0.0.1:0")
            .expect("bind");
        // Open-loop pacing stretches the run across the ingest rounds'
        // commit points, so traffic flows both before the first commit
        // (populating per-shard partials) and between the two shards'
        // commits (where the untouched shard's partials must hit).
        let options = LoadgenOptions {
            addrs: vec![front.local_addr().to_string()],
            clients: 4,
            requests: 120,
            rps: 300.0,
            refresh_writers: paths
                .iter()
                .map(|p| p.to_string_lossy().into_owned())
                .collect(),
            refresh_commits: 1,
            refresh_every_ms: 120,
            shutdown: true,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.errors, 0, "{report}");
        let ingest = report.ingest.as_ref().expect("ingest report");
        assert_eq!(ingest.commits, 2, "one round across two windows");
        assert!(
            ingest.visible,
            "the layer must become servable once both windows commit: {report}"
        );
        let stats = report.server_stats.expect("stats");
        assert!(stats.refreshes >= 2, "{stats:?}");
        assert!(
            stats.partial_hits > 0,
            "between the two windows' commits, the untouched window must re-serve \
             its cached partials: {stats:?}"
        );
        assert!(format!("{report}").contains("partial cache"));
        front.wait().expect("clean shutdown");
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn skewed_mix_is_deterministic_and_power_law() {
        let mix = skewed_mix(10_000, 32, 7);
        assert_eq!(mix, skewed_mix(10_000, 32, 7), "same inputs, same mix");
        let mut lengths = Vec::new();
        for line in &mix {
            assert!(line.starts_with("select "), "{line}");
            let window = line
                .split("trial=")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next())
                .expect("every line carries a trial window");
            let (start, end) = window.split_once("..").expect("start..end");
            let (start, end): (usize, usize) = (start.parse().unwrap(), end.parse().unwrap());
            assert!(start < end && end <= 10_000, "{line}");
            lengths.push(end - start);
        }
        // Power law: both tails present — full-axis scans and windows at
        // least 8x shorter.
        let max = *lengths.iter().max().unwrap();
        let min = *lengths.iter().min().unwrap();
        assert!(max == 10_000, "the mix must include full-axis scans");
        assert!(min * 8 <= max, "the mix must include much shorter windows");
    }

    #[test]
    fn skewed_preset_probes_the_server_and_runs_windowed_queries() {
        let store = Arc::new(random_store(512, 8, 13));
        let front = TcpFrontEnd::bind(Server::with_defaults(Arc::clone(&store)), "127.0.0.1:0")
            .expect("bind");
        let options = LoadgenOptions {
            addrs: vec![front.local_addr().to_string()],
            clients: 4,
            requests: 32,
            skewed: true,
            shutdown: true,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.ok, 32, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        assert!(report.rows > 0);
        front.wait().expect("clean shutdown");
    }

    #[test]
    fn open_loop_pacing_measures_from_schedule() {
        let store = Arc::new(random_store(64, 4, 5));
        let front = TcpFrontEnd::bind(Server::with_defaults(store), "127.0.0.1:0").expect("bind");
        let options = LoadgenOptions {
            addrs: vec![front.local_addr().to_string()],
            clients: 2,
            requests: 10,
            rps: 200.0,
            shutdown: false,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.ok, 10);
        // 10 requests at 200 rps across 2 clients: the schedule spans
        // ~40ms, so the run cannot finish instantly.
        assert!(report.elapsed >= Duration::from_millis(30), "{report:?}");
        front.stop();
        front.wait().expect("clean stop");
    }

    #[test]
    fn connect_failure_is_a_typed_error() {
        let options = LoadgenOptions {
            addrs: vec!["127.0.0.1:1".to_string()],
            clients: 2,
            requests: 4,
            connect_timeout_secs: 0,
            ..LoadgenOptions::default()
        };
        assert!(run(&options).is_err());
    }

    #[test]
    fn loadgen_routes_around_a_dead_replica() {
        let store = Arc::new(random_store(64, 4, 11));
        let live = TcpFrontEnd::bind(Server::with_defaults(Arc::clone(&store)), "127.0.0.1:0")
            .expect("bind");
        let dead = TcpFrontEnd::bind(Server::with_defaults(Arc::clone(&store)), "127.0.0.1:0")
            .expect("bind");
        let dead_addr = dead.local_addr().to_string();
        dead.stop();
        dead.wait().expect("clean stop");
        // The dead replica is listed *first*, so round-robin routing must
        // skip it for every request; all load lands on the live one.
        let options = LoadgenOptions {
            addrs: vec![dead_addr, live.local_addr().to_string()],
            clients: 4,
            requests: 32,
            connect_timeout_secs: 1,
            shutdown: false,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.ok, 32, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        live.stop();
        live.wait().expect("clean stop");
    }

    #[test]
    fn refresh_latency_attribution_splits_on_windows() {
        let mut report = IngestReport::default();
        // One commit window at 1000..2000µs.  Sample A overlaps, B is
        // steady, C lands inside the post-commit slack.
        let samples = [
            (500, 1_000),
            (500_000, 2_000),
            (2_000 + REFRESH_SLACK_MICROS - 1, 10),
        ];
        attribute_refresh_latency(&mut report, &samples, &[(1_000, 2_000)]);
        assert_eq!(report.during_samples, 2);
        assert_eq!(report.steady_samples, 1);
        assert_eq!(report.steady_p50_micros, 2_000);
        assert!(report.during_p99_micros >= report.during_p50_micros);
    }
}
