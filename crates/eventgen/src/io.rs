//! Compact binary serialization for Year Event Tables.
//!
//! A paper-scale YET (10⁶ trials × ~1000 events) holds on the order of a
//! billion occurrences, which makes JSON impractical; the production systems
//! the paper describes keep the YET as a packed binary table.  This module
//! provides a simple length-prefixed little-endian binary format built on
//! the [`bytes`] crate plus convenience JSON helpers for the (much smaller)
//! event catalogs.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::catalog::EventCatalog;
use crate::yet::{EventOccurrence, YearEventTable, YetBuilder};
use crate::{GenError, Result};

/// Magic bytes identifying the YET binary format.
const MAGIC: &[u8; 4] = b"CYET";
/// Current format version.
const VERSION: u32 = 1;

/// Serializes a YET into the compact binary format.
pub fn yet_to_bytes(yet: &YearEventTable) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(4 + 4 + 4 + 8 + 8 + yet.num_trials() * 4 + yet.total_events() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(yet.catalog_size());
    buf.put_u64_le(yet.num_trials() as u64);
    buf.put_u64_le(yet.total_events() as u64);
    // Per-trial occurrence counts (u32 is ample: the paper's trials hold
    // ~800–1500 events).
    for i in 0..yet.num_trials() {
        buf.put_u32_le(yet.trial(i).len() as u32);
    }
    for occ in yet.occurrences_flat() {
        buf.put_u32_le(occ.event);
        buf.put_f32_le(occ.time);
    }
    buf.freeze()
}

/// Deserializes a YET from the compact binary format, validating the result.
pub fn yet_from_bytes(mut data: &[u8]) -> Result<YearEventTable> {
    if data.len() < 28 {
        return Err(GenError::Corrupt("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GenError::Corrupt("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(GenError::Corrupt(format!("unsupported version {version}")));
    }
    let catalog_size = data.get_u32_le();
    let num_trials = data.get_u64_le() as usize;
    let total_events = data.get_u64_le() as usize;

    if data.remaining() < num_trials * 4 {
        return Err(GenError::Corrupt("truncated trial counts".into()));
    }
    let mut counts = Vec::with_capacity(num_trials);
    for _ in 0..num_trials {
        counts.push(data.get_u32_le() as usize);
    }
    if counts.iter().sum::<usize>() != total_events {
        return Err(GenError::Corrupt(
            "trial counts do not sum to total events".into(),
        ));
    }
    if data.remaining() < total_events * 8 {
        return Err(GenError::Corrupt("truncated occurrence data".into()));
    }
    let mut builder = YetBuilder::new(catalog_size, num_trials, total_events / num_trials.max(1));
    let mut trial = Vec::new();
    for count in counts {
        trial.clear();
        trial.reserve(count);
        for _ in 0..count {
            let event = data.get_u32_le();
            let time = data.get_f32_le();
            trial.push(EventOccurrence { event, time });
        }
        builder.push_sorted_trial(&trial);
    }
    let yet = builder.build();
    yet.validate()?;
    Ok(yet)
}

/// Writes a YET to a file in the binary format.
pub fn write_yet(path: &std::path::Path, yet: &YearEventTable) -> Result<()> {
    std::fs::write(path, yet_to_bytes(yet))?;
    Ok(())
}

/// Reads a YET from a file in the binary format.
pub fn read_yet(path: &std::path::Path) -> Result<YearEventTable> {
    let data = std::fs::read(path)?;
    yet_from_bytes(&data)
}

/// Writes an event catalog as JSON.
pub fn write_catalog_json(path: &std::path::Path, catalog: &EventCatalog) -> Result<()> {
    let json = serde_json::to_vec(catalog)
        .map_err(|e| GenError::Corrupt(format!("serialization failed: {e}")))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Reads an event catalog from JSON.
pub fn read_catalog_json(path: &std::path::Path) -> Result<EventCatalog> {
    let data = std::fs::read(path)?;
    serde_json::from_slice(&data)
        .map_err(|e| GenError::Corrupt(format!("deserialization failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::simulate::{YetConfig, YetGenerator};
    use catrisk_simkit::rng::RngFactory;

    fn sample_yet() -> YearEventTable {
        let catalog = EventCatalog::generate(
            &CatalogConfig {
                num_events: 500,
                annual_event_budget: 50.0,
                rate_tail_index: 1.3,
            },
            &RngFactory::new(21),
        )
        .unwrap();
        YetGenerator::new(&catalog, YetConfig::with_trials(100))
            .unwrap()
            .generate(&RngFactory::new(22))
    }

    #[test]
    fn binary_round_trip() {
        let yet = sample_yet();
        let bytes = yet_to_bytes(&yet);
        let back = yet_from_bytes(&bytes).unwrap();
        assert_eq!(yet, back);
    }

    #[test]
    fn binary_round_trip_empty_trials() {
        let mut b = YetBuilder::new(10, 3, 0);
        b.push_trial(vec![]);
        b.push_trial(vec![EventOccurrence {
            event: 3,
            time: 12.5,
        }]);
        b.push_trial(vec![]);
        let yet = b.build();
        let back = yet_from_bytes(&yet_to_bytes(&yet)).unwrap();
        assert_eq!(yet, back);
    }

    #[test]
    fn corrupt_data_rejected() {
        let yet = sample_yet();
        let bytes = yet_to_bytes(&yet);

        // Truncated header.
        assert!(yet_from_bytes(&bytes[..10]).is_err());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(yet_from_bytes(&bad).is_err());
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(yet_from_bytes(&bad).is_err());
        // Truncated body.
        assert!(yet_from_bytes(&bytes[..bytes.len() - 5]).is_err());
        // Empty input.
        assert!(yet_from_bytes(&[]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("catrisk-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let yet = sample_yet();
        let path = dir.join("test.yet");
        write_yet(&path, &yet).unwrap();
        let back = read_yet(&path).unwrap();
        assert_eq!(yet, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn catalog_json_round_trip() {
        let dir = std::env::temp_dir().join("catrisk-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let catalog = EventCatalog::generate(
            &CatalogConfig {
                num_events: 64,
                annual_event_budget: 10.0,
                rate_tail_index: 1.5,
            },
            &RngFactory::new(5),
        )
        .unwrap();
        let path = dir.join("catalog.json");
        write_catalog_json(&path, &catalog).unwrap();
        let back = read_catalog_json(&path).unwrap();
        assert_eq!(catalog, back);
        std::fs::remove_file(&path).ok();
        // Missing file surfaces as an error.
        assert!(read_catalog_json(&dir.join("missing.json")).is_err());
    }

    #[test]
    fn size_is_compact() {
        let yet = sample_yet();
        let bytes = yet_to_bytes(&yet);
        // 8 bytes per occurrence + 4 bytes per trial + 28-byte header.
        let expected = 28 + yet.num_trials() * 4 + yet.total_events() * 8;
        assert_eq!(bytes.len(), expected);
        let json_size = serde_json::to_vec(&yet).unwrap().len();
        assert!(
            json_size > 2 * bytes.len(),
            "binary should be much smaller than JSON"
        );
    }
}
