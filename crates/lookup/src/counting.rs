//! Instrumented wrapper counting lookups performed against a table.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{EventId, EventLookup, LookupKind};

/// Wraps any [`EventLookup`] and counts the number of `get` calls and how
/// many of them hit a non-zero loss.
///
/// The counters are atomic so the wrapper can be shared across the parallel
/// engine's worker threads; the counts feed the Fig. 6b style breakdowns and
/// the ablation benchmark reports.
pub struct CountingLookup<L> {
    inner: L,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl<L: EventLookup> CountingLookup<L> {
    /// Wraps a lookup structure.
    pub fn new(inner: L) -> Self {
        Self {
            inner,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Total number of lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of lookups that returned a non-zero loss.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fraction of lookups that returned a non-zero loss (0 when no lookups
    /// have been performed).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }

    /// Consumes the wrapper and returns the wrapped structure.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// Borrow the wrapped structure.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: EventLookup> EventLookup for CountingLookup<L> {
    #[inline]
    fn get(&self, event: EventId) -> f64 {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let loss = self.inner.get(event);
        if loss != 0.0 {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        loss
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn kind(&self) -> LookupKind {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectAccessTable;

    #[test]
    fn counts_lookups_and_hits() {
        let table = CountingLookup::new(DirectAccessTable::from_pairs(&[(1, 5.0), (3, 2.0)], 8));
        assert_eq!(table.get(1), 5.0);
        assert_eq!(table.get(2), 0.0);
        assert_eq!(table.get(3), 2.0);
        assert_eq!(table.get(7), 0.0);
        assert_eq!(table.lookups(), 4);
        assert_eq!(table.hits(), 2);
        assert!((table.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(table.len(), 2);
        assert_eq!(table.kind(), LookupKind::Direct);
        assert!(table.memory_bytes() > 0);
        table.reset();
        assert_eq!(table.lookups(), 0);
        assert_eq!(table.hit_rate(), 0.0);
        assert_eq!(table.inner().len(), 2);
        assert_eq!(table.into_inner().len(), 2);
    }

    #[test]
    fn counting_is_thread_safe() {
        let table = CountingLookup::new(DirectAccessTable::from_pairs(&[(0, 1.0)], 4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u32 {
                        table.get(i % 4);
                    }
                });
            }
        });
        assert_eq!(table.lookups(), 4000);
        assert_eq!(table.hits(), 1000);
    }
}
