//! End-to-end fleet tests over the real `catrisk` binary: replicated
//! serve processes sharing one catalog directory, client-side failover
//! when a replica is killed mid-load, live store discovery, and the
//! `--replicas` fleet parent's spawn/drain lifecycle.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn catrisk() -> Command {
    Command::new(env!("CARGO_BIN_EXE_catrisk"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("catrisk-fleet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `catrisk store write` a small store at `out`.
fn write_store(out: &str, seed: &str) {
    let status = catrisk()
        .args([
            "store",
            "write",
            "--out",
            out,
            "--trials",
            "150",
            "--locations",
            "80",
            "--events",
            "1500",
            "--seed",
            seed,
            "--engine",
            "parallel",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "store write failed for {out}");
}

/// A spawned serve process plus the address it announced.
struct ServeProc {
    child: Child,
    addr: String,
}

/// Spawns `catrisk serve <dir>` on an ephemeral port and reads the
/// announced address (first stdout line).
fn spawn_serve(dir: &str) -> ServeProc {
    // The ring is sized so the whole run's per-batch events cannot
    // evict the one store-discovered event the test asserts on.
    let mut child = catrisk()
        .args([
            "serve",
            dir,
            "--addr",
            "127.0.0.1:0",
            "--recorder-capacity",
            "8192",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let addr = read_line(&mut child);
    ServeProc { child, addr }
}

/// Reads one stdout line from a child, leaving the pipe draining in a
/// detached thread so the child never blocks on stdout.
fn read_line(child: &mut Child) -> String {
    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
            let _ = tx.send(line.trim().to_string());
            line.clear();
        }
    });
    rx.recv_timeout(Duration::from_secs(60))
        .expect("the serve process never announced its address")
}

fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let end = Instant::now() + deadline;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() >= end {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child did not exit within {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Kill one of two replicas mid-load and drop a new store into the
/// shared catalog directory: every accepted request must still be
/// answered (loadgen exits 0, which asserts zero errors), the survivors
/// must report the failovers, and the surviving replica must have
/// discovered and served the new store.
#[test]
fn killing_a_replica_mid_load_loses_no_requests_and_discovery_continues() {
    let dir = temp_dir("failover");
    let dir_arg = dir.to_string_lossy().into_owned();
    write_store(&format!("{dir_arg}/a.clm"), "5");

    let mut survivor = spawn_serve(&dir_arg);
    let mut victim = spawn_serve(&dir_arg);

    // An open-loop run long enough (~2s) to straddle the kill and the
    // store drop below.
    let loadgen = catrisk()
        .args([
            "loadgen",
            "--addr",
            &survivor.addr,
            "--addr",
            &victim.addr,
            "--clients",
            "4",
            "--requests",
            "800",
            "--rps",
            "400",
            "--require-stats",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Mid-run: a new store lands in the watched directory...
    std::thread::sleep(Duration::from_millis(300));
    write_store(&format!("{dir_arg}/b.clm"), "7");
    // ...and one replica dies without warning.
    victim.child.kill().unwrap();
    let _ = victim.child.wait();

    let out = loadgen.wait_with_output().unwrap();
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "loadgen failed (a request was lost):\n{report}"
    );
    assert!(
        report.contains("failovers:"),
        "the report must surface the failovers:\n{report}"
    );

    // The surviving replica adopted the dropped store, and its counter
    // agrees with its flight-recorder events.
    let stats = catrisk()
        .args(["stats", "--addr", &survivor.addr, "--prometheus"])
        .output()
        .unwrap();
    let exposition = String::from_utf8_lossy(&stats.stdout);
    assert!(
        exposition.lines().any(|l| l == "discovered_stores 1"),
        "expected one discovered store in:\n{exposition}"
    );
    let recorder = catrisk()
        .args(["stats", "--addr", &survivor.addr, "--recorder"])
        .output()
        .unwrap();
    let events = String::from_utf8_lossy(&recorder.stdout);
    assert_eq!(
        events.matches("store-discovered").count(),
        1,
        "counter and recorder events must agree:\n{events}"
    );

    // And the survivor answers bit-identically to a fresh single
    // server over the same (now two-store) catalog.
    let mut fresh = spawn_serve(&dir_arg);
    let config = catrisk_riskclient::ClientConfig::default();
    let line = "select mean, tvar(0.9) group by region";
    let from_survivor = catrisk_riskclient::round_trip(&survivor.addr, config, line).unwrap();
    let from_fresh = catrisk_riskclient::round_trip(&fresh.addr, config, line).unwrap();
    assert!(from_survivor.ok && from_fresh.ok);
    assert_eq!(
        from_survivor.result, from_fresh.result,
        "failover must not change any answer"
    );

    for proc in [&mut survivor, &mut fresh] {
        proc.child.kill().unwrap();
        let _ = proc.child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `catrisk serve DIR --replicas 2`: the parent announces both replica
/// addresses, the replicas answer queries, and once every replica
/// drains a protocol shutdown the parent exits cleanly.
#[test]
fn replicas_flag_spawns_and_drains_a_fleet() {
    let dir = temp_dir("replicas");
    let dir_arg = dir.to_string_lossy().into_owned();
    write_store(&format!("{dir_arg}/a.clm"), "5");

    let mut parent = catrisk()
        .args(["serve", &dir_arg, "--replicas", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = parent.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let addr = line.trim().to_string();
        assert!(addr.contains(':'), "not an address: {addr:?}");
        addrs.push(addr);
    }

    let status = catrisk()
        .args([
            "loadgen",
            "--addr",
            &addrs[0],
            "--addr",
            &addrs[1],
            "--clients",
            "4",
            "--requests",
            "64",
            "--shutdown",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "loadgen against the fleet failed");

    // Both replicas drained their shutdown, so the parent exits 0.
    let status = wait_with_deadline(&mut parent, Duration::from_secs(60));
    assert!(status.success(), "fleet parent exited with {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
