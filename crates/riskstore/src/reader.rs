//! The verifying, zero-copy store reader — openable once, refreshable
//! forever.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::{Dictionary, LineOfBusiness, QuerySession, SegmentMeta, SegmentSource};

use crate::commit::{read_committed_state, CommittedState};
use crate::footer::{decode_layer, decode_lob, decode_peril, decode_region, Footer};
use crate::format::{crc32, read_up_to, Header, HEADER_LEN};
use crate::mmap::MapExtent;
use crate::{Result, StoreError};

/// How a [`StoreReader`] backs its loss columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionBacking {
    /// Columns are `mmap(2)`-mapped shared and read-only straight from
    /// the store file: no copy at open, and N serving processes over the
    /// same shard files share one set of page-cache pages.  The default
    /// on platforms that support it (little-endian Linux/macOS).
    #[default]
    Mapped,
    /// Columns are read into a private heap allocation at open — the
    /// pre-mmap behaviour, and the fallback on platforms without shared
    /// maps (or on big-endian hosts, which must byte-swap a copy anyway).
    Loaded,
}

impl RegionBacking {
    /// The backing [`StoreReader::open`] uses on this host: [`Mapped`]
    /// where the platform supports it, overridable to the heap region
    /// with `CATRISK_STORE_BACKING=loaded` (used by the cold-open bench
    /// to compare the two).
    ///
    /// [`Mapped`]: RegionBacking::Mapped
    pub fn default_for_host() -> RegionBacking {
        static CHOICE: std::sync::OnceLock<RegionBacking> = std::sync::OnceLock::new();
        *CHOICE.get_or_init(|| {
            if !crate::mmap::supported() {
                return RegionBacking::Loaded;
            }
            match std::env::var("CATRISK_STORE_BACKING").as_deref() {
                Ok("loaded") | Ok("heap") => RegionBacking::Loaded,
                _ => RegionBacking::Mapped,
            }
        })
    }
}

/// The loss columns of every committed segment: either `mmap(2)` extents
/// shared with the file's page cache, or a single 8-aligned heap region
/// loaded at open.
///
/// Both backings hand the query scan the same thing — a contiguous
/// `&[f64]` pair (year column then occurrence column) per segment,
/// borrowed with no copy and no deserialisation:
///
/// * **Mapped**: the writer 8-aligns every segment's `data_offset` and
///   lays the two columns out contiguously, so each segment is one
///   aligned slice of a shared read-only map.  Opening maps the committed
///   prefix once; refresh maps *only the newly committed tail* as an
///   additional extent, leaving existing extents (and any page-cache
///   pages other serving processes share) untouched.  The safety
///   contract — why slicing a shared map is sound, and how truncation
///   underneath it is handled — is documented on
///   [`MapExtent`](crate::mmap::MapExtent).
/// * **Loaded**: the heap allocation is `u64`s, so reinterpreting any
///   sub-range as `f64`s is free: same size, same alignment, and every
///   bit pattern is a valid `f64`.  Segments are packed segment-major
///   (`[seg_k year | seg_k occ | ...]`).
///
/// A region is exclusively one backing or the other; [`StoreReader`]
/// fixes the choice at open and stages every refresh with the same kind.
#[derive(Debug, Default)]
struct ColumnRegion {
    /// Heap backing: packed segment-major values.  Empty when mapped.
    bits: Vec<u64>,
    /// Mapped backing: one extent per open/refresh that absorbed
    /// segments.  Empty when loaded.
    extents: Vec<MapExtent>,
    /// Mapped backing: per segment, the extent holding it and the
    /// segment's absolute file offset (8-aligned, bounds-checked at map
    /// time).  Empty when loaded.
    spans: Vec<(u32, u64)>,
}

impl ColumnRegion {
    fn loaded_with_len(values: usize) -> Self {
        Self {
            bits: vec![0u64; values],
            ..Self::default()
        }
    }

    /// Mutable byte view for loading from the file (heap backing only).
    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: `u64` has no padding or invalid bit patterns, the
        // allocation is valid for `len * 8` bytes, and `u8` has alignment 1.
        unsafe {
            std::slice::from_raw_parts_mut(self.bits.as_mut_ptr().cast::<u8>(), self.bits.len() * 8)
        }
    }

    /// Shared byte view for checksum verification (heap backing only).
    fn bytes(&self) -> &[u8] {
        // SAFETY: as above, shared.
        unsafe { std::slice::from_raw_parts(self.bits.as_ptr().cast::<u8>(), self.bits.len() * 8) }
    }

    /// The heap region as losses.
    fn losses(&self) -> &[f64] {
        // SAFETY: `f64` and `u64` share size and alignment and every `u64`
        // bit pattern is a valid `f64` (the file stores IEEE-754 bits).
        unsafe { std::slice::from_raw_parts(self.bits.as_ptr().cast::<f64>(), self.bits.len()) }
    }

    /// One segment's contiguous column pair: `trials` year losses
    /// followed by `trials` occurrence losses.
    fn segment_pair(&self, segment: usize, trials: usize) -> &[f64] {
        if let Some(&(extent, offset)) = self.spans.get(segment) {
            let bytes = self.extents[extent as usize]
                .slice(offset, 2 * trials * 8)
                .expect("segment spans are bounds-checked at map time");
            // SAFETY: the span's file offset is 8-aligned (validated at
            // map time) and the extent base is page-aligned, so the
            // pointer is 8-aligned; the file stores IEEE-754 little-endian
            // bits and this branch only exists on little-endian hosts,
            // where every u64 bit pattern is a valid f64.
            unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), 2 * trials) }
        } else {
            let start = segment * 2 * trials;
            &self.losses()[start..start + 2 * trials]
        }
    }

    /// Converts the little-endian file bytes to native byte order in
    /// place.  A no-op on little-endian targets (and never applicable to
    /// the mapped backing, which only exists on little-endian hosts).
    fn make_native_endian(&mut self) {
        if cfg!(target_endian = "big") {
            for bits in &mut self.bits {
                *bits = u64::from_le(*bits);
            }
        }
    }

    /// Bytes this region pins: heap bytes plus mapped address space
    /// (mapped pages are file-backed and evictable, so the latter is an
    /// upper bound on residency).
    fn region_bytes(&self) -> usize {
        self.bits.len() * 8 + self.extents.iter().map(MapExtent::len).sum::<usize>()
    }

    /// Appends a staged tail region behind the existing segments (used by
    /// refresh to absorb newly committed segments).  Both regions must
    /// share a backing kind.
    fn append(&mut self, mut tail: ColumnRegion) {
        let base = self.extents.len() as u32;
        self.bits.append(&mut tail.bits);
        self.extents.append(&mut tail.extents);
        self.spans.extend(
            tail.spans
                .drain(..)
                .map(|(extent, offset)| (extent + base, offset)),
        );
    }
}

/// What absorbing a footer into an existing reader concluded.
enum Absorb {
    /// The footer extends this reader's committed prefix; the new
    /// segments were mapped in.
    Applied,
    /// The footer does not extend this reader's state — the file was
    /// replaced or rewritten, so only a full reload can be trusted.
    Diverged,
}

/// Read-only view of the committed prefix of a store file.
///
/// Opening validates everything the queries will touch — header and footer
/// checksums, dictionary pages, code columns, and the CRC of every loss
/// page — so scan-time access is unchecked slicing.  The reader implements
/// [`SegmentSource`]: pass it to `catrisk_riskquery::execute` or wrap it
/// in a [`QuerySession`] via [`StoreReader::session`], and the parallel
/// scan consumes its column slices exactly as it consumes the in-memory
/// `ResultStore`'s.
///
/// ## Refresh: what a reader observes across commits
///
/// A reader is a snapshot of one commit: later commits to the same file
/// stay invisible until [`StoreReader::refresh`] is called.  Because the
/// commit protocol is append-only (committed bytes are never rewritten —
/// see the crate docs), refresh is *incremental*: it re-reads the
/// dual-slot header, and when the commit counter has advanced it decodes
/// the new footer, validates that the footer extends this reader's
/// committed prefix (dictionary order, code columns and segment offsets
/// are append-only), and then loads and CRC-verifies **only the newly
/// committed segments' pages**, mapping them behind the already-loaded
/// columns.  Segment indices are stable across refreshes: refresh `n`
/// segments in, segment `k` still holds the same losses it held before.
/// If the file at the path no longer extends the observed prefix (it was
/// truncated, replaced or rewritten), refresh falls back to a full
/// reload — the reader then reflects whatever store now lives there.
/// Replacement detection is best-effort recovery, not part of the
/// protocol: stores are append-only by contract, and a replacement that
/// exactly reproduces the observed commit counter *and* segment count is
/// indistinguishable from no change, so it will not be observed.
///
/// [`StoreReader::commit_seq`] is the reader's *generation stamp*: it
/// advances exactly when visible data changes, which is what lets a
/// serving layer key per-query result caches on `(query, commit_seq per
/// shard)` and invalidate a shard's entries precisely when its refresh
/// observes a new commit.  [`StoreReader::peek_commit_seq`] probes a
/// file's committed generation from its 128-byte header region alone,
/// without opening, so "is a refresh worth taking a write lock for?" is
/// a two-sector read.
///
/// A reader is immutable between refreshes, so it is `Send + Sync` and
/// one instance can back any number of concurrent scans — a serving
/// front-end shares a single reader across all of its batch workers
/// without locking (refresh needs `&mut self`, so a refreshing server
/// keeps each reader behind an `RwLock` and takes the write lock only
/// when [`StoreReader::peek_commit_seq`] reports a new commit).
/// [`StoreReader::open_shared`] is the convenience constructor for the
/// lock-free immutable form; it is the same open path as
/// [`StoreReader::open`] behind an `Arc`.
#[derive(Debug, Default)]
pub struct StoreReader {
    path: PathBuf,
    num_trials: usize,
    page_trials: u32,
    trial_offset: u64,
    commit_seq: u64,
    metas: Vec<SegmentMeta>,
    /// Committed data offsets, the prefix fingerprint refresh validates.
    data_offsets: Vec<u64>,
    codes: [Vec<u32>; 4],
    layer_dict: Dictionary<LayerId>,
    peril_dict: Dictionary<Peril>,
    region_dict: Dictionary<Region>,
    lob_dict: Dictionary<LineOfBusiness>,
    columns: ColumnRegion,
    /// Backing fixed at open: every refresh stages with the same kind.
    backing: RegionBacking,
    /// One past the highest committed byte this reader has mapped or
    /// loaded — the watermark refresh probes against the live file length
    /// to detect truncation underneath a mapping before touching it.
    committed_end: u64,
    /// Wall-clock microseconds the last full open (or full reload) took.
    open_micros: u64,
    /// Optional latency sink for [`StoreReader::refresh`] calls; attached
    /// by a serving layer, never by the reader itself.
    refresh_histogram: Option<std::sync::Arc<catrisk_telemetry::Histogram>>,
}

impl StoreReader {
    /// Opens and fully validates the committed prefix of a store file,
    /// with the host's default [`RegionBacking`] (mmap where supported).
    pub fn open(path: impl AsRef<Path>) -> Result<StoreReader> {
        Self::open_with_backing(path, RegionBacking::default_for_host())
    }

    /// Opens a store with an explicit column backing.  `Mapped` fails
    /// with an I/O error on platforms without shared-map support; use
    /// [`StoreReader::open`] to take the host default.
    pub fn open_with_backing(
        path: impl AsRef<Path>,
        backing: RegionBacking,
    ) -> Result<StoreReader> {
        let opened_at = std::time::Instant::now();
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let state = read_committed_state(&mut file)?;
        let mut reader = StoreReader {
            path,
            num_trials: state.num_trials,
            page_trials: state.header.page_trials,
            trial_offset: state.header.trial_offset,
            commit_seq: state.header.commit_seq,
            backing,
            committed_end: state.committed_end,
            ..StoreReader::default()
        };
        if let Some(footer) = &state.footer {
            match reader.absorb_footer(&mut file, &state, footer)? {
                Absorb::Applied => {}
                // A fresh reader has no prefix to diverge from.
                Absorb::Diverged => unreachable!("an empty reader accepts any valid footer"),
            }
        }
        reader.open_micros = opened_at.elapsed().as_micros() as u64;
        Ok(reader)
    }

    /// Wall-clock microseconds the open (validation included) took — what a
    /// serving layer records into its `store_open_micros` histogram when it
    /// attaches a freshly opened reader.
    pub fn open_micros(&self) -> u64 {
        self.open_micros
    }

    /// Attaches a latency histogram that every subsequent
    /// [`refresh`](StoreReader::refresh) records its wall-clock microseconds
    /// into.  The attachment survives the full-reload path of refresh.
    pub fn attach_refresh_histogram(
        &mut self,
        histogram: std::sync::Arc<catrisk_telemetry::Histogram>,
    ) {
        self.refresh_histogram = Some(histogram);
    }

    /// Opens a store and wraps the reader for concurrent sharing — the
    /// form a non-refreshing multi-threaded serving front-end consumes.
    /// Identical to [`StoreReader::open`] behind an `Arc`; the open and
    /// verification path is shared, not duplicated.
    pub fn open_shared(path: impl AsRef<Path>) -> Result<std::sync::Arc<StoreReader>> {
        Ok(std::sync::Arc::new(StoreReader::open(path)?))
    }

    /// Reads the committed generation (commit counter) of a store file
    /// from its header region alone — the cheap probe a catalog runs
    /// before deciding whether a [`refresh`](StoreReader::refresh) is
    /// worth a write lock.
    pub fn peek_commit_seq(path: impl AsRef<Path>) -> Result<u64> {
        Ok(Self::peek_header(path)?.commit_seq)
    }

    /// Decodes a store file's 128-byte dual-slot header region without
    /// opening the store.  Beyond the commit counter, the header's
    /// footer offset and length act as a commit *fingerprint*: every
    /// commit appends a fresh footer at the (strictly growing) end of
    /// file, so any change a [`refresh`](StoreReader::refresh) could
    /// observe — including a replacement whose commit counter happens to
    /// match — moves at least one of the three values.
    pub fn peek_header(path: impl AsRef<Path>) -> Result<Header> {
        let mut file = File::open(path.as_ref())?;
        let mut header_bytes = [0u8; HEADER_LEN as usize];
        let got = read_up_to(&mut file, &mut header_bytes)?;
        Header::decode(&header_bytes[..got])
    }

    /// Picks up commits published since this reader's snapshot.
    ///
    /// Returns `Ok(true)` when new state became visible (newly committed
    /// segments were mapped in, or the file was replaced and fully
    /// reloaded) and `Ok(false)` when the committed generation is
    /// unchanged.  See the type-level docs for the exact observation
    /// model.  On error the reader is left exactly as it was — it keeps
    /// serving its current snapshot.
    pub fn refresh(&mut self) -> Result<bool> {
        let started = std::time::Instant::now();
        let result = self.refresh_inner();
        if let Some(histogram) = &self.refresh_histogram {
            histogram.record(started.elapsed().as_micros() as u64);
        }
        result
    }

    fn refresh_inner(&mut self) -> Result<bool> {
        let mut file = File::open(&self.path)?;
        let state = read_committed_state(&mut file)?;
        // Truncation probe: the committed region this reader absorbed must
        // still be present in full.  A shorter file means the append-only
        // contract was violated underneath us (for the mapped backing,
        // faulting the vanished pages in would SIGBUS), so nothing about
        // the current prefix can be trusted or extended: skip straight to
        // a full reload, which re-validates — and, when mapped, re-maps —
        // from scratch.  A shrunk file that no longer decodes surfaces a
        // typed [`StoreError::Truncated`] from `read_committed_state`
        // rather than a fault.
        let shrank = state.file_len < self.committed_end;
        if !shrank
            && state.header.commit_seq == self.commit_seq
            && state.num_trials == self.num_trials
            && state.footer.as_ref().map_or(0, |f| f.segments.len()) == self.metas.len()
        {
            return Ok(false);
        }
        let diverged = shrank
            || state.header.commit_seq < self.commit_seq
            || state.num_trials != self.num_trials
            || state.header.page_trials != self.page_trials
            || state.header.trial_offset != self.trial_offset;
        if !diverged {
            if let Some(footer) = &state.footer {
                if let Absorb::Applied = self.absorb_footer(&mut file, &state, footer)? {
                    return Ok(true);
                }
            }
            // A newer commit with *no* footer cannot extend anything.
        }
        // The file does not extend this reader's prefix: reload from
        // scratch and swap in the result only on success.  The telemetry
        // attachment belongs to the serving layer, not the snapshot, so it
        // carries over to the reloaded reader.
        let mut reloaded = StoreReader::open_with_backing(&self.path, self.backing)?;
        reloaded.refresh_histogram = self.refresh_histogram.take();
        *self = reloaded;
        Ok(true)
    }

    /// Absorbs a decoded footer into this reader: validates that it
    /// extends the already-absorbed prefix, then loads and verifies only
    /// the segments past it.  On [`Absorb::Applied`] the reader reflects
    /// the footer (except `commit_seq`, owned by the caller); on
    /// [`Absorb::Diverged`] and on errors the reader is untouched.
    fn absorb_footer(
        &mut self,
        file: &mut File,
        state: &CommittedState,
        footer: &Footer,
    ) -> Result<Absorb> {
        let known = self.metas.len();
        if footer.segments.len() < known {
            return Ok(Absorb::Diverged);
        }
        // Dictionaries grow append-only: re-interning the footer's values
        // into clones must reproduce the existing codes exactly.  A
        // mismatch inside the known prefix means the file was replaced; a
        // duplicate in the new tail means the footer itself is corrupt.
        let mut layer_dict = self.layer_dict.clone();
        let mut peril_dict = self.peril_dict.clone();
        let mut region_dict = self.region_dict.clone();
        let mut lob_dict = self.lob_dict.clone();
        let mut diverged = false;
        {
            let mut absorb_dict = |dim: usize, intern: &mut dyn FnMut(u32) -> Result<u32>| {
                for (code, &raw) in footer.dict_values[dim].iter().enumerate() {
                    let known_values = match dim {
                        0 => self.layer_dict.len(),
                        1 => self.peril_dict.len(),
                        2 => self.region_dict.len(),
                        _ => self.lob_dict.len(),
                    };
                    if intern(raw)? != code as u32 {
                        if code < known_values {
                            diverged = true;
                            return Ok(());
                        }
                        return Err(StoreError::Corrupt(format!(
                            "footer dictionary {dim} repeats a value at code {code}"
                        )));
                    }
                }
                Ok(())
            };
            absorb_dict(0, &mut |raw| Ok(layer_dict.intern(decode_layer(raw)?)))?;
            absorb_dict(1, &mut |raw| Ok(peril_dict.intern(decode_peril(raw)?)))?;
            absorb_dict(2, &mut |raw| Ok(region_dict.intern(decode_region(raw)?)))?;
            absorb_dict(3, &mut |raw| Ok(lob_dict.intern(decode_lob(raw)?)))?;
        }
        if diverged {
            return Ok(Absorb::Diverged);
        }
        // Code columns and the segment directory are append-only too.
        for dim in 0..4 {
            if footer.codes[dim][..known] != self.codes[dim][..known] {
                return Ok(Absorb::Diverged);
            }
        }
        if footer.segments[..known]
            .iter()
            .zip(&self.data_offsets)
            .any(|(entry, &offset)| entry.data_offset != offset)
        {
            return Ok(Absorb::Diverged);
        }

        // Load (or map) and CRC-verify the new segments into a staging
        // region, so an I/O error mid-load leaves this reader untouched.
        let tail = load_segment_columns(file, state, footer, known, self.num_trials, self.backing)?;

        self.columns.append(tail);
        self.committed_end = state.committed_end;
        self.layer_dict = layer_dict;
        self.peril_dict = peril_dict;
        self.region_dict = region_dict;
        self.lob_dict = lob_dict;
        self.codes = footer.codes.clone();
        for segment in known..footer.segments.len() {
            self.metas.push(SegmentMeta::new(
                *self.layer_dict.value(footer.codes[0][segment]),
                *self.peril_dict.value(footer.codes[1][segment]),
                *self.region_dict.value(footer.codes[2][segment]),
                *self.lob_dict.value(footer.codes[3][segment]),
            ));
        }
        self.data_offsets = footer
            .segments
            .iter()
            .map(|entry| entry.data_offset)
            .collect();
        self.commit_seq = state.header.commit_seq;
        Ok(Absorb::Applied)
    }

    /// Trials every segment holds.
    pub fn num_trials(&self) -> usize {
        self.num_trials
    }

    /// First global trial this store covers: the store holds trials
    /// `[trial_offset, trial_offset + num_trials)` of a larger logical
    /// trial axis.  Zero for a self-contained store (and for every file
    /// written before trial-axis sharding existed).  A serving catalog
    /// uses distinct offsets to detect that its shards partition the
    /// trial axis rather than the segment axis.
    pub fn trial_offset(&self) -> u64 {
        self.trial_offset
    }

    /// Trials per checksummed loss page — fixed at store creation.
    pub fn page_trials(&self) -> u32 {
        self.page_trials
    }

    /// Committed segments visible to this reader.
    pub fn num_segments(&self) -> usize {
        self.metas.len()
    }

    /// True when the store has no committed segments.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The commit sequence this reader observed — the reader's generation
    /// stamp.  Later commits to the same file are invisible (and this
    /// stamp is unchanged) until [`StoreReader::refresh`] picks them up.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// The file this reader opened (and re-reads on refresh).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The dimension tags of one segment.
    pub fn meta(&self, segment: usize) -> &SegmentMeta {
        &self.metas[segment]
    }

    /// All segment tags in segment order.
    pub fn metas(&self) -> &[SegmentMeta] {
        &self.metas
    }

    /// Bytes of loss columns this reader pins: heap bytes for the loaded
    /// backing, mapped address-space bytes for the mmap backing (an upper
    /// bound on residency — mapped pages are file-backed, shared across
    /// processes, and evictable).
    pub fn memory_bytes(&self) -> usize {
        self.columns.region_bytes()
    }

    /// How this reader backs its loss columns ([`RegionBacking::Mapped`]
    /// unless the host forced or defaulted to the heap region).
    pub fn backing(&self) -> RegionBacking {
        self.backing
    }

    /// A batched query session over this reader — the open-from-file
    /// serving path.
    pub fn session(&self) -> QuerySession<'_, StoreReader> {
        QuerySession::new(self)
    }
}

/// Loads (or maps) the loss columns of `footer.segments[from..]` into a
/// fresh staging region, verifying every directory entry's bounds and
/// every page checksum against the footer watermarks.  This is the single
/// checksum verification path — cold opens and incremental refreshes,
/// mapped and loaded backings, all go through it.
///
/// For the mapped backing, verification doubles as the fault-in pass:
/// every page of the new extent is touched while the bounds just probed
/// (directory entries against the observed file length) still hold, so a
/// file honouring the append-only contract can never SIGBUS afterwards —
/// see [`MapExtent`] for the full safety contract.
fn load_segment_columns(
    file: &mut File,
    state: &CommittedState,
    footer: &Footer,
    from: usize,
    trials: usize,
    backing: RegionBacking,
) -> Result<ColumnRegion> {
    let file_len = state.file_len;
    // Validate every directory entry against the real file size before
    // allocating anything: header and footer values are file-controlled,
    // and a corrupt (or hostile, CRCs are forgeable) file must produce a
    // typed error, not a capacity panic or a wild allocation.  The
    // bounds below also cap the region size: per entry, two columns of
    // `trials` f64s must fit inside the file.
    let new_segments = footer.segments.len() - from;
    let segment_bytes = (trials as u64)
        .checked_mul(16)
        .filter(|&bytes| bytes <= file_len)
        .ok_or_else(|| StoreError::Truncated {
            what: format!("a {trials}-trial segment needs more bytes than the file's {file_len}"),
        });
    let segment_bytes = if new_segments == 0 { 0 } else { segment_bytes? };
    for (index, entry) in footer.segments.iter().enumerate().skip(from) {
        if entry.data_offset < HEADER_LEN
            || entry
                .data_offset
                .checked_add(segment_bytes)
                .is_none_or(|end| end > file_len)
        {
            return Err(StoreError::Truncated {
                what: format!(
                    "segment {index} data at offset {} exceeds the file's {file_len} bytes",
                    entry.data_offset
                ),
            });
        }
    }
    // Honest segments are disjoint, so their combined bytes fit in the
    // file; this caps the region allocation at the actual file size.
    if (new_segments as u64)
        .checked_mul(segment_bytes)
        .is_none_or(|total| total > file_len)
    {
        return Err(StoreError::Corrupt(format!(
            "{new_segments} segments of {segment_bytes} bytes each exceed the file's \
             {file_len} bytes"
        )));
    }
    // Zero new bytes (or zero-width segments) need no region of either
    // kind; the empty default serves both backings.
    if new_segments == 0 || trials == 0 {
        return Ok(ColumnRegion::default());
    }

    let page_bytes = state.header.page_trials as usize * 8;
    match backing {
        RegionBacking::Loaded => {
            let mut columns = ColumnRegion::loaded_with_len(new_segments * 2 * trials);
            for (index, entry) in footer.segments.iter().enumerate().skip(from) {
                file.seek(SeekFrom::Start(entry.data_offset))?;
                let start = (index - from) * 2 * trials * 8;
                let end = start + 2 * trials * 8;
                file.read_exact(&mut columns.bytes_mut()[start..end])?;
                verify_segment_pages(&columns.bytes()[start..end], entry, page_bytes, index)?;
            }
            columns.make_native_endian();
            Ok(columns)
        }
        RegionBacking::Mapped => {
            // Mapping hands the scan aligned `&[f64]` views straight into
            // the file, so the alignment the writer guarantees becomes a
            // hard admission requirement here: an unaligned directory
            // offset (a corrupt or foreign file) must be a typed error,
            // not undefined behaviour.
            let mut start = u64::MAX;
            let mut end = 0u64;
            for (index, entry) in footer.segments.iter().enumerate().skip(from) {
                if entry.data_offset % 8 != 0 {
                    return Err(StoreError::Corrupt(format!(
                        "segment {index} data offset {} is not 8-aligned; cannot map",
                        entry.data_offset
                    )));
                }
                start = start.min(entry.data_offset);
                end = end.max(entry.data_offset + segment_bytes);
            }
            // One extent covers every new segment (the writer appends, so
            // the new tail is one contiguous committed range, padding and
            // interleaved footers included).  Bounds were validated above,
            // so `end <= file_len`.
            let extent = MapExtent::map(file, start, end).map_err(StoreError::Io)?;
            let mut spans = Vec::with_capacity(new_segments);
            for (index, entry) in footer.segments.iter().enumerate().skip(from) {
                let bytes = extent
                    .slice(entry.data_offset, 2 * trials * 8)
                    .expect("entry bounds validated against file length");
                verify_segment_pages(bytes, entry, page_bytes, index)?;
                spans.push((0u32, entry.data_offset));
            }
            Ok(ColumnRegion {
                bits: Vec::new(),
                extents: vec![extent],
                spans,
            })
        }
    }
}

/// CRC-verifies one segment's column pair (`trials` year losses then
/// `trials` occurrence losses) against its directory entry's per-page
/// checksums.
fn verify_segment_pages(
    segment_bytes: &[u8],
    entry: &crate::footer::SegmentEntry,
    page_bytes: usize,
    index: usize,
) -> Result<()> {
    let (year_bytes, occ_bytes) = segment_bytes.split_at(segment_bytes.len() / 2);
    for (column, crcs, what) in [
        (year_bytes, &entry.year_page_crcs, "year-loss"),
        (occ_bytes, &entry.occ_page_crcs, "occurrence-loss"),
    ] {
        for (page_index, page) in column.chunks(page_bytes.max(1)).enumerate() {
            if crc32(page) != crcs[page_index] {
                return Err(StoreError::ChecksumMismatch {
                    what: format!("segment {index} {what} page {page_index}"),
                });
            }
        }
    }
    Ok(())
}

// The serving front-end shares one reader across worker and connection
// threads; regress this at compile time rather than at a distant use site.
const _: fn() = || {
    fn shareable<T: Send + Sync>() {}
    shareable::<StoreReader>();
};

impl SegmentSource for StoreReader {
    fn num_trials(&self) -> usize {
        self.num_trials
    }

    fn num_segments(&self) -> usize {
        self.metas.len()
    }

    fn year_losses(&self, segment: usize) -> &[f64] {
        &self.columns.segment_pair(segment, self.num_trials)[..self.num_trials]
    }

    fn max_occ_losses(&self, segment: usize) -> &[f64] {
        &self.columns.segment_pair(segment, self.num_trials)[self.num_trials..]
    }

    fn layer_codes(&self) -> &[u32] {
        &self.codes[0]
    }

    fn peril_codes(&self) -> &[u32] {
        &self.codes[1]
    }

    fn region_codes(&self) -> &[u32] {
        &self.codes[2]
    }

    fn lob_codes(&self) -> &[u32] {
        &self.codes[3]
    }

    fn layer_dict(&self) -> &Dictionary<LayerId> {
        &self.layer_dict
    }

    fn peril_dict(&self) -> &Dictionary<Peril> {
        &self.peril_dict
    }

    fn region_dict(&self) -> &Dictionary<Region> {
        &self.region_dict
    }

    fn lob_dict(&self) -> &Dictionary<LineOfBusiness> {
        &self.lob_dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{StoreOptions, StoreWriter};
    use catrisk_riskquery::prelude::*;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-reader-{}-{}.clm",
            std::process::id(),
            name
        ));
        path
    }

    fn meta(layer: u32, peril: Peril, region: Region) -> SegmentMeta {
        SegmentMeta::new(LayerId(layer), peril, region, LineOfBusiness::Property)
    }

    #[test]
    fn round_trips_columns_and_dimensions() {
        let path = temp_path("roundtrip");
        let mut writer = StoreWriter::create_with(
            &path,
            3,
            StoreOptions {
                page_trials: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 0.0, 5.5],
                &[0.5, 0.0, 5.5],
            )
            .unwrap();
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Japan),
                &[2.0, 4.0, 0.0],
                &[2.0, 3.0, 0.0],
            )
            .unwrap();
        writer.finish().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_trials(), 3);
        assert_eq!(reader.num_segments(), 2);
        assert_eq!(reader.path(), path.as_path());
        assert_eq!(SegmentSource::year_losses(&reader, 0), &[1.0, 0.0, 5.5]);
        assert_eq!(SegmentSource::max_occ_losses(&reader, 0), &[0.5, 0.0, 5.5]);
        assert_eq!(SegmentSource::year_losses(&reader, 1), &[2.0, 4.0, 0.0]);
        assert_eq!(reader.meta(1).peril, Peril::Flood);
        assert_eq!(reader.meta(1).region, Region::Japan);
        assert_eq!(reader.metas().len(), 2);
        assert_eq!(reader.peril_codes(), &[0, 1]);
        assert_eq!(*reader.peril_dict().value(1), Peril::Flood);
        assert!(reader.memory_bytes() >= 2 * 2 * 3 * 8);
        assert!(!reader.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_uncommitted_stores_read_as_empty() {
        let path = temp_path("empty");
        let mut writer = StoreWriter::create(&path, 8).unwrap();
        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 0);
        assert!(reader.is_empty());
        assert_eq!(reader.num_trials(), 8);

        // Appended but uncommitted segments stay invisible.
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[0.0; 8],
                &[0.0; 8],
            )
            .unwrap();
        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_sees_committed_prefix_while_writer_appends() {
        let path = temp_path("prefix");
        let mut writer = StoreWriter::create(&path, 2).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 2.0],
                &[1.0, 2.0],
            )
            .unwrap();
        writer.commit().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 1);
        let seq = reader.commit_seq();

        // The writer keeps going: appends + a second commit.
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Japan),
                &[3.0, 4.0],
                &[3.0, 4.0],
            )
            .unwrap();
        writer.commit().unwrap();

        // The old reader's data is untouched (committed bytes are never
        // overwritten); a fresh open sees both segments.
        assert_eq!(SegmentSource::year_losses(&reader, 0), &[1.0, 2.0]);
        let fresh = StoreReader::open(&path).unwrap();
        assert_eq!(fresh.num_segments(), 2);
        assert_eq!(fresh.commit_seq(), seq + 1);
        assert_eq!(SegmentSource::year_losses(&fresh, 1), &[3.0, 4.0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refresh_maps_newly_committed_segments() {
        let path = temp_path("refresh");
        let mut writer = StoreWriter::create_with(
            &path,
            4,
            StoreOptions {
                page_trials: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 2.0, 3.0, 4.0],
                &[1.0, 1.0, 2.0, 2.0],
            )
            .unwrap();
        writer.commit().unwrap();

        let mut reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 1);
        let seq = reader.commit_seq();
        assert_eq!(StoreReader::peek_commit_seq(&path).unwrap(), seq);

        // Nothing new: refresh is a cheap no-op.
        assert!(!reader.refresh().unwrap());
        assert_eq!(reader.commit_seq(), seq);

        // Two more commits land — one with a brand-new dictionary value.
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Japan),
                &[5.0, 6.0, 7.0, 8.0],
                &[5.0, 5.0, 6.0, 6.0],
            )
            .unwrap();
        writer.commit().unwrap();
        writer
            .append_segment(
                meta(2, Peril::Earthquake, Region::NorthAmericaEast),
                &[9.0, 0.0, 1.0, 2.0],
                &[9.0, 0.0, 1.0, 1.0],
            )
            .unwrap();
        writer.commit().unwrap();
        assert_eq!(StoreReader::peek_commit_seq(&path).unwrap(), seq + 2);

        assert!(reader.refresh().unwrap());
        assert_eq!(reader.commit_seq(), seq + 2);
        assert_eq!(reader.num_segments(), 3);
        // Old segments are untouched, new ones are mapped and readable.
        assert_eq!(
            SegmentSource::year_losses(&reader, 0),
            &[1.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(
            SegmentSource::year_losses(&reader, 1),
            &[5.0, 6.0, 7.0, 8.0]
        );
        assert_eq!(
            SegmentSource::year_losses(&reader, 2),
            &[9.0, 0.0, 1.0, 2.0]
        );
        assert_eq!(reader.meta(2).peril, Peril::Earthquake);

        // The refreshed reader answers queries identically to a fresh one.
        let fresh = StoreReader::open(&path).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();
        assert_eq!(
            execute(&reader, &query).unwrap(),
            execute(&fresh, &query).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refresh_reloads_a_replaced_file() {
        let path = temp_path("replaced");
        let mut writer = StoreWriter::create(&path, 2).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 2.0],
                &[1.0, 2.0],
            )
            .unwrap();
        writer.commit().unwrap();
        let mut reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 1);
        drop(writer);

        // A different store is written over the same path: more commits
        // (so the commit counter moves forward) and different contents.
        let mut writer = StoreWriter::create(&path, 2).unwrap();
        for layer in 0..3 {
            writer
                .append_segment(
                    meta(layer, Peril::Flood, Region::Japan),
                    &[9.0, 9.0],
                    &[9.0, 9.0],
                )
                .unwrap();
            writer.commit().unwrap();
        }
        drop(writer);

        assert!(reader.refresh().unwrap());
        assert_eq!(reader.num_segments(), 3);
        assert_eq!(reader.meta(0).peril, Peril::Flood);
        assert_eq!(SegmentSource::year_losses(&reader, 0), &[9.0, 9.0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_refresh_keeps_the_old_snapshot() {
        let path = temp_path("failed-refresh");
        let mut writer = StoreWriter::create(&path, 2).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 2.0],
                &[1.0, 2.0],
            )
            .unwrap();
        writer.commit().unwrap();
        let mut reader = StoreReader::open(&path).unwrap();
        drop(writer);

        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(reader.refresh().is_err(), "the file is gone");
        // The snapshot still serves.
        assert_eq!(reader.num_segments(), 1);
        assert_eq!(SegmentSource::year_losses(&reader, 0), &[1.0, 2.0]);

        // The file comes back (say, a mount flap): refresh recovers.
        std::fs::write(&path, &bytes).unwrap();
        assert!(!reader.refresh().unwrap(), "same commit, nothing new");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_reader_scans_concurrently() {
        let path = temp_path("shared");
        let mut writer = StoreWriter::create(&path, 16).unwrap();
        for s in 0..6u32 {
            let losses: Vec<f64> = (0..16).map(|t| (s * 16 + t) as f64).collect();
            writer
                .append_segment(
                    meta(s, Peril::ALL[s as usize % Peril::ALL.len()], Region::Europe),
                    &losses,
                    &losses,
                )
                .unwrap();
        }
        writer.finish().unwrap();

        let reader = StoreReader::open_shared(&path).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();
        let expected = execute(&*reader, &query).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = std::sync::Arc::clone(&reader);
                let query = query.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    assert_eq!(execute(&*reader, &query).unwrap(), expected);
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    /// Writes a small multi-commit store and returns its path.
    fn build_store(name: &str, trials: usize, commits: usize) -> PathBuf {
        let path = temp_path(name);
        let mut writer = StoreWriter::create_with(
            &path,
            trials,
            StoreOptions {
                page_trials: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for c in 0..commits as u32 {
            let losses: Vec<f64> = (0..trials)
                .map(|t| (c as usize * trials + t) as f64)
                .collect();
            writer
                .append_segment(
                    meta(c, Peril::ALL[c as usize % Peril::ALL.len()], Region::Europe),
                    &losses,
                    &losses,
                )
                .unwrap();
            writer.commit().unwrap();
        }
        path
    }

    #[test]
    fn mapped_and_loaded_backings_are_bit_identical() {
        let path = build_store("backing-equivalence", 5, 4);
        let loaded = StoreReader::open_with_backing(&path, RegionBacking::Loaded).unwrap();
        assert_eq!(loaded.backing(), RegionBacking::Loaded);
        if !crate::mmap::supported() {
            let _ = std::fs::remove_file(&path);
            return;
        }
        let mapped = StoreReader::open_with_backing(&path, RegionBacking::Mapped).unwrap();
        assert_eq!(mapped.backing(), RegionBacking::Mapped);
        assert_eq!(mapped.num_segments(), loaded.num_segments());
        for segment in 0..loaded.num_segments() {
            // Bit-identical column views, not just numerically equal.
            let bits = |losses: &[f64]| losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(SegmentSource::year_losses(&mapped, segment)),
                bits(SegmentSource::year_losses(&loaded, segment))
            );
            assert_eq!(
                bits(SegmentSource::max_occ_losses(&mapped, segment)),
                bits(SegmentSource::max_occ_losses(&loaded, segment))
            );
            assert_eq!(mapped.meta(segment), loaded.meta(segment));
        }

        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();
        assert_eq!(
            execute(&mapped, &query).unwrap(),
            execute(&loaded, &query).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_refresh_maps_only_new_segments() {
        if !crate::mmap::supported() {
            return;
        }
        let path = build_store("mapped-refresh", 4, 1);
        let mut reader = StoreReader::open_with_backing(&path, RegionBacking::Mapped).unwrap();
        let extents_after_open = reader.columns.extents.len();
        assert_eq!(extents_after_open, 1);

        let mut writer = StoreWriter::open_append(&path).unwrap();
        writer
            .append_segment(
                meta(9, Peril::Flood, Region::Japan),
                &[5.0, 6.0, 7.0, 8.0],
                &[5.0, 5.0, 6.0, 6.0],
            )
            .unwrap();
        writer.commit().unwrap();

        assert!(reader.refresh().unwrap());
        // The already-mapped prefix is untouched; the new tail is one
        // additional extent.
        assert_eq!(reader.columns.extents.len(), extents_after_open + 1);
        assert_eq!(reader.num_segments(), 2);
        assert_eq!(
            SegmentSource::year_losses(&reader, 1),
            &[5.0, 6.0, 7.0, 8.0]
        );
        // Results match a cold open of the same commit bit-for-bit.
        let fresh = StoreReader::open(&path).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&reader, &query).unwrap(),
            execute(&fresh, &query).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_underneath_surfaces_typed_error() {
        let path = build_store("truncated-under", 4, 2);
        let mut reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 2);

        // The file shrinks underneath the reader — an append-only
        // violation.  The refresh probe must report a typed error (here
        // the committed-state decode finds the footer past EOF), never
        // fault, and the snapshot keeps serving previously verified data.
        let committed_len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(committed_len - 16).unwrap();
        drop(file);
        match reader.refresh() {
            Err(StoreError::Truncated { .. }) | Err(StoreError::ChecksumMismatch { .. }) => {}
            other => panic!("expected a typed truncation error, got {other:?}"),
        }
        assert_eq!(reader.num_segments(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn queries_run_against_the_reader() {
        let path = temp_path("query");
        let mut writer = StoreWriter::create(&path, 4).unwrap();
        writer
            .append_segment(
                meta(0, Peril::Hurricane, Region::Europe),
                &[1.0, 0.0, 4.0, 2.0],
                &[1.0, 0.0, 3.0, 2.0],
            )
            .unwrap();
        writer
            .append_segment(
                meta(1, Peril::Flood, Region::Europe),
                &[0.0, 5.0, 1.0, 3.0],
                &[0.0, 4.0, 1.0, 3.0],
            )
            .unwrap();
        writer.finish().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let result = execute(&reader, &query).unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].values[0], AggValue::Scalar(7.0 / 4.0));
        assert_eq!(result.rows[1].values[0], AggValue::Scalar(9.0 / 4.0));

        // And through the batched session facade.
        let batched = reader.session().run(std::slice::from_ref(&query)).unwrap();
        assert_eq!(batched[0], result);
        let _ = std::fs::remove_file(&path);
    }
}
