//! Monte-Carlo convergence diagnostics.
//!
//! The paper motivates trial counts operationally: 1 M trials for full
//! pricing fidelity, 50 K trials when a sub-second real-time quote is needed
//! (§IV).  These diagnostics quantify that trade-off: how much sampling
//! error a metric carries at a given trial count.

use serde::{Deserialize, Serialize};

use catrisk_simkit::rng::RngFactory;
use catrisk_simkit::stats::RunningStats;

/// The estimate of one metric at one trial count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Number of trials used.
    pub trials: usize,
    /// Estimated mean loss over those trials.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Relative standard error (std_error / mean, 0 when the mean is 0).
    pub relative_error: f64,
}

/// Computes the running estimate of the mean loss at increasing prefixes of
/// the trial set (e.g. 10 %, 20 %, … 100 % of the trials), showing how the
/// estimate converges as more trials are added.
pub fn convergence_table(losses: &[f64], steps: usize) -> Vec<ConvergencePoint> {
    assert!(
        !losses.is_empty(),
        "convergence table of an empty loss vector"
    );
    assert!(steps >= 1, "need at least one step");
    let mut out = Vec::with_capacity(steps);
    for i in 1..=steps {
        let n = (losses.len() * i / steps).max(1);
        let mut stats = RunningStats::new();
        stats.extend(&losses[..n]);
        let mean = stats.mean();
        let std_error = stats.std_error();
        out.push(ConvergencePoint {
            trials: n,
            mean,
            std_error,
            relative_error: if mean == 0.0 { 0.0 } else { std_error / mean },
        });
    }
    out
}

/// Bootstrap confidence interval of an arbitrary statistic of the losses.
///
/// Resamples the losses with replacement `resamples` times, applies
/// `statistic` to each resample, and returns `(lower, upper)` at the given
/// confidence (e.g. 0.90 for a 90 % interval).
pub fn bootstrap_ci(
    losses: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> (f64, f64) {
    assert!(!losses.is_empty(), "bootstrap of an empty loss vector");
    assert!(resamples >= 2, "need at least two resamples");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let factory = RngFactory::new(seed).derive("bootstrap");
    let mut estimates: Vec<f64> = (0..resamples)
        .map(|r| {
            let mut rng = factory.stream(r as u64);
            let resample: Vec<f64> = (0..losses.len())
                .map(|_| losses[rng.below(losses.len() as u64) as usize])
                .collect();
            statistic(&resample)
        })
        .collect();
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - confidence) / 2.0;
    (
        catrisk_simkit::stats::quantile_sorted(&estimates, alpha),
        catrisk_simkit::stats::quantile_sorted(&estimates, 1.0 - alpha),
    )
}

/// Number of trials needed so the standard error of the mean falls below
/// `target_relative_error × mean`, estimated from a pilot sample.
pub fn trials_for_relative_error(pilot_losses: &[f64], target_relative_error: f64) -> usize {
    assert!(!pilot_losses.is_empty(), "pilot sample must not be empty");
    assert!(
        target_relative_error > 0.0,
        "target relative error must be positive"
    );
    let mut stats = RunningStats::new();
    stats.extend(pilot_losses);
    if stats.mean() == 0.0 {
        return pilot_losses.len();
    }
    let cv = stats.std_dev() / stats.mean();
    ((cv / target_relative_error).powi(2)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_simkit::distributions::{Distribution, LogNormal};

    fn simulated_losses(n: usize) -> Vec<f64> {
        let d = LogNormal::from_mean_cv(100.0, 2.0).unwrap();
        let factory = RngFactory::new(77);
        (0..n)
            .map(|i| {
                let mut rng = factory.stream(i as u64);
                d.sample(&mut rng)
            })
            .collect()
    }

    #[test]
    fn convergence_error_shrinks_with_trials() {
        let losses = simulated_losses(20_000);
        let table = convergence_table(&losses, 10);
        assert_eq!(table.len(), 10);
        assert_eq!(table.last().unwrap().trials, 20_000);
        assert!(table[0].std_error > table[9].std_error);
        assert!(table[9].relative_error < 0.05);
        for w in table.windows(2) {
            assert!(w[1].trials > w[0].trials);
        }
    }

    #[test]
    fn bootstrap_interval_brackets_the_truth() {
        let losses = simulated_losses(5_000);
        let sample_mean = losses.iter().sum::<f64>() / losses.len() as f64;
        let (lo, hi) = bootstrap_ci(
            &losses,
            |l| l.iter().sum::<f64>() / l.len() as f64,
            200,
            0.9,
            1,
        );
        assert!(
            lo < sample_mean && sample_mean < hi,
            "{lo} < {sample_mean} < {hi}"
        );
        assert!(
            hi - lo < 0.2 * sample_mean,
            "interval should be reasonably tight"
        );
        // Bootstrap of a quantile also works.
        let (qlo, qhi) = bootstrap_ci(&losses, |l| crate::var(l, 0.9), 100, 0.9, 2);
        assert!(qlo <= qhi);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let losses = simulated_losses(500);
        let a = bootstrap_ci(&losses, |l| crate::var(l, 0.95), 50, 0.8, 9);
        let b = bootstrap_ci(&losses, |l| crate::var(l, 0.95), 50, 0.8, 9);
        let c = bootstrap_ci(&losses, |l| crate::var(l, 0.95), 50, 0.8, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trials_for_relative_error_scales_inversely_squared() {
        let losses = simulated_losses(2_000);
        let loose = trials_for_relative_error(&losses, 0.10);
        let tight = trials_for_relative_error(&losses, 0.01);
        assert!(tight > 50 * loose, "{tight} vs {loose}");
        // Constant losses need no more trials.
        assert_eq!(trials_for_relative_error(&[5.0, 5.0, 5.0], 0.01), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_inputs_panic() {
        convergence_table(&[], 5);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        bootstrap_ci(&[1.0, 2.0], |l| l[0], 10, 1.5, 0);
    }
}
