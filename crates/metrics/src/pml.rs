//! Probable Maximum Loss (PML) at standard return periods.

use serde::{Deserialize, Serialize};

use crate::ep::ExceedanceCurve;

/// The return periods conventionally reported to management, regulators and
/// rating agencies.
pub const STANDARD_RETURN_PERIODS: [f64; 7] = [10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0];

/// One row of a PML table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmlPoint {
    /// Return period in years.
    pub return_period: f64,
    /// Exceedance probability (1 / return period).
    pub probability: f64,
    /// Loss at that return period.
    pub loss: f64,
}

/// Computes the PML table of an exceedance curve at the given return
/// periods.  Return periods beyond the resolution of the simulation (fewer
/// trials than the return period) are still reported — they saturate at the
/// largest simulated loss — because that is what production systems do;
/// [`crate::convergence`] quantifies the sampling error instead.
pub fn pml_table(curve: &ExceedanceCurve, return_periods: &[f64]) -> Vec<PmlPoint> {
    return_periods
        .iter()
        .map(|&rp| PmlPoint {
            return_period: rp,
            probability: 1.0 / rp,
            loss: curve.loss_at_return_period(rp),
        })
        .collect()
}

/// Computes the PML table at the standard return periods.
pub fn standard_pml_table(curve: &ExceedanceCurve) -> Vec<PmlPoint> {
    pml_table(curve, &STANDARD_RETURN_PERIODS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ExceedanceCurve {
        // 1000 trials: losses 1..=1000.
        ExceedanceCurve::new((1..=1000).map(f64::from).collect())
    }

    #[test]
    fn standard_table_has_all_rows_and_is_monotone() {
        let table = standard_pml_table(&curve());
        assert_eq!(table.len(), STANDARD_RETURN_PERIODS.len());
        for w in table.windows(2) {
            assert!(
                w[1].loss >= w[0].loss,
                "PML must not decrease with return period"
            );
            assert!(w[1].return_period > w[0].return_period);
        }
        for p in &table {
            assert!((p.probability - 1.0 / p.return_period).abs() < 1e-12);
        }
    }

    #[test]
    fn values_match_quantiles() {
        let table = pml_table(&curve(), &[10.0, 100.0]);
        // 1-in-10: 90th percentile of 1..=1000 ≈ 900.1
        assert!((table[0].loss - 900.1).abs() < 0.5, "{}", table[0].loss);
        // 1-in-100: 99th percentile ≈ 990.01
        assert!((table[1].loss - 990.0).abs() < 0.5, "{}", table[1].loss);
    }

    #[test]
    fn beyond_resolution_saturates_at_max() {
        let small = ExceedanceCurve::new(vec![10.0, 20.0, 30.0]);
        let table = pml_table(&small, &[1000.0]);
        assert!((table[0].loss - 30.0).abs() < 0.1, "{}", table[0].loss);
    }

    #[test]
    fn serde_round_trip() {
        let table = standard_pml_table(&curve());
        let json = serde_json::to_string(&table).unwrap();
        assert_eq!(serde_json::from_str::<Vec<PmlPoint>>(&json).unwrap(), table);
    }
}
