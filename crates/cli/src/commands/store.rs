//! `catrisk store` — write portfolio results to a persistent columnar
//! store file and query it back without re-simulation.
//!
//! `store write` builds the synthetic world, runs the chosen engine, and
//! spills every tagged segment into a `catrisk-riskstore` file with
//! incremental commits (the streaming engine feeds the writer through
//! [`StreamIngestor`]).  `store query` reopens such a file — from this or
//! any earlier process — and answers ad-hoc queries over it.

use catrisk_riskquery::execute;
use catrisk_riskserve::{SourceProvider, StoreCatalog};
use catrisk_riskstore::{StoreOptions, StoreReader, StoreWriter, StreamIngestor};
use catrisk_simkit::timing::Stopwatch;

use super::query::{
    build_query, build_segmented_world, print_result, run_engine, unknown_engine, ENGINES,
};
use super::world::WorldConfig;
use super::Options;

/// Detailed usage of the store command, shown by `catrisk store --help`.
pub const STORE_HELP: &str = "usage: catrisk store <write|query|split|catalog> [options]

write   run the aggregate risk engine over a synthetic world and spill the
        tagged segments into a persistent columnar store file:
  --out PATH       store file to create or append to (required)
  --append         append to an existing store instead of creating
  --trials N       number of YET trials (default 20000)
  --locations N    locations per exposure book (default 2000)
  --events N       catalog size (default 50000)
  --seed S         master random seed (default 2012)
  --engine E       sequential | parallel | chunked | streaming (default streaming)
  --commit-every K commit after every K appended segments (default 8,
                   0 = one commit at the end)
  --page-trials N  trials per checksummed loss page (default 4096; fixed at
                   creation, cannot be changed by --append)
  --trial-offset N stamp the store as covering trials [N, N+trials) of a
                   larger logical trial axis (default 0 = self-contained;
                   fixed at creation).  A trial-sharded ingest fleet gives
                   each writer its own offset; `catrisk serve` stitches
                   the windows back together

query   reopen a store file and answer an ad-hoc aggregate query:
  --in PATH        store file to open (required)
  --select LIST    aggregates: mean, stddev, maxloss, attach, var(l), tvar(l),
                   pml(rp), opml(rp), aep(n), oep(n)   (default \"mean,tvar(0.99)\")
  --where EXPR     filter: dimension=value|value constraints plus
                   trial=start..end and loss>=x / loss<=x / loss=[min,max]
  --group-by LIST  comma-separated: layer, peril, region, lob
  --json           print the result as JSON instead of a table

split   cut an existing store into trial-window shards — the trial-axis
        catalog `catrisk serve` stitches back bit-identically (each shard
        holds every segment over its window, stamped with its offset):
  --in PATH        store file to split (required)
  --shards K       number of equal trial windows (default 2)
  --out-prefix P   shard files are written to P-part<k>.clm (default: the
                   input path minus its extension)

catalog inspect a multi-store catalog: per-shard segment counts, trial
        counts and windows, the sharding axis, commit generations and
        resident sizes, plus the union the query router would serve.
        Takes the same positional CATALOG arguments as `catrisk serve`:
        one directory of store files, or one or more store file paths
        (--store PATH is still accepted, deprecated)

examples:
  catrisk store write --out portfolio.clm --trials 50000 --engine streaming
  catrisk store write --out portfolio.clm --append --seed 2013
  catrisk store query --in portfolio.clm \\
      --select \"tvar(0.99),aep(10)\" --where \"peril=HU|FL\" --group-by region
  catrisk store split --in portfolio.clm --shards 4
  catrisk store catalog /data/stores
  catrisk store catalog eu.clm na.clm
  catrisk store catalog portfolio-part0.clm portfolio-part1.clm";

/// Runs the store command: dispatches on the `write` / `query` action.
pub fn run(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first() else {
        println!("{STORE_HELP}");
        return Ok(());
    };
    match action.as_str() {
        "--help" | "help" => {
            println!("{STORE_HELP}");
            Ok(())
        }
        "write" => write(&Options::parse(&args[1..])?),
        "query" => query(&Options::parse(&args[1..])?),
        "split" => split(&Options::parse(&args[1..])?),
        "catalog" => {
            // Same addressing as `catrisk serve`: leading positional
            // paths (a directory or store files), --store deprecated.
            let split = args[1..]
                .iter()
                .position(|a| a.starts_with("--"))
                .map_or(args.len(), |p| p + 1);
            catalog(&args[1..split], &Options::parse(&args[split..])?)
        }
        other => Err(format!(
            "unknown store action `{other}` (expected write, query, split or catalog)"
        )),
    }
}

fn write(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let out = options.get("out", String::new())?;
    if out.is_empty() {
        return Err("store write needs --out PATH".to_string());
    }
    let config = WorldConfig {
        seed: options.get("seed", 2012u64)?,
        num_events: options.get("events", 50_000u32)?,
        locations: options.get("locations", 2_000usize)?,
        trials: options.get("trials", 20_000usize)?,
    };
    let engine = options.get("engine", "streaming".to_string())?;
    let commit_every = options.get("commit-every", 8usize)?;
    let page_trials = options.get("page-trials", 4096u32)?;
    let trial_offset = options.get("trial-offset", 0u64)?;
    let append = options.has_flag("append");
    if !ENGINES.contains(&engine.as_str()) {
        return Err(unknown_engine(&engine));
    }

    // Open (and for --append, validate against) the store file first, so a
    // bad path or an option mismatch fails before the expensive world
    // build.
    let mut writer = if append {
        StoreWriter::open_append(&out).map_err(|e| e.to_string())?
    } else {
        StoreWriter::create_with(
            &out,
            config.trials,
            StoreOptions {
                page_trials,
                trial_offset,
            },
        )
        .map_err(|e| e.to_string())?
    };
    if writer.num_trials() != config.trials {
        return Err(format!(
            "store `{out}` holds {}-trial segments, the requested world has {} trials",
            writer.num_trials(),
            config.trials
        ));
    }
    if append && options.has_value("page-trials") && writer.page_trials() != page_trials {
        return Err(format!(
            "store `{out}` was created with {}-trial pages; --page-trials {} cannot change \
             an existing store's page size",
            writer.page_trials(),
            page_trials
        ));
    }
    if append && options.has_value("trial-offset") && writer.trial_offset() != trial_offset {
        return Err(format!(
            "store `{out}` covers trials starting at {}; --trial-offset {} cannot move \
             an existing store's window",
            writer.trial_offset(),
            trial_offset
        ));
    }
    let already = writer.num_segments();

    let segmented = build_segmented_world(&config)?;

    let sw = Stopwatch::start();
    if engine == "streaming" {
        // The incremental path: streamed trial blocks feed the writer
        // through the ingestor, committing every `commit_every` segments.
        let mut ingestor =
            StreamIngestor::new(segmented.input.layers().len(), segmented.input.num_trials());
        let mut failed = None;
        catrisk_engine::streaming::StreamingEngine::new(8_192).run_with(
            &segmented.input,
            |_, _, block| {
                if failed.is_none() {
                    failed = ingestor.push_block(block).err();
                }
            },
        );
        if let Some(err) = failed {
            return Err(err.to_string());
        }
        ingestor
            .finish(&mut writer, &segmented.metas, commit_every)
            .map_err(|e| e.to_string())?;
    } else {
        let output = run_engine(&engine, &segmented)?;
        if output.num_layers() != segmented.metas.len() {
            return Err(format!(
                "{} engine layers but {} segment tags",
                output.num_layers(),
                segmented.metas.len()
            ));
        }
        for (ylt, meta) in output.layers().iter().zip(&segmented.metas) {
            writer.append_ylt(ylt, *meta).map_err(|e| e.to_string())?;
            if commit_every > 0 && writer.uncommitted_segments() >= commit_every {
                writer.commit().map_err(|e| e.to_string())?;
            }
        }
    }
    writer.commit().map_err(|e| e.to_string())?;
    let segments = writer.num_segments();
    let commits = writer.commit_seq();
    writer.finish().map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map_err(|e| e.to_string())?.len();
    eprintln!(
        "  {} engine wrote {} segments ({} new) in {} commits, {:.1} MB on disk  [{:.2}s]",
        engine,
        segments,
        segments - already,
        commits,
        bytes as f64 / 1.0e6,
        sw.elapsed_secs()
    );
    println!("{out}");
    Ok(())
}

fn query(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let input = options.get("in", String::new())?;
    if input.is_empty() {
        return Err("store query needs --in PATH".to_string());
    }
    let select = options.get("select", "mean,tvar(0.99)".to_string())?;
    let where_clause = options.get("where", String::new())?;
    let group_by = options.get("group-by", String::new())?;
    let as_json = options.has_flag("json");
    let query = build_query(&select, &where_clause, &group_by)?;

    let sw = Stopwatch::start();
    let reader = StoreReader::open(&input).map_err(|e| e.to_string())?;
    eprintln!(
        "  opened {}: {} segments x {} trials, {:.1} MB of loss columns, commit {}  [{:.4}s]",
        input,
        reader.num_segments(),
        reader.num_trials(),
        reader.memory_bytes() as f64 / 1.0e6,
        reader.commit_seq(),
        sw.elapsed_secs()
    );

    let sw = Stopwatch::start();
    let result = execute(&reader, &query).map_err(|e| e.to_string())?;
    eprintln!("  query answered in {:.4}s\n", sw.elapsed_secs());

    print_result(&result, as_json)
}

/// `store split`: cut an existing store into trial-window shard files —
/// the inverse of the trial-axis stitch `catrisk serve` performs.  Each
/// shard holds every segment of the input over its window, stamped with
/// the window's offset so `StoreCatalog::open` detects the axis.
fn split(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let input = options.get("in", String::new())?;
    if input.is_empty() {
        return Err("store split needs --in PATH".to_string());
    }
    let shards = options.get("shards", 2usize)?;
    if shards == 0 {
        return Err("--shards must be positive".to_string());
    }
    let default_prefix = input
        .strip_suffix(".clm")
        .unwrap_or(input.as_str())
        .to_string();
    let prefix = options.get("out-prefix", default_prefix)?;

    let sw = Stopwatch::start();
    let reader = StoreReader::open(&input).map_err(|e| e.to_string())?;
    if reader.trial_offset() != 0 {
        return Err(format!(
            "store `{input}` is itself a trial shard (offset {}); split the original \
             full-axis store instead",
            reader.trial_offset()
        ));
    }
    let trials = reader.num_trials();
    if trials < shards {
        return Err(format!(
            "cannot split {trials} trials into {shards} non-empty windows"
        ));
    }
    let base = trials / shards;
    let extra = trials % shards;
    let mut start = 0usize;
    for index in 0..shards {
        let len = base + usize::from(index < extra);
        let end = start + len;
        let path = format!("{prefix}-part{index}.clm");
        let mut writer = StoreWriter::create_with(
            &path,
            len,
            StoreOptions {
                // Shards inherit the input's page tuning.
                page_trials: reader.page_trials(),
                trial_offset: start as u64,
            },
        )
        .map_err(|e| e.to_string())?;
        for segment in 0..reader.num_segments() {
            use catrisk_riskquery::SegmentSource;
            writer
                .append_segment(
                    *reader.meta(segment),
                    &SegmentSource::year_losses(&reader, segment)[start..end],
                    &SegmentSource::max_occ_losses(&reader, segment)[start..end],
                )
                .map_err(|e| e.to_string())?;
        }
        writer.finish().map_err(|e| e.to_string())?;
        eprintln!(
            "  wrote {path}: {} segments covering trials {start}..{end}",
            reader.num_segments()
        );
        println!("{path}");
        start = end;
    }
    eprintln!(
        "  split {} segments x {trials} trials into {shards} trial windows  [{:.2}s]",
        reader.num_segments(),
        sw.elapsed_secs()
    );
    Ok(())
}

/// `store catalog`: open the shard list through the exact
/// [`StoreCatalog`] path `catrisk serve` uses (so accept/reject
/// behaviour cannot drift) and print the per-shard state plus the union
/// view the query router serves.
fn catalog(positionals: &[String], options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let source = super::serve::resolve_sources(positionals, options)
        .map_err(|e| format!("store catalog: {e}"))?;

    let sw = Stopwatch::start();
    let catalog = match &source {
        super::serve::ServeSource::Files(stores) => StoreCatalog::open(stores),
        super::serve::ServeSource::Dir(dir) => StoreCatalog::open_dir(dir),
    }
    .map_err(|e| format!("these shards cannot form one catalog: {e}"))?;
    println!("{}", catalog.describe());
    catalog.with_source(|snapshot| {
        let union = snapshot.source;
        println!(
            "union: {} shards along the {} axis, {} segments x {} trials (generations \
             {:?}); dictionaries: {} layers, {} perils, {} regions, {} lobs  [{:.4}s]",
            catalog.num_shards(),
            catalog.axis(),
            union.num_segments(),
            union.num_trials(),
            snapshot.generations,
            union.layer_dict().len(),
            union.peril_dict().len(),
            union.region_dict().len(),
            union.lob_dict().len(),
            sw.elapsed_secs()
        );
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_store(name: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-cli-store-{}-{}.clm",
            std::process::id(),
            name
        ));
        path.to_string_lossy().into_owned()
    }

    fn small_world(out: &str, extra: &[&str]) -> Vec<String> {
        let mut args = strings(&[
            "--out",
            out,
            "--trials",
            "120",
            "--locations",
            "100",
            "--events",
            "2000",
            "--seed",
            "5",
        ]);
        args.extend(strings(extra));
        args
    }

    #[test]
    fn write_then_query_round_trips() {
        let out = temp_store("roundtrip");
        // Streaming (incremental) write with frequent commits.
        run(&[
            vec!["write".to_string()],
            small_world(&out, &["--commit-every", "2", "--page-trials", "64"]),
        ]
        .concat())
        .unwrap();
        // Append a second world run to the same store.
        run(&[
            vec!["write".to_string()],
            small_world(&out, &["--append", "--seed", "7", "--engine", "parallel"]),
        ]
        .concat())
        .unwrap();
        // And query it back.
        run(&strings(&[
            "query",
            "--in",
            &out,
            "--select",
            "mean,tvar(0.9),aep(4)",
            "--where",
            "peril=HU|FL loss>=0",
            "--group-by",
            "region",
            "--json",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn catalog_inspects_shards_and_rejects_mismatches() {
        let a = temp_store("catalog-a");
        let b = temp_store("catalog-b");
        run(&[vec!["write".to_string()], small_world(&a, &[])].concat()).unwrap();
        run(&[vec!["write".to_string()], small_world(&b, &["--seed", "9"])].concat()).unwrap();
        // Positional form, plus the deprecated --store alias.
        run(&strings(&["catalog", &a, &b])).unwrap();
        run(&strings(&["catalog", "--store", &a, "--store", &b])).unwrap();

        // A shard with a different trial count cannot join the catalog.
        let c = temp_store("catalog-c");
        let mut mismatched = small_world(&c, &[]);
        let trials_at = mismatched.iter().position(|arg| arg == "120").unwrap();
        mismatched[trials_at] = "64".to_string();
        run(&[vec!["write".to_string()], mismatched].concat()).unwrap();
        assert!(run(&strings(&["catalog", &a, &c])).is_err());

        assert!(
            run(&strings(&["catalog"])).is_err(),
            "a catalog is required"
        );
        assert!(run(&strings(&["catalog", "/nonexistent/x.clm"])).is_err());
        for path in [&a, &b, &c] {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn split_produces_a_trial_catalog_equivalent_to_the_whole() {
        use catrisk_riskquery::{execute, parse_select, QueryBuilder, SegmentSource};

        let out = temp_store("split");
        run(&[vec!["write".to_string()], small_world(&out, &[])].concat()).unwrap();
        let prefix = out.strip_suffix(".clm").unwrap().to_string();
        run(&strings(&["split", "--in", &out, "--shards", "3"])).unwrap();
        let parts: Vec<String> = (0..3).map(|k| format!("{prefix}-part{k}.clm")).collect();

        // The parts form a trial-axis catalog the inspector accepts...
        run(&strings(&["catalog", &parts[0], &parts[1], &parts[2]])).unwrap();

        // ...whose stitched answers are bit-identical to the original.
        let whole = StoreReader::open(&out).unwrap();
        let catalog = StoreCatalog::open(&parts).unwrap();
        let mut builder = QueryBuilder::new().group_by(catrisk_riskquery::Dimension::Region);
        for aggregate in parse_select("mean,tvar(0.9),aep(4)").unwrap() {
            builder = builder.aggregate(aggregate);
        }
        let query = builder.build().unwrap();
        let stitched = catalog.with_source(|snapshot| {
            assert_eq!(
                SegmentSource::num_trials(snapshot.source),
                whole.num_trials()
            );
            execute(snapshot.source, &query).unwrap()
        });
        assert_eq!(stitched, execute(&whole, &query).unwrap());

        // Splitting a shard (nonzero offset) is refused; so are bad args.
        assert!(run(&strings(&["split", "--in", &parts[1]])).is_err());
        assert!(run(&strings(&["split"])).is_err(), "--in is required");
        assert!(run(&strings(&["split", "--in", &out, "--shards", "0"])).is_err());
        assert!(run(&strings(&["split", "--in", &out, "--shards", "999"])).is_err());

        let _ = std::fs::remove_file(&out);
        for part in &parts {
            let _ = std::fs::remove_file(part);
        }
    }

    #[test]
    fn store_errors_are_graceful() {
        let out = temp_store("errors");
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&["write"])).is_err(), "--out is required");
        assert!(run(&strings(&["query"])).is_err(), "--in is required");
        assert!(run(&strings(&["query", "--in", "/nonexistent/x.clm"])).is_err());
        assert!(run(&[
            vec!["write".to_string()],
            small_world(&out, &["--engine", "quantum"])
        ]
        .concat())
        .is_err());
        // Appending with a mismatched trial count is rejected.
        run(&[vec!["write".to_string()], small_world(&out, &[])].concat()).unwrap();
        let mut mismatched = small_world(&out, &["--append"]);
        let trials_at = mismatched.iter().position(|a| a == "120").unwrap();
        mismatched[trials_at] = "64".to_string();
        assert!(run(&[vec!["write".to_string()], mismatched].concat()).is_err());
        // So is trying to change the page size of an existing store.
        assert!(run(&[
            vec!["write".to_string()],
            small_world(&out, &["--append", "--page-trials", "64"]),
        ]
        .concat())
        .is_err());
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn store_help_prints() {
        run(&[]).unwrap();
        run(&strings(&["--help"])).unwrap();
        run(&strings(&["write", "--help"])).unwrap();
        run(&strings(&["query", "--help"])).unwrap();
    }
}
