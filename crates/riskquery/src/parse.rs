//! The compact textual query form used by the CLI.
//!
//! Three clauses, each parsed independently:
//!
//! * **select** — comma-separated aggregates:
//!   `mean, stddev, maxloss, attach, var(0.99), tvar(0.995), pml(250),
//!   opml(250), aep(20), oep(20)`
//!   (`pml`/`aep` read the year-loss column; `opml`/`oep` the
//!   occurrence-loss column);
//! * **where** — space-separated `dimension=value|value` constraints plus
//!   an optional `trial=start..end` window:
//!   `peril=HU|FL region=Europe lob=PROP layer=0|2 trial=0..10000`
//!   (values match either the enum name or the short code,
//!   case-insensitively), and optional loss-range constraints `loss>=x`,
//!   `loss<=x`, `loss=[min,max]` conditioning each group on the trials
//!   whose summed year loss lies in the (inclusive) range;
//! * **group by** — comma-separated dimensions: `peril, region`.
//!
//! All errors are reported as [`QueryError::Parse`] — malformed input never
//! panics.

use catrisk_eventgen::peril::{Peril, Region};

use crate::dims::{Dimension, LineOfBusiness};
use crate::query::{Aggregate, Basis, Filter};
use crate::{QueryError, Result};

fn parse_err(msg: impl Into<String>) -> QueryError {
    QueryError::Parse(msg.into())
}

/// Splits `text` at top-level commas (commas inside parentheses are kept).
fn split_commas(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            c => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts
}

/// Parses `name(arg)` into `(name, Some(arg))`, or `name` into
/// `(name, None)`.
fn split_call(token: &str) -> Result<(String, Option<String>)> {
    match token.find('(') {
        None => Ok((token.trim().to_ascii_lowercase(), None)),
        Some(open) => {
            let name = token[..open].trim().to_ascii_lowercase();
            let rest = token[open + 1..].trim();
            let Some(arg) = rest.strip_suffix(')') else {
                return Err(parse_err(format!("missing `)` in `{token}`")));
            };
            Ok((name, Some(arg.trim().to_string())))
        }
    }
}

fn numeric_arg(name: &str, arg: Option<String>) -> Result<f64> {
    let Some(arg) = arg else {
        return Err(parse_err(format!(
            "`{name}` needs an argument, e.g. `{name}(0.99)`"
        )));
    };
    arg.parse::<f64>()
        .map_err(|_| parse_err(format!("invalid number `{arg}` in `{name}({arg})`")))
}

fn points_arg(name: &str, arg: Option<String>) -> Result<usize> {
    match arg {
        None => Ok(20),
        Some(arg) => arg
            .parse::<usize>()
            .map_err(|_| parse_err(format!("invalid point count `{arg}` in `{name}({arg})`"))),
    }
}

/// Parses a select clause into aggregates.
pub fn parse_select(text: &str) -> Result<Vec<Aggregate>> {
    let parts = split_commas(text);
    if parts.is_empty() {
        return Err(parse_err("empty select clause"));
    }
    parts
        .iter()
        .map(|token| {
            let (name, arg) = split_call(token)?;
            match name.as_str() {
                "mean" => Ok(Aggregate::Mean),
                "stddev" | "std" => Ok(Aggregate::StdDev),
                "maxloss" | "max" => Ok(Aggregate::MaxLoss),
                "attach" | "attachprob" => Ok(Aggregate::AttachProb),
                "var" => Ok(Aggregate::Var {
                    level: numeric_arg("var", arg)?,
                }),
                "tvar" => Ok(Aggregate::Tvar {
                    level: numeric_arg("tvar", arg)?,
                }),
                "pml" => Ok(Aggregate::Pml {
                    return_period: numeric_arg("pml", arg)?,
                    basis: Basis::Aep,
                }),
                "opml" => Ok(Aggregate::Pml {
                    return_period: numeric_arg("opml", arg)?,
                    basis: Basis::Oep,
                }),
                "aep" => Ok(Aggregate::EpCurve {
                    basis: Basis::Aep,
                    points: points_arg("aep", arg)?,
                }),
                "oep" => Ok(Aggregate::EpCurve {
                    basis: Basis::Oep,
                    points: points_arg("oep", arg)?,
                }),
                other => Err(parse_err(format!(
                    "unknown aggregate `{other}` (expected mean, stddev, maxloss, attach, \
                     var(l), tvar(l), pml(rp), opml(rp), aep(n), oep(n))"
                ))),
            }
        })
        .collect()
}

fn match_value<T: Copy>(token: &str, all: &[T], name_of: impl Fn(&T) -> String) -> Option<T> {
    all.iter()
        .find(|v| name_of(v).eq_ignore_ascii_case(token))
        .copied()
}

fn parse_peril(token: &str) -> Result<Peril> {
    match_value(token, &Peril::ALL, |p| format!("{p:?}"))
        .or_else(|| match_value(token, &Peril::ALL, |p| p.code().to_string()))
        .ok_or_else(|| parse_err(format!("unknown peril `{token}`")))
}

fn parse_region(token: &str) -> Result<Region> {
    match_value(token, &Region::ALL, |r| format!("{r:?}"))
        .or_else(|| match_value(token, &Region::ALL, |r| r.code().to_string()))
        .ok_or_else(|| parse_err(format!("unknown region `{token}`")))
}

fn parse_lob(token: &str) -> Result<LineOfBusiness> {
    match_value(token, &LineOfBusiness::ALL, |l| format!("{l:?}"))
        .or_else(|| match_value(token, &LineOfBusiness::ALL, |l| l.code().to_string()))
        .ok_or_else(|| parse_err(format!("unknown line of business `{token}`")))
}

fn parse_values<T>(list: &str, parse_one: impl Fn(&str) -> Result<T>) -> Result<Vec<T>> {
    list.split('|')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(parse_one)
        .collect()
}

fn parse_loss_bound(token: &str, bound: &str) -> Result<f64> {
    bound
        .trim()
        .parse::<f64>()
        .map_err(|_| parse_err(format!("invalid loss bound `{bound}` in `{token}`")))
}

/// Parses one `loss…` constraint (`loss>=x`, `loss<=x`, `loss=[a,b]`) into
/// the filter, merging with any bound set by an earlier loss token.
fn parse_loss(filter: &mut Filter, token: &str) -> Result<()> {
    let mut range = filter.loss.unwrap_or_default();
    if let Some(bound) = token.strip_prefix("loss>=") {
        range.min = parse_loss_bound(token, bound)?;
    } else if let Some(bound) = token.strip_prefix("loss<=") {
        range.max = parse_loss_bound(token, bound)?;
    } else if let Some(body) = token.strip_prefix("loss=") {
        let Some(list) = body.strip_prefix('[').and_then(|b| b.strip_suffix(']')) else {
            return Err(parse_err(format!(
                "loss range must be `loss=[min,max]`, `loss>=x` or `loss<=x`, got `{token}`"
            )));
        };
        let Some((min, max)) = list.split_once(',') else {
            return Err(parse_err(format!(
                "loss range needs two bounds `loss=[min,max]`, got `{token}`"
            )));
        };
        range.min = parse_loss_bound(token, min)?;
        range.max = parse_loss_bound(token, max)?;
    } else {
        return Err(parse_err(format!(
            "loss constraint must be `loss>=x`, `loss<=x` or `loss=[min,max]`, got `{token}`"
        )));
    }
    if range.min.is_nan() || range.max.is_nan() || range.min > range.max {
        return Err(parse_err(format!(
            "empty loss range [{}, {}] from `{token}`",
            range.min, range.max
        )));
    }
    filter.loss = Some(range);
    Ok(())
}

/// Parses a where clause into a [`Filter`].
pub fn parse_where(text: &str) -> Result<Filter> {
    let mut filter = Filter::all();
    for token in text.split_whitespace() {
        if token.starts_with("loss") {
            parse_loss(&mut filter, token)?;
            continue;
        }
        let Some((key, value)) = token.split_once('=') else {
            return Err(parse_err(format!(
                "expected `dimension=value` in where clause, got `{token}`"
            )));
        };
        match key.trim().to_ascii_lowercase().as_str() {
            "peril" => filter.perils = Some(parse_values(value, parse_peril)?),
            "region" => filter.regions = Some(parse_values(value, parse_region)?),
            "lob" => filter.lobs = Some(parse_values(value, parse_lob)?),
            "layer" => {
                filter.layers = Some(parse_values(value, |t| {
                    t.parse::<u32>()
                        .map_err(|_| parse_err(format!("invalid layer id `{t}`")))
                })?)
            }
            "trial" | "trials" => {
                let Some((start, end)) = value.split_once("..") else {
                    return Err(parse_err(format!(
                        "trial window must be `start..end`, got `{value}`"
                    )));
                };
                let start = start
                    .parse::<usize>()
                    .map_err(|_| parse_err(format!("invalid trial start `{start}`")))?;
                let end = end
                    .parse::<usize>()
                    .map_err(|_| parse_err(format!("invalid trial end `{end}`")))?;
                filter.trials = Some((start, end));
            }
            other => {
                return Err(parse_err(format!(
                    "unknown filter dimension `{other}` \
                     (expected peril, region, lob, layer, trial, loss)"
                )))
            }
        }
    }
    Ok(filter)
}

/// Parses a group-by clause into dimensions.
pub fn parse_group_by(text: &str) -> Result<Vec<Dimension>> {
    split_commas(text)
        .iter()
        .map(|token| {
            Dimension::ALL
                .iter()
                .find(|d| d.name().eq_ignore_ascii_case(token))
                .copied()
                .ok_or_else(|| {
                    parse_err(format!(
                        "unknown group-by dimension `{token}` (expected layer, peril, region, lob)"
                    ))
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::LossRange;

    #[test]
    fn select_clause_round_trip() {
        let aggs =
            parse_select("mean, stddev, var(0.99), tvar(0.995), pml(250), opml(100), aep(5), oep")
                .unwrap();
        assert_eq!(aggs.len(), 8);
        assert_eq!(aggs[2], Aggregate::Var { level: 0.99 });
        assert_eq!(
            aggs[4],
            Aggregate::Pml {
                return_period: 250.0,
                basis: Basis::Aep
            }
        );
        assert_eq!(
            aggs[5],
            Aggregate::Pml {
                return_period: 100.0,
                basis: Basis::Oep
            }
        );
        assert_eq!(
            aggs[6],
            Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 5
            }
        );
        assert_eq!(
            aggs[7],
            Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 20
            }
        );
    }

    #[test]
    fn select_errors_are_graceful() {
        assert!(parse_select("").is_err());
        assert!(parse_select("frobnicate").is_err());
        assert!(parse_select("var").is_err());
        assert!(parse_select("var(abc)").is_err());
        assert!(parse_select("var(0.9").is_err());
        assert!(parse_select("aep(x)").is_err());
    }

    #[test]
    fn where_clause_parses_dimensions() {
        let filter =
            parse_where("peril=Hurricane|FL region=europe lob=PROP|Marine layer=0|3 trial=10..500")
                .unwrap();
        assert_eq!(filter.perils, Some(vec![Peril::Hurricane, Peril::Flood]));
        assert_eq!(filter.regions, Some(vec![Region::Europe]));
        assert_eq!(
            filter.lobs,
            Some(vec![LineOfBusiness::Property, LineOfBusiness::Marine])
        );
        assert_eq!(filter.layers, Some(vec![0, 3]));
        assert_eq!(filter.trials, Some((10, 500)));
    }

    #[test]
    fn where_errors_are_graceful() {
        assert!(parse_where("peril").is_err());
        assert!(parse_where("peril=NotAPeril").is_err());
        assert!(parse_where("galaxy=milkyway").is_err());
        assert!(parse_where("trial=5").is_err());
        assert!(parse_where("trial=a..b").is_err());
        assert!(parse_where("layer=x").is_err());
        assert!(parse_where("loss=5").is_err());
        assert!(parse_where("loss>=abc").is_err());
        assert!(parse_where("loss=[1,2,3]").is_err());
        assert!(parse_where("loss=[9,1]").is_err());
        assert!(parse_where("loss>=5 loss<=2").is_err());
        assert!(parse_where("lossy=1").is_err());
    }

    #[test]
    fn where_clause_parses_loss_ranges() {
        let filter = parse_where("loss>=100").unwrap();
        assert_eq!(filter.loss, Some(LossRange::at_least(100.0)));
        let filter = parse_where("loss<=2e6").unwrap();
        assert_eq!(filter.loss, Some(LossRange::at_most(2.0e6)));
        let filter = parse_where("loss=[100,2e6]").unwrap();
        assert_eq!(
            filter.loss,
            Some(LossRange {
                min: 100.0,
                max: 2.0e6
            })
        );
        // Bounds given as separate tokens merge into one range.
        let filter = parse_where("peril=HU loss>=10 loss<=90").unwrap();
        assert_eq!(
            filter.loss,
            Some(LossRange {
                min: 10.0,
                max: 90.0
            })
        );
        assert_eq!(filter.perils, Some(vec![Peril::Hurricane]));
    }

    #[test]
    fn group_by_parses() {
        assert_eq!(
            parse_group_by("peril, region").unwrap(),
            vec![Dimension::Peril, Dimension::Region]
        );
        assert_eq!(parse_group_by("LOB").unwrap(), vec![Dimension::Lob]);
        assert!(parse_group_by("continent").is_err());
    }
}
