//! The server's telemetry bundle: stage histograms, the metric registry
//! and the flight recorder.
//!
//! Every [`Server`](crate::server::Server) owns one `ServerTelemetry` —
//! a per-server [`Registry`] (never a process global, so in-process
//! servers running side by side cannot contaminate each other's counts)
//! plus resolved `Arc` handles for each stage of the batch pipeline, so
//! the hot path never takes the registry's name-lookup mutex.
//!
//! The stage taxonomy, metric names and flight-recorder event schema are
//! documented normatively in `docs/OBSERVABILITY.md`.

use std::sync::Arc;

use catrisk_telemetry::{FlightRecorder, Histogram, Registry, TraceStore};

/// Metric names of the per-stage latency histograms (all in microseconds).
///
/// These names are the wire contract of the `metrics` protocol command:
/// loadgen, the CLI `stats` subcommand and the CI smokes look metrics up
/// by these exact strings.
pub mod stage {
    /// Admission: one sample per `submit` call (accepted or rejected),
    /// covering validation plus queue insertion.
    pub const ADMISSION: &str = "stage_admission_micros";
    /// Queue wait: one sample per admitted request, from `submit` to the
    /// start of the batch execution it rode in.  Total count equals
    /// `completed + failed`.
    pub const QUEUE: &str = "stage_queue_micros";
    /// Refresh probe: one sample per batch, the cost of
    /// `SourceProvider::refresh` (header peeks plus any reader refreshes).
    pub const REFRESH_PROBE: &str = "stage_refresh_probe_micros";
    /// Schema / trial-layout memo: one sample per catalog snapshot that
    /// assembles a multi-shard union, covering memo validation and (on
    /// generation movement) the union schema rebuild.
    pub const SCHEMA_MEMO: &str = "stage_schema_memo_micros";
    /// Result-cache lookup: one sample per batch, the generation-keyed
    /// probe of every unique query under the cache lock.
    pub const CACHE_LOOKUP: &str = "stage_cache_lookup_micros";
    /// Scan: one sample per result-cache **miss** — the end-to-end cost of
    /// answering that unique query by scanning (partial-cache stitch on a
    /// trial-sharded catalog, its share of the fused scan otherwise).
    /// Total count equals the `cache_misses` counter.
    pub const SCAN: &str = "stage_scan_micros";
    /// Fused per-shard rescans: one sample per **fused scan** the
    /// partial-cache planner runs — all of a batch's missing queries on
    /// one shard window share one scan and one sample.  Total count
    /// equals `fused_partial_scans` (and is `<= partial_misses`, with
    /// equality only when no two queries ever miss the same shard
    /// together).
    pub const SCAN_SHARD: &str = "stage_scan_shard_micros";
    /// Stitch: one sample per partial-cache query, the adjacent-window
    /// combine of the per-shard partials.
    pub const STITCH: &str = "stage_stitch_micros";
    /// Finalize: one sample per batch, building and fulfilling every
    /// reply slot.
    pub const FINALIZE: &str = "stage_finalize_micros";
    /// Whole batch execution: one sample per batch (refresh + cache +
    /// scans + finalize).  This is the value the slow-batch threshold is
    /// compared against.
    pub const BATCH_EXEC: &str = "batch_exec_micros";
    /// Fused scan passes inside `QuerySession::run`: one sample per trial
    /// window scanned.
    pub const SESSION_SCAN: &str = "session_fused_scan_micros";
    /// Store opens: one sample per shard reader opened (or fully
    /// reloaded) by a catalog.
    pub const STORE_OPEN: &str = "store_open_micros";
    /// Store refreshes: one sample per `StoreReader::refresh` call on a
    /// catalog shard.
    pub const STORE_REFRESH: &str = "store_refresh_micros";
}

/// Resolved telemetry handles shared by the submit path and the workers.
pub(crate) struct ServerTelemetry {
    /// The server's metric registry (counters, gauges and the stage
    /// histograms below).
    pub registry: Arc<Registry>,
    /// Ring buffer of recent structured events.
    pub recorder: Arc<FlightRecorder>,
    /// Batches slower than this many microseconds emit a `slow-batch`
    /// flight-recorder event; 0 disables the check.
    pub slow_batch_threshold_micros: u64,
    /// Retained request traces plus the trace-id allocator.
    pub traces: TraceStore,
    /// Trace every Nth admitted request (1 = every request, 0 = never).
    pub trace_sample_every: u64,
    pub admission: Arc<Histogram>,
    pub queue: Arc<Histogram>,
    pub refresh_probe: Arc<Histogram>,
    pub cache_lookup: Arc<Histogram>,
    pub scan: Arc<Histogram>,
    pub scan_shard: Arc<Histogram>,
    pub stitch: Arc<Histogram>,
    pub finalize: Arc<Histogram>,
    pub batch_exec: Arc<Histogram>,
    pub session_scan: Arc<Histogram>,
}

impl ServerTelemetry {
    /// Builds the bundle: a fresh registry, a recorder of the given
    /// capacity, a trace store, and every stage histogram pre-resolved.
    pub fn new(
        recorder_capacity: usize,
        slow_batch_threshold_micros: u64,
        trace_sample_every: u64,
        trace_capacity: usize,
    ) -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            recorder: Arc::new(FlightRecorder::new(recorder_capacity)),
            slow_batch_threshold_micros,
            traces: TraceStore::new(trace_capacity),
            trace_sample_every,
            admission: registry.histogram(stage::ADMISSION),
            queue: registry.histogram(stage::QUEUE),
            refresh_probe: registry.histogram(stage::REFRESH_PROBE),
            cache_lookup: registry.histogram(stage::CACHE_LOOKUP),
            scan: registry.histogram(stage::SCAN),
            scan_shard: registry.histogram(stage::SCAN_SHARD),
            stitch: registry.histogram(stage::STITCH),
            finalize: registry.histogram(stage::FINALIZE),
            batch_exec: registry.histogram(stage::BATCH_EXEC),
            session_scan: registry.histogram(stage::SESSION_SCAN),
            registry,
        }
    }
}
