//! The columnar result store: ingested Year Loss Tables as cache-friendly
//! column vectors plus dictionary-encoded dimension columns.

use catrisk_engine::ylt::{AnalysisOutput, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;

use crate::dict::Dictionary;
use crate::dims::{LineOfBusiness, SegmentMeta};
use crate::{QueryError, Result};

/// Columnar segment storage the query engine can scan.
///
/// The planner ([`QueryPlan`](crate::plan::QueryPlan)), executor
/// ([`execute`](crate::exec::execute)) and
/// [`QuerySession`](crate::session::QuerySession) are generic over this
/// trait, so the same parallel scan runs over the in-memory [`ResultStore`]
/// and over persistence back-ends (the on-disk reader in `catrisk-riskstore`
/// hands out slices borrowed straight from its loaded column region — no
/// per-query deserialisation).
///
/// The contract mirrors [`ResultStore`]'s layout: every segment holds
/// exactly [`num_trials`](SegmentSource::num_trials) losses per column, the
/// per-segment code vectors are indexed by segment, and each dictionary maps
/// the codes appearing in the corresponding code vector.  Implementations
/// must be `Sync`: the scan shares `&self` across worker threads.
pub trait SegmentSource: Sync {
    /// Number of trials every segment holds.
    fn num_trials(&self) -> usize;

    /// Number of segments.
    fn num_segments(&self) -> usize;

    /// The year-loss slice of one segment (one value per trial).
    ///
    /// Sources whose trial axis is not one contiguous allocation (a
    /// [`TrialShardedSource`](crate::trial_sharded::TrialShardedSource)
    /// over more than one shard) cannot hand out a full-segment borrow
    /// and panic here; scans must use the windowed accessors and keep
    /// every window inside one piece of [`trial_cuts`](Self::trial_cuts).
    fn year_losses(&self, segment: usize) -> &[f64];

    /// The maximum-occurrence-loss slice of one segment.
    ///
    /// Same contiguity caveat as [`year_losses`](Self::year_losses).
    fn max_occ_losses(&self, segment: usize) -> &[f64];

    /// The year losses of `segment` over the trial window
    /// `[start, end)`.
    ///
    /// The window must not straddle an interior cut reported by
    /// [`trial_cuts`](Self::trial_cuts) — within one piece the data is
    /// contiguous, so the default borrows out of the full-segment slice.
    fn year_losses_in(&self, segment: usize, start: usize, end: usize) -> &[f64] {
        &self.year_losses(segment)[start..end]
    }

    /// The maximum-occurrence losses of `segment` over the trial window
    /// `[start, end)` — same contract as
    /// [`year_losses_in`](Self::year_losses_in).
    fn max_occ_losses_in(&self, segment: usize, start: usize, end: usize) -> &[f64] {
        &self.max_occ_losses(segment)[start..end]
    }

    /// Interior trial offsets at which the loss columns change backing
    /// allocation, in ascending order (empty for the common contiguous
    /// case).  The scan splits its trial blocks at these cuts so every
    /// windowed slice access stays inside one allocation; because
    /// per-block partials merge by exact concatenation, extra cuts never
    /// change results — see
    /// [`PartialAggregate::combine_adjacent`](crate::exec::PartialAggregate::combine_adjacent).
    fn trial_cuts(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Per-segment dictionary codes of the layer dimension.
    fn layer_codes(&self) -> &[u32];

    /// Per-segment dictionary codes of the peril dimension.
    fn peril_codes(&self) -> &[u32];

    /// Per-segment dictionary codes of the region dimension.
    fn region_codes(&self) -> &[u32];

    /// Per-segment dictionary codes of the line-of-business dimension.
    fn lob_codes(&self) -> &[u32];

    /// The layer dictionary.
    fn layer_dict(&self) -> &Dictionary<LayerId>;

    /// The peril dictionary.
    fn peril_dict(&self) -> &Dictionary<Peril>;

    /// The region dictionary.
    fn region_dict(&self) -> &Dictionary<Region>;

    /// The line-of-business dictionary.
    fn lob_dict(&self) -> &Dictionary<LineOfBusiness>;
}

/// Columnar store of simulation results.
///
/// Each ingested YLT becomes one *segment*: a contiguous run of
/// `num_trials` values inside two loss columns (`year_loss` for aggregate /
/// AEP analysis, `max_occ_loss` for occurrence / OEP analysis), plus one
/// dictionary code per dimension.  Layout:
///
/// ```text
/// year_loss:    [seg0 t0..tN | seg1 t0..tN | seg2 t0..tN | ...]
/// max_occ_loss: [seg0 t0..tN | seg1 t0..tN | seg2 t0..tN | ...]
/// peril_codes:  [seg0, seg1, seg2, ...]        (one u32 per segment)
/// region_codes: [...]   lob_codes: [...]   layer_codes: [...]
/// ```
///
/// Scans therefore stream sequentially through memory one segment slice at
/// a time, and filters touch only the tiny per-segment code vectors — the
/// "pushdown" half of the QuPARA mapping.
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    num_trials: usize,
    year_loss: Vec<f64>,
    max_occ_loss: Vec<f64>,
    layer_codes: Vec<u32>,
    peril_codes: Vec<u32>,
    region_codes: Vec<u32>,
    lob_codes: Vec<u32>,
    layer_dict: Dictionary<LayerId>,
    peril_dict: Dictionary<Peril>,
    region_dict: Dictionary<Region>,
    lob_dict: Dictionary<LineOfBusiness>,
    metas: Vec<SegmentMeta>,
}

impl ResultStore {
    /// Creates an empty store for results over `num_trials` trials.
    pub fn new(num_trials: usize) -> Self {
        Self {
            num_trials,
            ..Self::default()
        }
    }

    /// Ingests one YLT tagged with its dimensions, returning the new
    /// segment's index.
    pub fn ingest(&mut self, ylt: &YearLossTable, meta: SegmentMeta) -> Result<usize> {
        if ylt.num_trials() != self.num_trials {
            return Err(QueryError::Store(format!(
                "segment {meta} has {} trials but the store holds {}-trial results",
                ylt.num_trials(),
                self.num_trials
            )));
        }
        let segment = self.metas.len();
        self.year_loss.reserve(self.num_trials);
        self.max_occ_loss.reserve(self.num_trials);
        for outcome in ylt.outcomes() {
            self.year_loss.push(outcome.year_loss);
            self.max_occ_loss.push(outcome.max_occurrence_loss);
        }
        self.layer_codes.push(self.layer_dict.intern(meta.layer));
        self.peril_codes.push(self.peril_dict.intern(meta.peril));
        self.region_codes.push(self.region_dict.intern(meta.region));
        self.lob_codes.push(self.lob_dict.intern(meta.lob));
        self.metas.push(meta);
        Ok(segment)
    }

    /// Ingests every layer of an engine run, one segment per layer, tagged
    /// with the corresponding metadata (`metas[i]` tags `output.layer(i)`).
    pub fn ingest_output(&mut self, output: &AnalysisOutput, metas: &[SegmentMeta]) -> Result<()> {
        if output.num_layers() != metas.len() {
            return Err(QueryError::Store(format!(
                "{} layers but {} segment tags",
                output.num_layers(),
                metas.len()
            )));
        }
        // Validate everything before mutating, so a failed ingest leaves the
        // store exactly as it was (all-or-nothing).
        for (ylt, meta) in output.layers().iter().zip(metas) {
            if ylt.num_trials() != self.num_trials {
                return Err(QueryError::Store(format!(
                    "segment {meta} has {} trials but the store holds {}-trial results",
                    ylt.num_trials(),
                    self.num_trials
                )));
            }
        }
        for (ylt, meta) in output.layers().iter().zip(metas) {
            self.ingest(ylt, *meta)?;
        }
        Ok(())
    }

    /// Number of trials every segment holds.
    pub fn num_trials(&self) -> usize {
        self.num_trials
    }

    /// Number of ingested segments.
    pub fn num_segments(&self) -> usize {
        self.metas.len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The year-loss slice of one segment (one value per trial).
    #[inline]
    pub fn year_losses(&self, segment: usize) -> &[f64] {
        let start = segment * self.num_trials;
        &self.year_loss[start..start + self.num_trials]
    }

    /// The maximum-occurrence-loss slice of one segment.
    #[inline]
    pub fn max_occ_losses(&self, segment: usize) -> &[f64] {
        let start = segment * self.num_trials;
        &self.max_occ_loss[start..start + self.num_trials]
    }

    /// The dimension tags of one segment.
    pub fn meta(&self, segment: usize) -> &SegmentMeta {
        &self.metas[segment]
    }

    /// All segment tags in segment order.
    pub fn metas(&self) -> &[SegmentMeta] {
        &self.metas
    }

    /// Per-segment dictionary codes of the layer dimension.
    pub fn layer_codes(&self) -> &[u32] {
        &self.layer_codes
    }

    /// Per-segment dictionary codes of the peril dimension.
    pub fn peril_codes(&self) -> &[u32] {
        &self.peril_codes
    }

    /// Per-segment dictionary codes of the region dimension.
    pub fn region_codes(&self) -> &[u32] {
        &self.region_codes
    }

    /// Per-segment dictionary codes of the line-of-business dimension.
    pub fn lob_codes(&self) -> &[u32] {
        &self.lob_codes
    }

    /// The layer dictionary.
    pub fn layer_dict(&self) -> &Dictionary<LayerId> {
        &self.layer_dict
    }

    /// The peril dictionary.
    pub fn peril_dict(&self) -> &Dictionary<Peril> {
        &self.peril_dict
    }

    /// The region dictionary.
    pub fn region_dict(&self) -> &Dictionary<Region> {
        &self.region_dict
    }

    /// The line-of-business dictionary.
    pub fn lob_dict(&self) -> &Dictionary<LineOfBusiness> {
        &self.lob_dict
    }

    /// Approximate heap memory of the loss columns, in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.year_loss.len() + self.max_occ_loss.len()) * std::mem::size_of::<f64>()
            + (self.layer_codes.len()
                + self.peril_codes.len()
                + self.region_codes.len()
                + self.lob_codes.len())
                * std::mem::size_of::<u32>()
    }
}

impl SegmentSource for ResultStore {
    fn num_trials(&self) -> usize {
        self.num_trials
    }

    fn num_segments(&self) -> usize {
        self.metas.len()
    }

    fn year_losses(&self, segment: usize) -> &[f64] {
        ResultStore::year_losses(self, segment)
    }

    fn max_occ_losses(&self, segment: usize) -> &[f64] {
        ResultStore::max_occ_losses(self, segment)
    }

    fn layer_codes(&self) -> &[u32] {
        &self.layer_codes
    }

    fn peril_codes(&self) -> &[u32] {
        &self.peril_codes
    }

    fn region_codes(&self) -> &[u32] {
        &self.region_codes
    }

    fn lob_codes(&self) -> &[u32] {
        &self.lob_codes
    }

    fn layer_dict(&self) -> &Dictionary<LayerId> {
        &self.layer_dict
    }

    fn peril_dict(&self) -> &Dictionary<Peril> {
        &self.peril_dict
    }

    fn region_dict(&self) -> &Dictionary<Region> {
        &self.region_dict
    }

    fn lob_dict(&self) -> &Dictionary<LineOfBusiness> {
        &self.lob_dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::ylt::TrialOutcome;

    fn outcome(year: f64, occ: f64) -> TrialOutcome {
        TrialOutcome {
            year_loss: year,
            max_occurrence_loss: occ,
            nonzero_events: 0,
        }
    }

    fn meta(layer: u32, peril: Peril) -> SegmentMeta {
        SegmentMeta::new(
            LayerId(layer),
            peril,
            Region::Europe,
            LineOfBusiness::Property,
        )
    }

    #[test]
    fn ingest_lays_out_columns() {
        let mut store = ResultStore::new(2);
        let s0 = store
            .ingest(
                &YearLossTable::new(LayerId(0), vec![outcome(1.0, 0.5), outcome(2.0, 2.0)]),
                meta(0, Peril::Hurricane),
            )
            .unwrap();
        let s1 = store
            .ingest(
                &YearLossTable::new(LayerId(1), vec![outcome(3.0, 3.0), outcome(0.0, 0.0)]),
                meta(1, Peril::Flood),
            )
            .unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(store.num_segments(), 2);
        assert_eq!(store.year_losses(0), &[1.0, 2.0]);
        assert_eq!(store.year_losses(1), &[3.0, 0.0]);
        assert_eq!(store.max_occ_losses(0), &[0.5, 2.0]);
        assert_eq!(store.peril_codes(), &[0, 1]);
        assert_eq!(*store.peril_dict().value(1), Peril::Flood);
        assert_eq!(store.meta(1).layer, LayerId(1));
        assert!(store.memory_bytes() >= 4 * 8);
        assert!(!store.is_empty());
    }

    #[test]
    fn ingest_rejects_trial_mismatch() {
        let mut store = ResultStore::new(3);
        let err = store
            .ingest(
                &YearLossTable::new(LayerId(0), vec![outcome(1.0, 1.0)]),
                meta(0, Peril::Hurricane),
            )
            .unwrap_err();
        assert!(matches!(err, QueryError::Store(_)));
    }

    #[test]
    fn ingest_output_pairs_layers_with_tags() {
        let out = AnalysisOutput::new(vec![
            YearLossTable::new(LayerId(0), vec![outcome(1.0, 1.0)]),
            YearLossTable::new(LayerId(1), vec![outcome(2.0, 2.0)]),
        ]);
        let mut store = ResultStore::new(1);
        store
            .ingest_output(&out, &[meta(0, Peril::Hurricane), meta(1, Peril::Flood)])
            .unwrap();
        assert_eq!(store.num_segments(), 2);
        assert!(store
            .ingest_output(&out, &[meta(0, Peril::Hurricane)])
            .is_err());
    }
}
