//! Building dimension-sliced engine inputs.
//!
//! The query store answers dimension-sliced questions, so the engine must
//! produce YLTs at slicing granularity: one engine layer per *(book,
//! peril)* cell rather than one per book.  This module splits each book's
//! ELT by the catalog's per-event peril tag, assembles an
//! [`AnalysisInput`] with one layer per non-empty cell, and returns the
//! [`SegmentMeta`] tags to ingest any engine's output with — any of the
//! engine variants can run the input, and because they are bit-identical,
//! so are the query results.

use catrisk_engine::input::{AnalysisInput, AnalysisInputBuilder};
use catrisk_engine::ylt::AnalysisOutput;
use catrisk_eventgen::catalog::EventCatalog;
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_eventgen::yet::YearEventTable;
use catrisk_eventgen::EventId;
use catrisk_finterms::layer::LayerId;
use catrisk_finterms::terms::{FinancialTerms, LayerTerms};

use crate::dims::{LineOfBusiness, SegmentMeta};
use crate::store::ResultStore;
use crate::{QueryError, Result};

/// One exposure book to segment: its ELT pairs plus the dimensions shared
/// by every segment carved out of it.
#[derive(Debug, Clone)]
pub struct SegmentedBook {
    /// `(event, mean loss)` pairs of the book's ELT.
    pub pairs: Vec<(EventId, f64)>,
    /// Financial terms applied to each event loss of the book.
    pub financial_terms: FinancialTerms,
    /// Layer terms applied per segment carved from the book.
    pub layer_terms: LayerTerms,
    /// Region of the book's exposures.
    pub region: Region,
    /// Line of business the book is written under.
    pub lob: LineOfBusiness,
}

/// A dimension-sliced engine input plus the tags describing each layer.
#[derive(Debug)]
pub struct SegmentedInput {
    /// Engine input with one layer per segment.
    pub input: AnalysisInput,
    /// `metas[i]` tags layer `i` of any engine's output.
    pub metas: Vec<SegmentMeta>,
}

impl SegmentedInput {
    /// Builds the segmented input: each book's ELT is split by peril and
    /// every non-empty `(book, peril)` cell becomes one ELT + one layer.
    /// The layer dimension tags segments with the *book* index, so grouping
    /// by layer reassembles books.
    pub fn build(
        yet: std::sync::Arc<YearEventTable>,
        catalog: &EventCatalog,
        books: &[SegmentedBook],
    ) -> Result<SegmentedInput> {
        if books.is_empty() {
            return Err(QueryError::Store("no books to segment".to_string()));
        }
        let mut builder = AnalysisInputBuilder::new();
        builder.set_yet_shared(yet);
        builder.with_catalog_size(catalog.len() as u32);
        let mut metas = Vec::new();
        for (book_index, book) in books.iter().enumerate() {
            for (peril, pairs) in split_pairs_by_peril(&book.pairs, catalog) {
                let elt = builder.add_elt(&pairs, book.financial_terms);
                builder.add_layer_over(&[elt], book.layer_terms);
                metas.push(SegmentMeta::new(
                    LayerId(book_index as u32),
                    peril,
                    book.region,
                    book.lob,
                ));
            }
        }
        if metas.is_empty() {
            return Err(QueryError::Store(
                "no segment has any ELT records; nothing to analyse".to_string(),
            ));
        }
        let input = builder
            .build()
            .map_err(|e| QueryError::Store(format!("segmented input invalid: {e}")))?;
        Ok(SegmentedInput { input, metas })
    }

    /// Ingests an engine output produced from [`SegmentedInput::input`]
    /// into a fresh store.
    pub fn ingest(&self, output: &AnalysisOutput) -> Result<ResultStore> {
        let mut store = ResultStore::new(self.input.num_trials());
        store.ingest_output(output, &self.metas)?;
        Ok(store)
    }
}

/// Splits ELT `(event, loss)` pairs by the catalog peril of each event,
/// preserving pair order within each peril.  Events unknown to the catalog
/// are dropped (they can produce no tagged loss).
pub fn split_pairs_by_peril(
    pairs: &[(EventId, f64)],
    catalog: &EventCatalog,
) -> Vec<(Peril, Vec<(EventId, f64)>)> {
    let mut by_peril: Vec<(Peril, Vec<(EventId, f64)>)> = Vec::new();
    for &(event, loss) in pairs {
        let Some(info) = catalog.event(event) else {
            continue;
        };
        match by_peril.iter_mut().find(|(p, _)| *p == info.peril) {
            Some((_, list)) => list.push((event, loss)),
            None => by_peril.push((info.peril, vec![(event, loss)])),
        }
    }
    by_peril
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::sequential::SequentialEngine;
    use catrisk_eventgen::catalog::CatalogConfig;
    use catrisk_eventgen::simulate::{YetConfig, YetGenerator};
    use catrisk_simkit::rng::RngFactory;
    use std::sync::Arc;

    fn world() -> (Arc<YearEventTable>, EventCatalog) {
        let factory = RngFactory::new(7);
        let catalog = EventCatalog::generate(
            &CatalogConfig {
                num_events: 2_000,
                annual_event_budget: 150.0,
                rate_tail_index: 1.3,
            },
            &factory,
        )
        .unwrap();
        let yet = YetGenerator::new(&catalog, YetConfig::with_trials(64))
            .unwrap()
            .generate(&factory);
        (Arc::new(yet), catalog)
    }

    fn book(
        catalog: &EventCatalog,
        seed: u64,
        region: Region,
        lob: LineOfBusiness,
    ) -> SegmentedBook {
        let factory = RngFactory::new(seed);
        let mut rng = factory.stream(0);
        let pairs: Vec<(EventId, f64)> = (0..400)
            .map(|_| {
                (
                    rng.below(catalog.len() as u64) as EventId,
                    1_000.0 + rng.uniform() * 5.0e5,
                )
            })
            .collect();
        SegmentedBook {
            pairs,
            financial_terms: FinancialTerms::pass_through(),
            layer_terms: LayerTerms::unlimited(),
            region,
            lob,
        }
    }

    #[test]
    fn split_preserves_records_and_tags_perils() {
        let (_, catalog) = world();
        let pairs: Vec<(EventId, f64)> = (0..500u32).map(|e| (e, f64::from(e) + 1.0)).collect();
        let split = split_pairs_by_peril(&pairs, &catalog);
        let total: usize = split.iter().map(|(_, list)| list.len()).sum();
        assert_eq!(total, 500, "every known event lands in exactly one peril");
        for (peril, list) in &split {
            for (event, _) in list {
                assert_eq!(catalog.event(*event).unwrap().peril, *peril);
            }
        }
    }

    #[test]
    fn segmented_input_runs_and_ingests() {
        let (yet, catalog) = world();
        let books = vec![
            book(&catalog, 1, Region::Europe, LineOfBusiness::Property),
            book(&catalog, 2, Region::Japan, LineOfBusiness::Marine),
        ];
        let segmented = SegmentedInput::build(Arc::clone(&yet), &catalog, &books).unwrap();
        assert_eq!(segmented.input.layers().len(), segmented.metas.len());
        assert!(
            segmented.metas.len() > 2,
            "books split into multiple peril segments"
        );
        let output = SequentialEngine::new().run(&segmented.input);
        let store = segmented.ingest(&output).unwrap();
        assert_eq!(store.num_segments(), segmented.metas.len());
        assert_eq!(store.num_trials(), 64);
        // Book reassembly: layer dimension has one value per book.
        assert_eq!(store.layer_dict().len(), 2);
    }

    #[test]
    fn empty_books_are_rejected() {
        let (yet, catalog) = world();
        assert!(SegmentedInput::build(Arc::clone(&yet), &catalog, &[]).is_err());
        let empty = SegmentedBook {
            pairs: vec![],
            financial_terms: FinancialTerms::pass_through(),
            layer_terms: LayerTerms::unlimited(),
            region: Region::Europe,
            lob: LineOfBusiness::Property,
        };
        assert!(SegmentedInput::build(yet, &catalog, &[empty]).is_err());
    }
}
