//! # catrisk-bench
//!
//! Workload generation and the benchmark harness that regenerates every
//! table and figure of the paper's evaluation (Section III).
//!
//! The [`workload`] module builds synthetic analysis inputs whose *shape*
//! (trials, events per trial, ELTs per layer, ELT record counts, catalog
//! size, layer count) is controlled exactly — the knobs the paper sweeps in
//! Fig. 2 — without running the full catastrophe-model pipeline, so the
//! benchmarks measure the aggregate risk engine rather than data
//! preparation.
//!
//! The Criterion benches under `benches/` and the `figures` binary under
//! `src/bin/` consume these workloads:
//!
//! | experiment | bench target | figures subcommand |
//! |---|---|---|
//! | Table I | – (definition) | `figures table1` |
//! | Fig. 2a–d | `fig2_sequential` | `figures fig2a` … `fig2d` |
//! | Fig. 3a–b | `fig3_multicore` | `figures fig3a`, `fig3b` |
//! | Fig. 4 | `fig4_gpu_basic` | `figures fig4` |
//! | Fig. 5a–b | `fig5_gpu_chunked` | `figures fig5a`, `fig5b` |
//! | Fig. 6a–b | `fig6_summary` | `figures fig6a`, `fig6b` |
//! | lookup-structure ablation | `ablation_lookup` | `figures ablation-lookup` |
//! | real-time pricing ablation | `ablation_realtime` | `figures ablation-realtime` |
//!
//! Beyond the paper's figures, `query_engine` measures the ad-hoc query
//! engine, `store_cold_open` the persistent store, and `serve_throughput`
//! the micro-batched serving front-end against a scan-per-request
//! baseline.  Two environment variables support CI smoke runs:
//! `CATRISK_BENCH_SAMPLES` caps sample counts and `CATRISK_BENCH_QUICK=1`
//! shrinks the workloads of the benches that honour it (see the criterion
//! shim for `CATRISK_BENCH_JSON` summary output).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod workload;

pub use workload::{build_input, WorkloadSpec};
