//! Batched query sessions: many queries answered in (close to) one scan.
//!
//! The serving primitive for interactive workloads: analysts (or a serving
//! front-end fanning out user requests) submit a *batch* of queries against
//! one store.  The session
//!
//! 1. **deduplicates scan specs** — queries that share a filter and
//!    grouping (`Query::scan_spec`) share one scan and one set of grouped
//!    loss vectors, so "mean, VaR, TVaR and an EP curve of the same slice"
//!    costs one scan instead of four;
//! 2. **fuses the remaining scans** — specs over the same trial window are
//!    evaluated in a single pass: within each trial block every segment's
//!    loss slice is read once and routed to every spec that selected it,
//!    while the slice is hot in cache, instead of re-streaming the loss
//!    columns once per query;
//! 3. **shares order statistics** — sorted copies of each group's loss
//!    vector (needed by VaR/TVaR/PML/EP) are computed once per spec and
//!    reused by every query in the batch.
//!
//! This mirrors QuPARA's design of pushing a whole query batch through one
//! MapReduce job over the shared YLT file.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::dims::Dimension;
use crate::exec::{self, PartialAggregate};
use crate::plan::QueryPlan;
use crate::query::{Filter, Query};
use crate::result::QueryResult;
use crate::store::{ResultStore, SegmentSource};
use crate::Result;

/// A batched query session over one store — any [`SegmentSource`], the
/// in-memory [`ResultStore`] (the default) or a persistent reader.
pub struct QuerySession<'a, S: SegmentSource + ?Sized = ResultStore> {
    store: &'a S,
    /// Latency sink for each fused scan pass, attached with
    /// [`QuerySession::with_scan_histogram`].  A borrow (not an `Arc`) so
    /// the session stays `Copy`.
    fused_scan_hist: Option<&'a catrisk_telemetry::Histogram>,
}

impl<S: SegmentSource + ?Sized> std::fmt::Debug for QuerySession<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySession")
            .field("segments", &self.store.num_segments())
            .field("trials", &self.store.num_trials())
            .finish()
    }
}

impl<S: SegmentSource + ?Sized> Clone for QuerySession<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: SegmentSource + ?Sized> Copy for QuerySession<'_, S> {}

/// One deduplicated scan spec and the queries that share it.
struct Spec {
    plan: QueryPlan,
    /// Indices into the batch of the queries using this spec.
    queries: Vec<usize>,
    /// Grouped loss vectors, filled by the fused scan.
    partial: Option<PartialAggregate>,
}

impl<'a, S: SegmentSource + ?Sized> QuerySession<'a, S> {
    /// Opens a session over `store`.
    pub fn new(store: &'a S) -> Self {
        Self {
            store,
            fused_scan_hist: None,
        }
    }

    /// Attaches a histogram that every fused scan pass records its
    /// wall-clock microseconds into — one sample per trial window scanned
    /// by [`QuerySession::run`].
    pub fn with_scan_histogram(mut self, histogram: &'a catrisk_telemetry::Histogram) -> Self {
        self.fused_scan_hist = Some(histogram);
        self
    }

    /// The store this session serves.
    pub fn store(&self) -> &S {
        self.store
    }

    /// Runs a batch of queries, returning one result per query in input
    /// order.  Equivalent to calling [`exec::execute`] per query — the
    /// batched path produces bit-identical results — but amortises scans
    /// across the batch.
    pub fn run(&self, queries: &[Query]) -> Result<Vec<QueryResult>> {
        // 1. Deduplicate scan specs.  `Query::scan_spec` is `Eq + Hash`
        //    with a total float treatment (NaN-free by construction), so a
        //    hash map makes this linear in the batch size — serving
        //    front-ends push batches of hundreds of requests through here.
        let mut specs: Vec<Spec> = Vec::new();
        let mut spec_index: HashMap<(&Filter, &[Dimension]), usize> = HashMap::new();
        for (qi, query) in queries.iter().enumerate() {
            match spec_index.entry(query.scan_spec()) {
                Entry::Occupied(slot) => specs[*slot.get()].queries.push(qi),
                Entry::Vacant(slot) => {
                    let plan = QueryPlan::new(self.store, query)?;
                    slot.insert(specs.len());
                    specs.push(Spec {
                        plan,
                        queries: vec![qi],
                        partial: None,
                    });
                }
            }
        }

        // 2. Fuse scans per trial window.
        let mut windows: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for (si, spec) in specs.iter().enumerate() {
            let key = (spec.plan.trial_start, spec.plan.trial_end);
            match windows.iter_mut().find(|(s, e, _)| (*s, *e) == key) {
                Some((_, _, members)) => members.push(si),
                None => windows.push((key.0, key.1, vec![si])),
            }
        }
        for (start, end, members) in windows {
            let scan_started = std::time::Instant::now();
            let partials = self.fused_scan(start, end, &members, &specs);
            if let Some(histogram) = self.fused_scan_hist {
                histogram.record(scan_started.elapsed().as_micros() as u64);
            }
            for (si, partial) in members.into_iter().zip(partials) {
                specs[si].partial = Some(partial);
            }
        }

        // 3. Finalise every query from its spec's shared grouped data.
        //    `SpecState` carries the per-spec row order, segment counts and
        //    lazily sorted loss copies, so they are computed once per spec
        //    and shared by every query in the batch.
        let mut results: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        for spec in &specs {
            let partial = spec.partial.as_ref().expect("scanned above");
            let mut state = exec::SpecState::new(&spec.plan);
            for &qi in &spec.queries {
                results[qi] = Some(exec::assemble(
                    &queries[qi],
                    &spec.plan,
                    partial,
                    &mut state,
                ));
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every query finalised"))
            .collect())
    }

    /// One pass over the trial window `[start, end)` serving every spec in
    /// `members`: per trial block, each segment's loss slices are read once
    /// and accumulated into every spec that selected the segment.  The
    /// pass itself is [`exec::fused_scan_plans`] — the same core the
    /// trial-partial path fuses its per-shard rescans through.
    fn fused_scan(
        &self,
        start: usize,
        end: usize,
        members: &[usize],
        specs: &[Spec],
    ) -> Vec<PartialAggregate> {
        let plans: Vec<&QueryPlan> = members.iter().map(|&si| &specs[si].plan).collect();
        exec::fused_scan_plans(self.store, &plans, start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::{Dimension, LineOfBusiness, SegmentMeta};
    use crate::exec::execute;
    use crate::query::{Aggregate, Basis, QueryBuilder};
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;
    use catrisk_simkit::rng::RngFactory;

    fn random_store(trials: usize, segments: usize, seed: u64) -> ResultStore {
        let factory = RngFactory::new(seed);
        let mut store = ResultStore::new(trials);
        for s in 0..segments {
            let mut rng = factory.stream(s as u64);
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.3 {
                        rng.uniform() * 1.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: 0,
                    }
                })
                .collect();
            let meta = SegmentMeta::new(
                LayerId((s / 4) as u32),
                Peril::ALL[s % Peril::ALL.len()],
                Region::ALL[(s / 2) % Region::ALL.len()],
                LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
            );
            store
                .ingest(&YearLossTable::new(LayerId(s as u32), outcomes), meta)
                .unwrap();
        }
        store
    }

    fn batch() -> Vec<Query> {
        vec![
            QueryBuilder::new()
                .with_perils([Peril::Hurricane, Peril::Flood])
                .group_by(Dimension::Region)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.99 })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .with_perils([Peril::Hurricane, Peril::Flood])
                .group_by(Dimension::Region)
                .aggregate(Aggregate::Var { level: 0.99 })
                .aggregate(Aggregate::EpCurve {
                    basis: Basis::Aep,
                    points: 10,
                })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .group_by(Dimension::Lob)
                .aggregate(Aggregate::Pml {
                    return_period: 100.0,
                    basis: Basis::Oep,
                })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .trials(0..64)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::StdDev)
                .build()
                .unwrap(),
            QueryBuilder::new()
                .group_by(Dimension::Region)
                .loss_at_least(1.0e5)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.9 })
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn batched_results_match_per_query_execution() {
        let store = random_store(257, 24, 99);
        let queries = batch();
        let session = QuerySession::new(&store);
        assert_eq!(session.store().num_segments(), 24);
        let batched = session.run(&queries).unwrap();
        for (query, batched_result) in queries.iter().zip(&batched) {
            let single = execute(&store, query).unwrap();
            assert_eq!(
                &single, batched_result,
                "batched must be bit-identical to single"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let store = random_store(16, 4, 1);
        let results = QuerySession::new(&store).run(&[]).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn invalid_query_in_batch_errors() {
        let store = random_store(16, 4, 1);
        let bad = QueryBuilder::new()
            .trials(0..999)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(QuerySession::new(&store).run(&[bad]).is_err());
    }
}
