//! Latency accounting and server counters.
//!
//! The snapshot types clients parse ([`StatsSnapshot`],
//! [`RequestTimings`], the [`percentile`] helper) live in
//! `catrisk-riskclient` and are re-exported here at their long-standing
//! paths; this module keeps the server-side half — the lock-free
//! `Counters` the registry resolves them from.

use std::sync::Arc;

use catrisk_telemetry::{Counter, Gauge, Registry};

pub use catrisk_riskclient::{percentile, RequestTimings, StatsSnapshot};

/// The server counters, as lock-free handles registered in the server's
/// metric [`Registry`] — the same values surface both as the legacy
/// [`StatsSnapshot`] (`stats` command) and through the registry's
/// `metrics` exposition, from one set of atomics.  Maxima are gauges
/// (Prometheus semantics for non-monotonic values); everything else is a
/// monotonic counter.
#[derive(Debug)]
pub(crate) struct Counters {
    pub submitted: Arc<Counter>,
    pub rejected: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub largest_batch: Arc<Gauge>,
    pub max_queue_depth: Arc<Gauge>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub partial_hits: Arc<Counter>,
    pub partial_misses: Arc<Counter>,
    pub fused_partial_scans: Arc<Counter>,
    pub refreshes: Arc<Counter>,
    pub traces_started: Arc<Counter>,
    pub traces_retained: Arc<Counter>,
    pub discovered_stores: Arc<Counter>,
}

impl Counters {
    /// Registers every counter under its [`StatsSnapshot`] field name and
    /// returns the resolved handles.
    pub fn register(registry: &Registry) -> Self {
        Self {
            submitted: registry.counter("submitted"),
            rejected: registry.counter("rejected"),
            completed: registry.counter("completed"),
            failed: registry.counter("failed"),
            batches: registry.counter("batches"),
            largest_batch: registry.gauge("largest_batch"),
            max_queue_depth: registry.gauge("max_queue_depth"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            partial_hits: registry.counter("partial_hits"),
            partial_misses: registry.counter("partial_misses"),
            fused_partial_scans: registry.counter("fused_partial_scans"),
            refreshes: registry.counter("refreshes"),
            traces_started: registry.counter("traces_started"),
            traces_retained: registry.counter("traces_retained"),
            discovered_stores: registry.counter("discovered_stores"),
        }
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            batches: self.batches.get(),
            largest_batch: self.largest_batch.get().max(0) as u64,
            max_queue_depth: self.max_queue_depth.get().max(0) as u64,
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            partial_hits: self.partial_hits.get(),
            partial_misses: self.partial_misses.get(),
            fused_partial_scans: self.fused_partial_scans.get(),
            refreshes: self.refreshes.get(),
            traces_started: self.traces_started.get(),
            traces_retained: self.traces_retained.get(),
            discovered_stores: self.discovered_stores.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mean_batch() {
        let registry = Registry::new();
        let counters = Counters::register(&registry);
        assert_eq!(counters.snapshot().mean_batch(), 0.0);
        counters.completed.add(30);
        counters.batches.add(10);
        counters.largest_batch.bump_max(5);
        counters.largest_batch.bump_max(3);
        let snap = counters.snapshot();
        assert_eq!(snap.mean_batch(), 3.0);
        assert_eq!(snap.largest_batch, 5);
        // The same atomics surface through the registry's exposition.
        let metrics = registry.snapshot();
        assert_eq!(metrics.counter("completed"), Some(30));
        assert_eq!(metrics.gauge("largest_batch"), Some(5));
    }

    #[test]
    fn discovery_counter_surfaces_in_both_expositions() {
        let registry = Registry::new();
        let counters = Counters::register(&registry);
        counters.discovered_stores.add(2);
        assert_eq!(counters.snapshot().discovered_stores, 2);
        assert_eq!(registry.snapshot().counter("discovered_stores"), Some(2));
    }
}
