//! Client-side routing across a fleet of replica endpoints: round-robin
//! spreading, health marking, and failover that resubmits a request to
//! the next live replica when its connection dies mid-exchange.
//!
//! Failover is sound because every request in the protocol is
//! **idempotent**: queries are pure reads over a committed snapshot, and
//! the observability commands are snapshots too.  A request that died on
//! one replica can therefore be replayed verbatim on another — the reply
//! is bit-identical (replicas serve the same committed stores) and no
//! accepted ticket is ever dropped on the floor.  Server-side *error
//! replies* (`ok=false`: parse errors, overload backpressure) do **not**
//! fail over — the replica answered, and replaying a rejected request on
//! a sibling would turn typed backpressure into silent retry storms.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::client::{Client, ClientConfig, ClientError, Result};
use crate::wire::WireReply;

/// One replica endpoint: its address, a pooled connection, and a health
/// bit flipped by failovers and probes.
struct Replica {
    addr: String,
    /// The pooled connection, lazily established and dropped on
    /// transport failure.  A `Mutex` (not per-thread pools) because the
    /// protocol is strictly serial per connection anyway.
    connection: Mutex<Option<Client>>,
    /// 0 = healthy, 1 = marked dead (skipped by routing until a probe
    /// revives it).
    dead: AtomicU64,
}

/// A routing client over N replica endpoints.
///
/// Requests spread round-robin across the live replicas; a replica whose
/// connection fails is marked dead and the request is resubmitted to the
/// next live one (see the module docs for why that is sound).  Dead
/// replicas are skipped until [`RoutedClient::probe`] revives them.
pub struct RoutedClient {
    replicas: Vec<Replica>,
    cursor: AtomicUsize,
    config: ClientConfig,
    /// Requests that were resubmitted to a sibling after their replica's
    /// connection died.
    failovers: AtomicU64,
}

impl RoutedClient {
    /// A router over the given replica addresses.  Connections are
    /// established lazily, per replica, on first use.
    pub fn new(addrs: impl IntoIterator<Item = impl Into<String>>, config: ClientConfig) -> Self {
        RoutedClient {
            replicas: addrs
                .into_iter()
                .map(|addr| Replica {
                    addr: addr.into(),
                    connection: Mutex::new(None),
                    dead: AtomicU64::new(0),
                })
                .collect(),
            cursor: AtomicUsize::new(0),
            config,
            failovers: AtomicU64::new(0),
        }
    }

    /// The replica addresses, in routing order.
    pub fn addrs(&self) -> Vec<&str> {
        self.replicas.iter().map(|r| r.addr.as_str()).collect()
    }

    /// Number of replicas (live or dead).
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas currently marked live.
    pub fn live_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.dead.load(Ordering::Relaxed) == 0)
            .count()
    }

    /// Requests resubmitted to a sibling after a replica died
    /// mid-exchange.
    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    fn round_trip_on(&self, replica: &Replica, line: &str) -> Result<WireReply> {
        let mut slot = replica
            .connection
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(Client::connect(&replica.addr, self.config)?);
        }
        let client = slot.as_mut().expect("connection was just established");
        match client.round_trip(line) {
            Ok(reply) => Ok(reply),
            Err(err) => {
                // Whatever failed, this pooled connection is suspect;
                // drop it so the next use reconnects from scratch.
                *slot = None;
                Err(err)
            }
        }
    }

    /// Sends one request line to the next live replica, failing over to
    /// siblings on transport errors.  Errors only when every replica is
    /// unreachable; server-side `ok=false` replies are returned as-is.
    pub fn round_trip(&self, line: &str) -> Result<WireReply> {
        let n = self.replicas.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut last_err: Option<ClientError> = None;
        let mut attempted = 0usize;
        // Two passes: live replicas first, then — if everything live
        // failed — the dead ones too, so a fully-recovered fleet is never
        // reported down just because probes have not run yet.
        for include_dead in [false, true] {
            for k in 0..n {
                let replica = &self.replicas[(start + k) % n];
                let dead = replica.dead.load(Ordering::Relaxed) != 0;
                if dead != include_dead {
                    continue;
                }
                match self.round_trip_on(replica, line) {
                    Ok(reply) => {
                        replica.dead.store(0, Ordering::Relaxed);
                        if attempted > 0 {
                            self.failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(reply);
                    }
                    Err(ClientError::Transport(err)) => {
                        replica.dead.store(1, Ordering::Relaxed);
                        attempted += 1;
                        last_err = Some(ClientError::Transport(err));
                    }
                    // A malformed reply is not worth replaying the
                    // request for — surface it.
                    Err(err) => return Err(err),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Transport(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "routed client has no replicas",
            ))
        }))
    }

    /// Submits a query line through the router (alias of
    /// [`RoutedClient::round_trip`], named for call-site clarity).
    pub fn query(&self, line: &str) -> Result<WireReply> {
        self.round_trip(line)
    }

    /// Pings every replica on a fresh connection, reviving the ones that
    /// answer and marking the ones that don't.  Returns the per-replica
    /// health, in address order.
    pub fn probe(&self) -> Vec<bool> {
        self.replicas
            .iter()
            .map(|replica| {
                let alive = Client::connect(&replica.addr, self.config)
                    .and_then(|mut client| client.ping())
                    .is_ok();
                replica
                    .dead
                    .store(if alive { 0 } else { 1 }, Ordering::Relaxed);
                alive
            })
            .collect()
    }
}

impl std::fmt::Debug for RoutedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedClient")
            .field("replicas", &self.addrs())
            .field("live", &self.live_replicas())
            .field("failovers", &self.failover_count())
            .finish()
    }
}
