//! The concrete data-model tree shared by the serializer and deserializer.

use crate::de::{DeError, Deserialize, Deserializer, Error as _};
use crate::ser::{Serialize, Serializer};

/// A serialized value: the shim's equivalent of serde's data model.
///
/// Maps are represented as ordered `(key, value)` pairs so that struct field
/// order survives a round trip (and JSON output is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    I64(i64),
    /// Unsigned integer (non-negative numbers).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::I64(_) | Value::U64(_) => "an integer",
            Value::F64(_) => "a number",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }
}

/// Serializer that materialises the value tree itself; it cannot fail.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;

    fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Deserializer that hands out an already-parsed [`Value`] tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value for deserialization.
    pub fn new(value: Value) -> Self {
        Self { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, Self::Error> {
        Ok(self.value)
    }
}

/// Converts a [`Value`] tree into any deserializable type.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Removes and returns the entry with the given key from an ordered map,
/// failing with a "missing field" error when absent.  Used by derived
/// `Deserialize` impls.
pub fn take_entry(map: &mut Vec<(String, Value)>, key: &str) -> Result<Value, DeError> {
    match take_entry_opt(map, key) {
        Some(value) => Ok(value),
        None => Err(DeError::custom(format!("missing field `{key}`"))),
    }
}

/// Removes and returns the entry with the given key from an ordered map, or
/// `None` when absent.  Used by derived `Deserialize` impls for
/// `#[serde(default)]` fields.
pub fn take_entry_opt(map: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
    map.iter()
        .position(|(k, _)| k == key)
        .map(|i| map.remove(i).1)
}
