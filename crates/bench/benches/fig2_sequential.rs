//! Fig. 2 — scaling of the sequential engine in the four workload
//! parameters: ELTs per layer (2a), trials (2b), layers (2c) and events per
//! trial (2d).  The paper reports linear scaling in all four.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_engine::sequential::SequentialEngine;

/// Reduced-size base workload so the full sweep stays benchmarkable.
fn base() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 50_000,
        trials: 400,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 5_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    }
}

fn fig2a_elts_per_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a_elts_per_layer");
    group.sample_size(10);
    for elts in [3usize, 6, 9, 12, 15] {
        let input = build_input(&base().with_elts_per_layer(elts));
        group.bench_with_input(BenchmarkId::from_parameter(elts), &input, |b, input| {
            b.iter(|| SequentialEngine::new().run(input))
        });
    }
    group.finish();
}

fn fig2b_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_trials");
    group.sample_size(10);
    for trials in [100usize, 200, 300, 400] {
        let input = build_input(&base().with_trials(trials));
        group.bench_with_input(BenchmarkId::from_parameter(trials), &input, |b, input| {
            b.iter(|| SequentialEngine::new().run(input))
        });
    }
    group.finish();
}

fn fig2c_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2c_layers");
    group.sample_size(10);
    for layers in [1usize, 2, 3, 4, 5] {
        let input = build_input(&base().with_layers(layers));
        group.bench_with_input(BenchmarkId::from_parameter(layers), &input, |b, input| {
            b.iter(|| SequentialEngine::new().run(input))
        });
    }
    group.finish();
}

fn fig2d_events_per_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2d_events_per_trial");
    group.sample_size(10);
    for events in [800u32, 900, 1000, 1100, 1200] {
        let input = build_input(
            &base()
                .with_events_per_trial(f64::from(events))
                .with_trials(200),
        );
        group.bench_with_input(BenchmarkId::from_parameter(events), &input, |b, input| {
            b.iter(|| SequentialEngine::new().run(input))
        });
    }
    group.finish();
}

criterion_group!(
    fig2,
    fig2a_elts_per_layer,
    fig2b_trials,
    fig2c_layers,
    fig2d_events_per_trial
);
criterion_main!(fig2);
