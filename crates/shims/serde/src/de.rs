//! Deserialization half of the shim.

use crate::value::{from_value, Value};

/// Error trait satisfied by every deserializer error type, mirroring
/// `serde::de::Error`.
pub trait Error: Sized + std::fmt::Display {
    /// Builds an error from a display-able message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// The concrete error type of the built-in
/// `crate::value::ValueDeserializer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

/// Producer of parsed values.
pub trait Deserializer<'de>: Sized {
    /// Error reported on malformed input.
    type Error: Error;

    /// Hands out the parsed value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be reconstructed from the shim's data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn expected<E: Error, T>(what: &str, found: &Value) -> Result<T, E> {
    Err(E::custom(format!(
        "expected {what}, found {}",
        found.kind()
    )))
}

macro_rules! deserialize_unsigned {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let out = match value {
                    Value::U64(v) => <$ty>::try_from(v).ok(),
                    Value::I64(v) => u64::try_from(v).ok().and_then(|v| <$ty>::try_from(v).ok()),
                    other => return expected("an unsigned integer", &other),
                };
                out.ok_or_else(|| D::Error::custom(concat!("integer out of range for ", stringify!($ty))))
            }
        }
    )*};
}

macro_rules! deserialize_signed {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let out = match value {
                    Value::U64(v) => i64::try_from(v).ok().and_then(|v| <$ty>::try_from(v).ok()),
                    Value::I64(v) => <$ty>::try_from(v).ok(),
                    other => return expected("an integer", &other),
                };
                out.ok_or_else(|| D::Error::custom(concat!("integer out of range for ", stringify!($ty))))
            }
        }
    )*};
}

deserialize_unsigned!(u8, u16, u32, u64, usize);
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            other => expected("a number", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(v) => Ok(v),
            other => expected("a boolean", &other),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(v) => Ok(v),
            other => expected("a string", &other),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|item| from_value(item).map_err(D::Error::custom))
                .collect(),
            other => expected("a sequence", &other),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            D::Error::custom(format!(
                "expected an array of length {N}, found length {len}"
            ))
        })
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($name:ident),+))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<Des: Deserializer<'de>>(deserializer: Des) -> Result<Self, Des::Error> {
                match deserializer.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut items = items.into_iter();
                        Ok(($(
                            from_value::<$name>(items.next().expect("length checked"))
                                .map_err(Des::Error::custom)?,
                        )+))
                    }
                    Value::Seq(items) => Err(Des::Error::custom(format!(
                        "expected a sequence of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    other => expected("a sequence", &other),
                }
            }
        }
    )*};
}

deserialize_tuple! {
    (2, A, B)
    (3, A, B, C)
    (4, A, B, C, D)
    (5, A, B, C, D, E)
}
