//! Dictionary encoding for dimension columns.

use std::collections::HashMap;
use std::hash::Hash;

/// An order-of-first-appearance dictionary assigning dense `u32` codes to
/// dimension values.
///
/// Dimension columns in the [`ResultStore`](crate::store::ResultStore) hold
/// codes rather than values, so filter predicates compare a single `u32`
/// per segment and group keys are tuples of codes — the classic columnar
/// dictionary encoding, sized here for low-cardinality risk dimensions
/// (perils, regions, lines of business, layers).
#[derive(Debug, Clone)]
pub struct Dictionary<T> {
    values: Vec<T>,
    codes: HashMap<T, u32>,
}

impl<T> Default for Dictionary<T> {
    fn default() -> Self {
        Self {
            values: Vec::new(),
            codes: HashMap::new(),
        }
    }
}

impl<T: Clone + Eq + Hash> Dictionary<T> {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            codes: HashMap::new(),
        }
    }

    /// Returns the code of `value`, interning it if new.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&code) = self.codes.get(&value) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.values.push(value.clone());
        self.codes.insert(value, code);
        code
    }

    /// The code of `value`, if it has been interned.
    pub fn code_of(&self, value: &T) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// The value behind `code`.
    ///
    /// # Panics
    /// If the code was not produced by this dictionary.
    pub fn value(&self, code: u32) -> &T {
        &self.values[code as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in code order.
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut dict = Dictionary::new();
        let a = dict.intern("hurricane");
        let b = dict.intern("flood");
        assert_eq!(dict.intern("hurricane"), a);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
        assert_eq!(*dict.value(a), "hurricane");
        assert_eq!(dict.code_of(&"flood"), Some(b));
        assert_eq!(dict.code_of(&"quake"), None);
        assert!(!dict.is_empty());
        assert_eq!(dict.values(), &["hurricane", "flood"]);
    }
}
