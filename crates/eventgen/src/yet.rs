//! The Year Event Table (YET).
//!
//! `YET = { T_i = {(E_i1, t_i1), ..., (E_ik, t_ik)} }` — each trial is an
//! ordered sequence of event occurrences for one contractual year (paper
//! §II.A).  The paper's implementations store the YET as one flat vector of
//! event ids plus a vector of trial boundaries (§III.B.1); this module uses
//! the same CSR layout so the engines can iterate trials with zero
//! indirection and the whole table can be handed to the simulated GPU's
//! global memory as two contiguous allocations.

use serde::{Deserialize, Serialize};

use crate::EventId;

/// One event occurrence within a trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventOccurrence {
    /// Identifier of the catalog event that occurred.
    pub event: EventId,
    /// Time-stamp of the occurrence in fractional days since the start of
    /// the contractual year.
    pub time: f32,
}

/// A borrowed view of one trial: its occurrences ordered by time-stamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial<'a> {
    /// Index of the trial within the YET.
    pub index: usize,
    /// The trial's occurrences, ordered by ascending time-stamp.
    pub occurrences: &'a [EventOccurrence],
}

impl Trial<'_> {
    /// Number of event occurrences in the trial.
    pub fn len(&self) -> usize {
        self.occurrences.len()
    }

    /// True when the trial has no occurrences.
    pub fn is_empty(&self) -> bool {
        self.occurrences.is_empty()
    }
}

/// A complete Year Event Table in CSR layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YearEventTable {
    /// Flat list of occurrences, trial after trial.
    occurrences: Vec<EventOccurrence>,
    /// Trial boundaries: trial `i` occupies `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
    /// Size of the catalog the event ids refer to.
    catalog_size: u32,
}

impl YearEventTable {
    /// Number of trials.
    pub fn num_trials(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of event occurrences across all trials.
    pub fn total_events(&self) -> usize {
        self.occurrences.len()
    }

    /// Mean number of events per trial.
    pub fn avg_events_per_trial(&self) -> f64 {
        if self.num_trials() == 0 {
            0.0
        } else {
            self.total_events() as f64 / self.num_trials() as f64
        }
    }

    /// Size of the catalog the event ids refer to.
    pub fn catalog_size(&self) -> u32 {
        self.catalog_size
    }

    /// Borrowed view of trial `i`.
    ///
    /// Panics when `i >= num_trials()`.
    pub fn trial(&self, i: usize) -> Trial<'_> {
        let start = self.offsets[i];
        let end = self.offsets[i + 1];
        Trial {
            index: i,
            occurrences: &self.occurrences[start..end],
        }
    }

    /// Iterator over all trials in order.
    pub fn trials(&self) -> impl Iterator<Item = Trial<'_>> + '_ {
        (0..self.num_trials()).map(move |i| self.trial(i))
    }

    /// The flat occurrence array (the paper's "vector consisting of all
    /// E_i,k"), exposed for the GPU-style engines.
    pub fn occurrences_flat(&self) -> &[EventOccurrence] {
        &self.occurrences
    }

    /// The trial-boundary array (the paper's "vector ... indicating trial
    /// boundaries").
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Approximate memory footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.occurrences.len() * std::mem::size_of::<EventOccurrence>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Returns a new table containing only trials `range` (used to shard
    /// work across devices or to subsample for quick quotes).
    pub fn slice_trials(&self, range: std::ops::Range<usize>) -> YearEventTable {
        assert!(range.end <= self.num_trials(), "trial range out of bounds");
        let start_off = self.offsets[range.start];
        let end_off = self.offsets[range.end];
        let occurrences = self.occurrences[start_off..end_off].to_vec();
        let offsets = self.offsets[range.start..=range.end]
            .iter()
            .map(|o| o - start_off)
            .collect();
        YearEventTable {
            occurrences,
            offsets,
            catalog_size: self.catalog_size,
        }
    }

    /// Checks the structural invariants (ordered offsets, time-stamps sorted
    /// within each trial, event ids inside the catalog).  Used by tests and
    /// by [`crate::io`] after deserialization.
    pub fn validate(&self) -> crate::Result<()> {
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            return Err(crate::GenError::Corrupt("offsets must start at 0".into()));
        }
        if *self.offsets.last().expect("non-empty") != self.occurrences.len() {
            return Err(crate::GenError::Corrupt(
                "last offset must equal occurrence count".into(),
            ));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(crate::GenError::Corrupt(
                "offsets must be non-decreasing".into(),
            ));
        }
        for (i, w) in self.offsets.windows(2).enumerate() {
            let trial = &self.occurrences[w[0]..w[1]];
            if trial.windows(2).any(|p| p[0].time > p[1].time) {
                return Err(crate::GenError::Corrupt(format!(
                    "trial {i} occurrences not sorted by time"
                )));
            }
            if trial.iter().any(|o| o.event >= self.catalog_size) {
                return Err(crate::GenError::Corrupt(format!(
                    "trial {i} references an event outside the catalog"
                )));
            }
        }
        Ok(())
    }
}

/// Incremental builder for a [`YearEventTable`].
#[derive(Debug, Clone)]
pub struct YetBuilder {
    occurrences: Vec<EventOccurrence>,
    offsets: Vec<usize>,
    catalog_size: u32,
}

impl YetBuilder {
    /// Starts a builder for a catalog of the given size, reserving space for
    /// an expected number of trials and events per trial.
    pub fn new(
        catalog_size: u32,
        expected_trials: usize,
        expected_events_per_trial: usize,
    ) -> Self {
        let mut offsets = Vec::with_capacity(expected_trials + 1);
        offsets.push(0);
        Self {
            occurrences: Vec::with_capacity(expected_trials * expected_events_per_trial),
            offsets,
            catalog_size,
        }
    }

    /// Appends one trial.  The occurrences are sorted by time-stamp here so
    /// callers may pass them in any order.
    pub fn push_trial(&mut self, mut occurrences: Vec<EventOccurrence>) {
        occurrences.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite timestamps"));
        self.occurrences.extend_from_slice(&occurrences);
        self.offsets.push(self.occurrences.len());
    }

    /// Appends an already-sorted trial without re-sorting (used by the
    /// parallel generator which sorts per-trial in the worker).
    pub fn push_sorted_trial(&mut self, occurrences: &[EventOccurrence]) {
        debug_assert!(occurrences.windows(2).all(|w| w[0].time <= w[1].time));
        self.occurrences.extend_from_slice(occurrences);
        self.offsets.push(self.occurrences.len());
    }

    /// Number of trials appended so far.
    pub fn num_trials(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Finalises the table.
    pub fn build(self) -> YearEventTable {
        YearEventTable {
            occurrences: self.occurrences,
            offsets: self.offsets,
            catalog_size: self.catalog_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(event: EventId, time: f32) -> EventOccurrence {
        EventOccurrence { event, time }
    }

    fn sample_yet() -> YearEventTable {
        let mut b = YetBuilder::new(100, 3, 2);
        b.push_trial(vec![occ(5, 200.0), occ(3, 10.0)]);
        b.push_trial(vec![]);
        b.push_trial(vec![occ(99, 1.0), occ(0, 364.9), occ(42, 100.0)]);
        b.build()
    }

    #[test]
    fn builder_produces_sorted_csr() {
        let yet = sample_yet();
        assert_eq!(yet.num_trials(), 3);
        assert_eq!(yet.total_events(), 5);
        assert!((yet.avg_events_per_trial() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(yet.catalog_size(), 100);
        yet.validate().unwrap();

        let t0 = yet.trial(0);
        assert_eq!(t0.len(), 2);
        assert_eq!(t0.occurrences[0].event, 3, "sorted by time");
        assert_eq!(t0.occurrences[1].event, 5);

        let t1 = yet.trial(1);
        assert!(t1.is_empty());

        let t2 = yet.trial(2);
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.occurrences[0].event, 99);
        assert_eq!(t2.occurrences[2].event, 0);

        assert_eq!(yet.trials().count(), 3);
        assert_eq!(yet.offsets(), &[0, 2, 2, 5]);
        assert_eq!(yet.occurrences_flat().len(), 5);
        assert!(yet.memory_bytes() > 0);
    }

    #[test]
    fn slice_trials_preserves_content() {
        let yet = sample_yet();
        let sliced = yet.slice_trials(1..3);
        sliced.validate().unwrap();
        assert_eq!(sliced.num_trials(), 2);
        assert_eq!(sliced.total_events(), 3);
        assert_eq!(sliced.trial(1).occurrences, yet.trial(2).occurrences);
        // Empty slice.
        let empty = yet.slice_trials(0..0);
        assert_eq!(empty.num_trials(), 0);
        assert_eq!(empty.avg_events_per_trial(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        sample_yet().slice_trials(0..4);
    }

    #[test]
    fn push_sorted_trial_skips_sorting() {
        let mut b = YetBuilder::new(10, 1, 2);
        b.push_sorted_trial(&[occ(1, 1.0), occ(2, 2.0)]);
        assert_eq!(b.num_trials(), 1);
        let yet = b.build();
        yet.validate().unwrap();
        assert_eq!(yet.trial(0).len(), 2);
    }

    #[test]
    fn validate_catches_corruption() {
        // Event id outside the catalog.
        let mut b = YetBuilder::new(5, 1, 1);
        b.push_trial(vec![occ(7, 1.0)]);
        assert!(b.build().validate().is_err());

        // Unsorted timestamps snuck in through push_sorted_trial in a
        // release build (debug_assert elided): validate still catches it.
        // In debug builds push_sorted_trial itself asserts, so only exercise
        // this path when debug assertions are disabled.
        if !cfg!(debug_assertions) {
            let mut b = YetBuilder::new(10, 1, 2);
            b.push_sorted_trial(&[occ(1, 5.0), occ(2, 2.0)]);
            assert!(b.build().validate().is_err());
        }
    }

    #[test]
    fn serde_round_trip() {
        let yet = sample_yet();
        let json = serde_json::to_string(&yet).unwrap();
        let back: YearEventTable = serde_json::from_str(&json).unwrap();
        assert_eq!(yet, back);
    }
}
