//! Property-based tests of the core invariants, run with proptest.
//!
//! These cover the arithmetic heart of the engine (term application and the
//! cumulative-difference formulation), the interchangeable lookup
//! structures, the statistics the metrics are built on, and the engine
//! itself on randomly shaped inputs.

use proptest::prelude::*;

use catrisk::engine::input::AnalysisInputBuilder;
use catrisk::engine::parallel::ParallelEngine;
use catrisk::engine::sequential::SequentialEngine;
use catrisk::engine::ylt::{TrialOutcome, YearLossTable};
use catrisk::eventgen::peril::{Peril, Region};
use catrisk::finterms::apply::{layer_terms_pipeline, layer_terms_reference, retention_and_limit};
use catrisk::finterms::layer::LayerId;
use catrisk::finterms::terms::{FinancialTerms, LayerTerms};
use catrisk::lookup::{build_lookup, LookupKind};
use catrisk::metrics::ep::ExceedanceCurve;
use catrisk::metrics::var::{tvar, var};
use catrisk::riskquery::prelude::*;
use catrisk::simkit::rng::RngFactory;
use catrisk::simkit::stats::{quantile_sorted, RunningStats};

// ---------------------------------------------------------------------------
// Term application
// ---------------------------------------------------------------------------

proptest! {
    /// The excess-of-loss transform is bounded, monotone and zero below the
    /// retention.
    #[test]
    fn retention_and_limit_properties(
        x in 0.0..1.0e9f64,
        y in 0.0..1.0e9f64,
        retention in 0.0..1.0e8f64,
        limit in 0.0..1.0e8f64,
    ) {
        let fx = retention_and_limit(x, retention, limit);
        prop_assert!(fx >= 0.0);
        prop_assert!(fx <= limit);
        prop_assert!(fx <= x);
        if x <= retention {
            prop_assert_eq!(fx, 0.0);
        }
        // Monotonicity.
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(retention_and_limit(lo, retention, limit) <= retention_and_limit(hi, retention, limit));
    }

    /// The cumulative-difference formulation of the layer terms (paper lines
    /// 10–19) agrees with direct "remaining retention / remaining limit"
    /// accounting for arbitrary loss sequences and terms.
    #[test]
    fn layer_pipeline_matches_reference(
        losses in proptest::collection::vec(0.0..1.0e7f64, 0..40),
        occ_retention in 0.0..1.0e6f64,
        occ_limit in 1.0..1.0e7f64,
        agg_retention in 0.0..2.0e6f64,
        agg_limit in 1.0..2.0e7f64,
    ) {
        let mut scratch = losses.clone();
        let pipeline = layer_terms_pipeline(&mut scratch, occ_retention, occ_limit, agg_retention, agg_limit);
        let reference = layer_terms_reference(&losses, occ_retention, occ_limit, agg_retention, agg_limit);
        prop_assert!((pipeline - reference).abs() < 1e-6 * (1.0 + reference.abs()),
            "pipeline {} vs reference {}", pipeline, reference);
        // The year loss respects the aggregate limit (up to floating-point
        // rounding of the cumulative sums) and non-negativity.
        prop_assert!(pipeline >= 0.0);
        prop_assert!(pipeline <= agg_limit * (1.0 + 1e-12) + 1e-9);
    }

    /// Financial terms: output bounded by share × limit × fx and by the
    /// gross loss scaled by share × fx.
    #[test]
    fn financial_terms_bounds(
        loss in 0.0..1.0e9f64,
        deductible in 0.0..1.0e6f64,
        limit in 1.0..1.0e8f64,
        share in 0.0..1.0f64,
        fx in 0.1..10.0f64,
    ) {
        let terms = FinancialTerms::new(deductible, limit, share, fx).unwrap();
        let net = terms.apply(loss);
        prop_assert!(net >= 0.0);
        prop_assert!(net <= limit * share * fx + 1e-9);
        prop_assert!(net <= loss * share * fx + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Lookup structures
// ---------------------------------------------------------------------------

proptest! {
    /// Every lookup structure answers exactly like a BTreeMap reference for
    /// both present and absent keys.
    #[test]
    fn lookup_structures_match_reference(
        pairs in proptest::collection::vec((0u32..5_000, 0.01..1.0e6f64), 0..300),
        probes in proptest::collection::vec(0u32..6_000, 0..100),
    ) {
        let mut reference = std::collections::BTreeMap::new();
        for (event, loss) in &pairs {
            reference.insert(*event, *loss);
        }
        // Deduplicate keeping the last value, as the builders do.
        let deduped: Vec<(u32, f64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        for kind in LookupKind::ALL {
            let table = build_lookup(kind, &deduped, 5_000);
            prop_assert_eq!(table.len(), deduped.len());
            for probe in &probes {
                let expected = reference.get(probe).copied().unwrap_or(0.0);
                prop_assert_eq!(table.get(*probe), expected, "{} event {}", kind, probe);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Statistics and risk metrics
// ---------------------------------------------------------------------------

proptest! {
    /// Quantiles are monotone in the probability and bounded by min/max;
    /// TVaR dominates VaR; exceedance curves are consistent with quantiles.
    #[test]
    fn risk_metric_invariants(
        mut losses in proptest::collection::vec(0.0..1.0e6f64, 2..400),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = var(&losses, lo);
        let v_hi = var(&losses, hi);
        prop_assert!(v_lo <= v_hi + 1e-9);
        // TVaR dominates VaR up to floating-point rounding of the tail mean.
        prop_assert!(tvar(&losses, lo) >= v_lo - 1e-9 * (1.0 + v_lo.abs()));
        prop_assert!(tvar(&losses, hi) >= v_hi - 1e-9 * (1.0 + v_hi.abs()));

        losses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = losses[0];
        let max = *losses.last().unwrap();
        prop_assert!(quantile_sorted(&losses, lo) >= min - 1e-9);
        prop_assert!(quantile_sorted(&losses, hi) <= max + 1e-9);

        let curve = ExceedanceCurve::new(losses.clone());
        // Exceedance probability is a non-increasing function of the threshold.
        let p_small = curve.exceedance_probability(min);
        let p_large = curve.exceedance_probability(max);
        prop_assert!(p_small >= p_large);
        prop_assert_eq!(curve.exceedance_probability(max), 0.0);
    }

    /// Welford merging equals single-pass accumulation.
    #[test]
    fn running_stats_merge_property(
        a in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200),
        b in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200),
    ) {
        let mut whole = RunningStats::new();
        whole.extend(&a);
        whole.extend(&b);
        let mut left = RunningStats::new();
        left.extend(&a);
        let mut right = RunningStats::new();
        right.extend(&b);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
    }
}

// ---------------------------------------------------------------------------
// The engine itself on randomly shaped inputs
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
fn arbitrary_input(
) -> impl Strategy<Value = (Vec<Vec<(u32, f32)>>, Vec<Vec<(u32, f64)>>, LayerTerms)> {
    let trials = proptest::collection::vec(
        proptest::collection::vec((0u32..800, 0.0f32..365.0), 0..30),
        1..40,
    );
    let elts = proptest::collection::vec(
        proptest::collection::vec((0u32..800, 1.0..1.0e6f64), 1..120),
        1..5,
    );
    let terms = (0.0..1.0e5f64, 1.0..1.0e6f64, 0.0..2.0e5f64, 1.0..2.0e6f64)
        .prop_map(|(or_, ol, ar, al)| LayerTerms::new(or_, ol, ar, al).unwrap());
    (trials, elts, terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any randomly shaped input: the parallel engine matches the
    /// sequential engine exactly, year losses are non-negative and respect
    /// the aggregate limit, and removing the terms (unlimited layer) never
    /// decreases the loss.
    #[test]
    fn engine_invariants_on_random_inputs((trials, elts, terms) in arbitrary_input()) {
        let build = |layer_terms: LayerTerms| {
            let mut builder = AnalysisInputBuilder::new();
            builder.set_yet_from_trials(800, trials.clone());
            let indices: Vec<usize> = elts
                .iter()
                .map(|pairs| builder.add_elt(pairs, FinancialTerms::pass_through()))
                .collect();
            builder.add_layer_over(&indices, layer_terms);
            builder.build().unwrap()
        };

        let input = build(terms);
        let sequential = SequentialEngine::new().run(&input);
        let parallel = ParallelEngine::with_threads(3).run(&input);
        prop_assert_eq!(sequential.max_abs_difference(&parallel), 0.0);

        let unlimited = SequentialEngine::new().run(&build(LayerTerms::unlimited()));
        for (capped, gross) in sequential.layer(0).outcomes().iter().zip(unlimited.layer(0).outcomes()) {
            prop_assert!(capped.year_loss >= 0.0);
            prop_assert!(capped.year_loss <= terms.agg_limit * (1.0 + 1e-12) + 1e-9);
            prop_assert!(capped.year_loss <= gross.year_loss * (1.0 + 1e-12) + 1e-9,
                "applying terms can only reduce the loss");
            prop_assert!(capped.max_occurrence_loss <= terms.occ_limit * (1.0 + 1e-12) + 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// The query engine against brute-force aggregation over the raw YLTs
// ---------------------------------------------------------------------------

/// Builds a randomly shaped portfolio of tagged Year Loss Tables.
fn random_portfolio(
    num_segments: usize,
    num_trials: usize,
    seed: u64,
) -> (ResultStore, Vec<(SegmentMeta, YearLossTable)>) {
    let factory = RngFactory::new(seed).derive("riskquery-prop");
    let mut store = ResultStore::new(num_trials);
    let mut raw = Vec::with_capacity(num_segments);
    for s in 0..num_segments {
        let mut rng = factory.stream(s as u64);
        let outcomes: Vec<TrialOutcome> = (0..num_trials)
            .map(|_| {
                let year = if rng.uniform() < 0.35 {
                    rng.uniform() * 1.0e6
                } else {
                    0.0
                };
                TrialOutcome {
                    year_loss: year,
                    max_occurrence_loss: year * rng.uniform(),
                    nonzero_events: u32::from(year > 0.0),
                }
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId(rng.below(3) as u32),
            Peril::ALL[rng.below(Peril::ALL.len() as u64) as usize],
            Region::ALL[rng.below(Region::ALL.len() as u64) as usize],
            LineOfBusiness::ALL[rng.below(LineOfBusiness::ALL.len() as u64) as usize],
        );
        let ylt = YearLossTable::new(meta.layer, outcomes);
        store.ingest(&ylt, meta).expect("ingest");
        raw.push((meta, ylt));
    }
    (store, raw)
}

/// Brute-force answer: filter the tagged YLTs directly, sum/max their
/// outcomes per trial in ingest order, and apply the metric kernels to the
/// assembled loss vectors.
fn brute_force(
    raw: &[(SegmentMeta, YearLossTable)],
    query: &Query,
) -> Vec<(Vec<DimValue>, usize, Vec<AggValue>)> {
    let (t0, t1) = query.filter.trials.unwrap_or((0, raw[0].1.num_trials()));
    let selected: Vec<&(SegmentMeta, YearLossTable)> = raw
        .iter()
        .filter(|(meta, _)| {
            query
                .filter
                .perils
                .as_ref()
                .is_none_or(|ps| ps.contains(&meta.peril))
                && query
                    .filter
                    .regions
                    .as_ref()
                    .is_none_or(|rs| rs.contains(&meta.region))
                && query
                    .filter
                    .lobs
                    .as_ref()
                    .is_none_or(|ls| ls.contains(&meta.lob))
                && query
                    .filter
                    .layers
                    .as_ref()
                    .is_none_or(|ids| ids.contains(&meta.layer.0))
        })
        .collect();

    let key_of = |meta: &SegmentMeta| -> Vec<DimValue> {
        query
            .group_by
            .iter()
            .map(|dim| match dim {
                Dimension::Layer => DimValue::Layer(meta.layer),
                Dimension::Peril => DimValue::Peril(meta.peril),
                Dimension::Region => DimValue::Region(meta.region),
                Dimension::Lob => DimValue::Lob(meta.lob),
            })
            .collect()
    };

    // Group members in ingest order, keys in first-appearance order.
    let mut keys: Vec<Vec<DimValue>> = Vec::new();
    let mut members: Vec<Vec<&YearLossTable>> = Vec::new();
    for (meta, ylt) in &selected {
        let key = key_of(meta);
        match keys.iter().position(|k| *k == key) {
            Some(i) => members[i].push(ylt),
            None => {
                keys.push(key);
                members.push(vec![ylt]);
            }
        }
    }

    let mut rows: Vec<(Vec<DimValue>, usize, Vec<AggValue>)> = keys
        .into_iter()
        .zip(members)
        .map(|(key, ylts)| {
            let span = t1 - t0;
            let mut year = vec![0.0f64; span];
            let mut occ = vec![0.0f64; span];
            for ylt in &ylts {
                for (t, outcome) in ylt.outcomes()[t0..t1].iter().enumerate() {
                    year[t] += outcome.year_loss;
                    occ[t] = occ[t].max(outcome.max_occurrence_loss);
                }
            }
            let n = span as f64;
            let values: Vec<AggValue> = query
                .aggregates
                .iter()
                .map(|aggregate| match aggregate {
                    Aggregate::Mean => AggValue::Scalar(year.iter().sum::<f64>() / n),
                    Aggregate::StdDev => {
                        let mean = year.iter().sum::<f64>() / n;
                        let variance = year.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                        AggValue::Scalar(variance.sqrt())
                    }
                    Aggregate::MaxLoss => {
                        AggValue::Scalar(year.iter().copied().fold(0.0, f64::max))
                    }
                    Aggregate::AttachProb => {
                        AggValue::Scalar(year.iter().filter(|&&x| x > 0.0).count() as f64 / n)
                    }
                    Aggregate::Var { level } => AggValue::Scalar(var(&year, *level)),
                    Aggregate::Tvar { level } => AggValue::Scalar(tvar(&year, *level)),
                    Aggregate::Pml {
                        return_period,
                        basis,
                    } => {
                        let losses = match basis {
                            Basis::Aep => year.clone(),
                            Basis::Oep => occ.clone(),
                        };
                        AggValue::Scalar(
                            ExceedanceCurve::new(losses).loss_at_return_period(*return_period),
                        )
                    }
                    Aggregate::EpCurve { basis, points } => {
                        let losses = match basis {
                            Basis::Aep => year.clone(),
                            Basis::Oep => occ.clone(),
                        };
                        AggValue::Curve(ExceedanceCurve::new(losses).curve_points(*points))
                    }
                })
                .collect();
            (key, ylts.len(), values)
        })
        .collect();
    rows.sort_by(|a, b| DimValue::compare_keys(&a.0, &b.0));
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For randomly generated portfolios and randomly shaped queries, the
    /// columnar store + pushdown + parallel scan pipeline answers exactly
    /// (bit-identically) what brute-force aggregation over the raw Year
    /// Loss Tables answers, and the batched session matches the single
    /// query path.
    #[test]
    fn query_engine_matches_brute_force(
        num_segments in 1usize..14,
        num_trials in 2usize..60,
        seed in 0u64..1_000_000,
        peril_mask in 0u64..64,
        region_mask in 0u64..64,
        group_selector in 0usize..6,
        window_selector in 0usize..3,
        level in 0.5..0.999f64,
        return_period in 1.0..500.0f64,
    ) {
        let (store, raw) = random_portfolio(num_segments, num_trials, seed);

        let mut builder = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::StdDev)
            .aggregate(Aggregate::MaxLoss)
            .aggregate(Aggregate::AttachProb)
            .aggregate(Aggregate::Var { level })
            .aggregate(Aggregate::Tvar { level })
            .aggregate(Aggregate::Pml { return_period, basis: Basis::Aep })
            .aggregate(Aggregate::Pml { return_period, basis: Basis::Oep })
            .aggregate(Aggregate::EpCurve { basis: Basis::Aep, points: 5 })
            .aggregate(Aggregate::EpCurve { basis: Basis::Oep, points: 4 });
        let perils: Vec<Peril> = Peril::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| peril_mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();
        if !perils.is_empty() {
            builder = builder.with_perils(perils);
        }
        let regions: Vec<Region> = Region::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| region_mask & (1 << i) != 0)
            .map(|(_, r)| *r)
            .collect();
        if !regions.is_empty() {
            builder = builder.in_regions(regions);
        }
        builder = match group_selector {
            0 => builder,
            1 => builder.group_by(Dimension::Peril),
            2 => builder.group_by(Dimension::Region),
            3 => builder.group_by(Dimension::Lob),
            4 => builder.group_by(Dimension::Layer),
            _ => builder.group_by(Dimension::Peril).group_by(Dimension::Region),
        };
        builder = match window_selector {
            0 => builder,
            1 => builder.trials(0..(num_trials / 2).max(1)),
            _ => builder.trials(num_trials / 3..num_trials),
        };
        let query = builder.build().expect("valid query");

        let result = execute(&store, &query).expect("query executes");
        let expected = brute_force(&raw, &query);

        prop_assert_eq!(result.rows.len(), expected.len(), "group count");
        for (row, (key, segments, values)) in result.rows.iter().zip(&expected) {
            prop_assert_eq!(&row.key, key, "group keys in canonical order");
            prop_assert_eq!(row.segments, *segments, "segment counts");
            prop_assert_eq!(&row.values, values, "aggregates must match bit-for-bit");
        }

        // The batched session must answer exactly like the single-query path.
        let batched = QuerySession::new(&store)
            .run(std::slice::from_ref(&query))
            .expect("session runs");
        prop_assert_eq!(&batched[0], &result);
    }
}
