//! Open-loop load generation against a running TCP front-end.
//!
//! Each client thread owns one connection and fires its share of the
//! request schedule.  In open-loop mode (`rps > 0`) send times are fixed
//! up front — request `k` of a client is due at `start + k / client_rate`
//! — and a request's latency is measured from its *scheduled* time, so a
//! slow server accrues queueing delay instead of silently slowing the
//! generator down (no coordinated omission).  With `rps = 0` every client
//! runs closed-loop, firing as fast as replies return.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::WireReply;
use crate::stats::percentile;

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:7433`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Open-loop target rate in requests/second across all clients;
    /// `0.0` = closed loop (each client fires as fast as replies return).
    pub rps: f64,
    /// The query-line mix, cycled through per client.
    pub queries: Vec<String>,
    /// Seconds to keep retrying the initial connect (lets a just-spawned
    /// server finish opening its store).
    pub connect_timeout_secs: u64,
    /// Send a `shutdown` line after the run, stopping the server.
    pub shutdown: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7433".to_string(),
            clients: 32,
            requests: 3200,
            rps: 0.0,
            queries: default_mix(),
            connect_timeout_secs: 30,
            shutdown: false,
        }
    }
}

/// The default mixed-query workload: distinct scan specs and metric sets,
/// so batches exercise dedup, fusion and shared order statistics.
pub fn default_mix() -> Vec<String> {
    [
        "select mean, tvar(0.99) where peril=HU|FL group by region",
        "select var(0.99), aep(10) where peril=HU|FL group by region",
        "select mean, stddev group by lob",
        "select opml(250) group by lob",
        "select mean where loss>=1e5 group by region",
        "select maxloss, attach group by peril",
        "select tvar(0.95)",
    ]
    .map(str::to_string)
    .to_vec()
}

/// What one load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful `result` replies.
    pub ok: u64,
    /// Typed `overloaded` rejections (well-formed backpressure, counted
    /// separately from errors).
    pub overloaded: u64,
    /// Any other error reply or transport failure.
    pub errors: u64,
    /// Total result rows across successful replies.
    pub rows: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Successful replies per second.
    pub throughput: f64,
    /// Latency percentiles over successful replies, in microseconds.
    pub p50_micros: u64,
    /// 90th percentile latency.
    pub p90_micros: u64,
    /// 99th percentile latency.
    pub p99_micros: u64,
    /// Worst latency.
    pub max_micros: u64,
    /// Mean batch size reported by the server across replies.
    pub mean_batch: f64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} requests in {:.2}s: {} ok, {} overloaded, {} errors ({} rows)",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.ok,
            self.overloaded,
            self.errors,
            self.rows
        )?;
        writeln!(f, "throughput: {:.0} req/s", self.throughput)?;
        writeln!(
            f,
            "latency: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            self.p50_micros as f64 / 1_000.0,
            self.p90_micros as f64 / 1_000.0,
            self.p99_micros as f64 / 1_000.0,
            self.max_micros as f64 / 1_000.0
        )?;
        write!(f, "mean batch size: {:.1}", self.mean_batch)
    }
}

/// Per-client tallies, merged into the report at the end.
#[derive(Debug, Default)]
struct ClientOutcome {
    sent: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    rows: u64,
    batch_sum: u64,
    latencies_micros: Vec<u64>,
}

/// Connects with retry: the server may still be opening its store.
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(err) => return Err(format!("connect to {addr}: {err}")),
        }
    }
}

/// Runs the load and gathers a report.  Transport-level failures are
/// counted per request, not fatal; only a total connection failure of
/// every client errors out.
pub fn run(options: &LoadgenOptions) -> Result<LoadReport, String> {
    let clients = options.clients.max(1);
    let queries = if options.queries.is_empty() {
        default_mix()
    } else {
        options.queries.clone()
    };
    let connect_timeout = Duration::from_secs(options.connect_timeout_secs);
    let started = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                // Split `requests` across clients, remainder to the first.
                let share = options.requests / clients
                    + usize::from(client_index < options.requests % clients);
                let queries = &queries;
                let options = &options;
                scope.spawn(move || {
                    run_client(options, client_index, share, queries, connect_timeout)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut merged = ClientOutcome::default();
    let mut connect_failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(outcome) => {
                merged.sent += outcome.sent;
                merged.ok += outcome.ok;
                merged.overloaded += outcome.overloaded;
                merged.errors += outcome.errors;
                merged.rows += outcome.rows;
                merged.batch_sum += outcome.batch_sum;
                merged.latencies_micros.extend(outcome.latencies_micros);
            }
            Err(err) => connect_failures.push(err),
        }
    }
    if merged.sent == 0 {
        return Err(connect_failures
            .first()
            .cloned()
            .unwrap_or_else(|| "no requests sent".to_string()));
    }

    if options.shutdown {
        send_shutdown(&options.addr, connect_timeout)?;
    }

    merged.latencies_micros.sort_unstable();
    let lat = &merged.latencies_micros;
    Ok(LoadReport {
        sent: merged.sent,
        ok: merged.ok,
        overloaded: merged.overloaded,
        errors: merged.errors + connect_failures.len() as u64,
        rows: merged.rows,
        elapsed,
        throughput: merged.ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_micros: percentile(lat, 50.0),
        p90_micros: percentile(lat, 90.0),
        p99_micros: percentile(lat, 99.0),
        max_micros: lat.last().copied().unwrap_or(0),
        mean_batch: if merged.ok == 0 {
            0.0
        } else {
            merged.batch_sum as f64 / merged.ok as f64
        },
    })
}

fn run_client(
    options: &LoadgenOptions,
    client_index: usize,
    share: usize,
    queries: &[String],
    connect_timeout: Duration,
) -> Result<ClientOutcome, String> {
    let mut outcome = ClientOutcome::default();
    if share == 0 {
        return Ok(outcome);
    }
    let stream = connect(&options.addr, connect_timeout)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut writer = std::io::BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut lines = BufReader::new(stream).lines();

    // Open-loop pacing: this client's inter-arrival gap.
    let clients = options.clients.max(1);
    let gap = if options.rps > 0.0 {
        Duration::from_secs_f64(clients as f64 / options.rps)
    } else {
        Duration::ZERO
    };
    let start = Instant::now();
    outcome.latencies_micros.reserve(share);
    for k in 0..share {
        let scheduled = start + gap.mul_f64(k as f64);
        if gap > Duration::ZERO {
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
        }
        let query = &queries[(client_index + k) % queries.len()];
        outcome.sent += 1;
        let sent_at = Instant::now();
        if writeln!(writer, "{query}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            outcome.errors += 1;
            continue;
        }
        let Some(Ok(line)) = lines.next() else {
            outcome.errors += 1;
            break; // connection gone; stop this client
        };
        // Open loop measures from the *scheduled* send (so falling behind
        // schedule shows up as latency), closed loop from the actual one.
        let reference = if gap > Duration::ZERO {
            scheduled
        } else {
            sent_at
        };
        let latency = Instant::now().saturating_duration_since(reference);
        match WireReply::from_line(&line) {
            Ok(reply) if reply.ok => {
                outcome.ok += 1;
                outcome.rows += reply.result.map_or(0, |r| r.rows.len() as u64);
                outcome.batch_sum += u64::from(reply.timings.batch_size);
                outcome.latencies_micros.push(latency.as_micros() as u64);
            }
            Ok(reply) => {
                if reply.error.is_some_and(|e| e.kind == "overloaded") {
                    outcome.overloaded += 1;
                } else {
                    outcome.errors += 1;
                }
            }
            Err(_) => outcome.errors += 1,
        }
    }
    Ok(outcome)
}

/// Sends a `shutdown` line on a fresh connection and waits for the ack.
fn send_shutdown(addr: &str, timeout: Duration) -> Result<(), String> {
    let stream = connect(addr, timeout)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut writer = std::io::BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    writeln!(writer, "shutdown")
        .and_then(|_| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut lines = BufReader::new(stream).lines();
    match lines.next() {
        Some(Ok(line)) => {
            let reply = WireReply::from_line(&line)?;
            if reply.kind == "shutting-down" {
                Ok(())
            } else {
                Err(format!("unexpected shutdown ack: {line}"))
            }
        }
        _ => Err("no shutdown acknowledgement".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::tcp::TcpFrontEnd;
    use crate::test_store::random_store;
    use std::sync::Arc;

    #[test]
    fn loadgen_drives_a_server_and_shuts_it_down() {
        let store = Arc::new(random_store(256, 16, 21));
        let front = TcpFrontEnd::bind(
            Server::new(
                Arc::clone(&store),
                ServerConfig {
                    batch_window: Duration::from_micros(200),
                    ..ServerConfig::default()
                },
            ),
            "127.0.0.1:0",
        )
        .expect("bind");
        let options = LoadgenOptions {
            addr: front.local_addr().to_string(),
            clients: 8,
            requests: 64,
            shutdown: true,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.sent, 64);
        assert_eq!(report.ok, 64, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        assert!(report.rows > 0);
        assert!(report.mean_batch >= 1.0);
        assert!(report.p50_micros <= report.p99_micros);
        assert!(report.p99_micros <= report.max_micros);
        front.wait().expect("server exited cleanly");
    }

    #[test]
    fn open_loop_pacing_measures_from_schedule() {
        let store = Arc::new(random_store(64, 4, 5));
        let front = TcpFrontEnd::bind(Server::with_defaults(store), "127.0.0.1:0").expect("bind");
        let options = LoadgenOptions {
            addr: front.local_addr().to_string(),
            clients: 2,
            requests: 10,
            rps: 200.0,
            shutdown: false,
            ..LoadgenOptions::default()
        };
        let report = run(&options).expect("load run");
        assert_eq!(report.ok, 10);
        // 10 requests at 200 rps across 2 clients: the schedule spans
        // ~40ms, so the run cannot finish instantly.
        assert!(report.elapsed >= Duration::from_millis(30), "{report:?}");
        front.stop();
        front.wait().expect("clean stop");
    }

    #[test]
    fn connect_failure_is_a_typed_error() {
        let options = LoadgenOptions {
            addr: "127.0.0.1:1".to_string(),
            clients: 2,
            requests: 4,
            connect_timeout_secs: 0,
            ..LoadgenOptions::default()
        };
        assert!(run(&options).is_err());
    }
}
