//! End-to-end pipeline test: catalog → exposure → ELT → YET → aggregate
//! analysis → portfolio metrics, with sanity checks on every stage and on
//! the economic consistency of the outputs.

use std::sync::Arc;

use catrisk::catmodel::generator::ExposureConfig;
use catrisk::catmodel::runner::{CatModel, CatModelConfig};
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::peril::Region;
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::treaty::Treaty;
use catrisk::lookup::LookupKind;
use catrisk::metrics::ep::ExceedanceCurve;
use catrisk::metrics::var::{tvar, var};
use catrisk::portfolio::contract::{Contract, ContractId};
use catrisk::portfolio::portfolio::{Portfolio, PortfolioAnalysis};
use catrisk::portfolio::pricing::{price_ylt, PricingConfig};
use catrisk::prelude::RngFactory;

struct Pipeline {
    elts: Vec<catrisk::catmodel::elt::EventLossTable>,
    yet: Arc<catrisk::eventgen::yet::YearEventTable>,
}

fn build_pipeline(trials: usize) -> Pipeline {
    let factory = RngFactory::new(20_120_101);
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 10_000,
            annual_event_budget: 600.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .expect("catalog");
    assert_eq!(catalog.len(), 10_000);
    assert!((catalog.total_annual_rate() - 600.0).abs() < 1e-6);

    let model = CatModel::new(CatModelConfig::default()).expect("model");
    let regions = [
        Region::NorthAmericaEast,
        Region::NorthAmericaWest,
        Region::Europe,
    ];
    let elts: Vec<_> = regions
        .iter()
        .enumerate()
        .map(|(i, region)| {
            let exposure = ExposureConfig::regional(format!("book-{i}"), *region, 800)
                .generate(&factory)
                .expect("exposure");
            let elt = model.run(&catalog, &exposure, &factory);
            assert!(
                !elt.is_empty(),
                "every regional book should see some events"
            );
            assert!(
                elt.max_loss() <= exposure.total_tiv(),
                "losses bounded by insured value"
            );
            elt
        })
        .collect();

    let yet = YetGenerator::new(&catalog, YetConfig::with_trials(trials))
        .expect("generator")
        .generate(&factory);
    yet.validate().expect("structurally valid YET");
    assert_eq!(yet.num_trials(), trials);
    let avg = yet.avg_events_per_trial();
    assert!(
        (avg - 600.0).abs() < 30.0,
        "events per trial should match the catalog budget, got {avg}"
    );

    Pipeline {
        elts,
        yet: Arc::new(yet),
    }
}

#[test]
fn full_pipeline_produces_consistent_portfolio_metrics() {
    let pipeline = build_pipeline(4_000);
    let scale = pipeline
        .elts
        .iter()
        .map(|e| e.max_loss())
        .fold(0.0, f64::max);

    let mut portfolio = Portfolio::new("integration");
    portfolio.add(Contract::new(
        ContractId(0),
        "wind xl",
        Treaty::cat_xl(0.05 * scale, 0.5 * scale),
        vec![0],
    ));
    portfolio.add(Contract::new(
        ContractId(1),
        "quake stop loss",
        Treaty::AggregateXl {
            retention: 0.05 * scale,
            limit: 0.7 * scale,
        },
        vec![1],
    ));
    portfolio.add(Contract::new(
        ContractId(2),
        "worldwide",
        Treaty::Combined {
            occ_retention: 0.02 * scale,
            occ_limit: 0.4 * scale,
            agg_retention: 0.0,
            agg_limit: 1.2 * scale,
        },
        vec![0, 1, 2],
    ));

    let analysis = PortfolioAnalysis::build(
        portfolio,
        &pipeline.elts,
        Arc::clone(&pipeline.yet),
        LookupKind::Direct,
    )
    .expect("analysis");
    let result = analysis.run();

    // Per-contract sanity.
    for (i, contract) in result.portfolio.contracts.iter().enumerate() {
        let ylt = result.contract_ylt(i);
        assert_eq!(ylt.num_trials(), 4_000);
        let terms = contract.layer_terms();
        let cap = terms.max_annual_recovery();
        for outcome in ylt.outcomes() {
            assert!(outcome.year_loss >= 0.0);
            if cap.is_finite() {
                assert!(
                    outcome.year_loss <= cap + 1e-6,
                    "annual loss must respect the aggregate limit"
                );
            }
            if terms.occ_limit.is_finite() {
                assert!(outcome.max_occurrence_loss <= terms.occ_limit + 1e-6);
            }
        }
        // Pricing is internally consistent.
        let quote = price_ylt(ylt, cap, &PricingConfig::default());
        assert!(quote.gross_premium >= quote.expected_loss, "{quote:?}");
        // TVaR dominates VaR up to floating-point rounding (the two coincide
        // exactly when the tail is saturated at the aggregate limit).
        assert!(
            quote.tvar >= quote.var - 1e-9 * quote.var.abs().max(1.0),
            "contract {i}: {quote:?}"
        );
    }

    // Portfolio roll-up equals the sum of contracts per trial.
    let portfolio_losses = result.portfolio_losses();
    let recomputed: f64 = (0..3).map(|i| result.contract_ylt(i).mean_loss()).sum();
    let mean = portfolio_losses.iter().sum::<f64>() / portfolio_losses.len() as f64;
    assert!((mean - recomputed).abs() < 1e-6);

    // Exceedance curve / VaR / TVaR consistency on the portfolio.
    let curve = ExceedanceCurve::new(portfolio_losses.clone());
    let pml100 = curve.loss_at_return_period(100.0);
    let pml250 = curve.loss_at_return_period(250.0);
    assert!(pml250 >= pml100, "PML grows with return period");
    let v99 = var(&portfolio_losses, 0.99);
    let t99 = tvar(&portfolio_losses, 0.99);
    assert!(t99 >= v99);
    assert!(
        (v99 - pml100).abs() < 1e-6,
        "VaR99 equals the 100-year PML by construction"
    );

    // The portfolio report reflects the same numbers.
    let report = result.portfolio_report();
    assert_eq!(report.trials, 4_000);
    assert!((report.expected_loss - mean).abs() < 1e-6);
    assert!((report.aep_pml_at(100.0).unwrap() - pml100).abs() < 1e-6);
}

#[test]
fn more_trials_reduce_sampling_error_of_the_mean() {
    let small = build_pipeline(500);
    let large = build_pipeline(5_000);
    let scale = small.elts.iter().map(|e| e.max_loss()).fold(0.0, f64::max);

    let run_mean = |pipeline: &Pipeline| {
        let mut portfolio = Portfolio::new("conv");
        portfolio.add(Contract::new(
            ContractId(0),
            "all books",
            Treaty::cat_xl(0.01 * scale, scale),
            vec![0, 1, 2],
        ));
        let analysis = PortfolioAnalysis::build(
            portfolio,
            &pipeline.elts,
            Arc::clone(&pipeline.yet),
            LookupKind::Direct,
        )
        .expect("analysis");
        let result = analysis.run();
        let losses = result.contract_ylt(0).losses();
        let report = catrisk::metrics::convergence::convergence_table(&losses, 1);
        report[0]
    };

    let small_point = run_mean(&small);
    let large_point = run_mean(&large);
    assert!(small_point.mean > 0.0 && large_point.mean > 0.0);
    assert!(
        large_point.std_error < small_point.std_error,
        "standard error must shrink with more trials: {} vs {}",
        large_point.std_error,
        small_point.std_error
    );
}
