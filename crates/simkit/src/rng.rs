//! Reproducible, splittable random number streams.
//!
//! Aggregate analysis must be *deterministic given a seed* so that a
//! reinsurer can re-run a pricing analysis and obtain the same Year Loss
//! Table, and so that the parallel engines can be validated bit-for-bit
//! against the sequential engine.  To achieve this independently of the
//! number of worker threads, every logical entity (trial, event, location)
//! draws from its own *stream*, derived from a global seed and the entity
//! index by a SplitMix64 avalanche.  The streams themselves are
//! xoshiro256**-style generators implemented here from scratch; only the
//! `rand` traits are used so the samplers interoperate with the wider
//! ecosystem.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step: advances the state and returns a well-mixed 64-bit value.
///
/// This is the standard finalizer from Vigna's SplitMix64, used both as a
/// seeding routine and as a cheap hash for deriving per-entity streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a seed and a stream index into a single 64-bit value.
#[inline]
pub fn mix(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// A xoshiro256** pseudo random number generator.
///
/// Period 2^256 − 1, passes BigCrush, and is the generator recommended by
/// its authors for general 64-bit use.  Implemented locally so the crate
/// does not depend on `rand_xoshiro`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is invalid; SplitMix64 cannot produce four
        // zero outputs from any input, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in the half-open interval `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for samplers that take a logarithm of the variate.
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u = self.uniform();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening multiply rejection sampling (Lemire 2019), unbiased.
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Long-jump equivalent: derives an independent generator for a substream.
    pub fn substream(&self, index: u64) -> SimRng {
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(13)
            ^ self.s[2].rotate_left(29)
            ^ self.s[3].rotate_left(43)
            ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        SimRng { s }
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::new(state)
    }
}

/// Factory producing independent, reproducible random streams.
///
/// A `RngFactory` is cheap to copy and thread-safe by value: each call to
/// [`RngFactory::stream`] derives a generator purely from `(seed, index)`,
/// so worker threads can create the stream for "their" trial without any
/// shared mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory with the given master seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Master seed this factory was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the generator for stream `index`.
    ///
    /// Streams with different indices are statistically independent; the
    /// same `(seed, index)` pair always produces the same sequence.
    pub fn stream(&self, index: u64) -> SimRng {
        SimRng::new(mix(self.seed, index))
    }

    /// Returns a generator for a two-level entity such as
    /// (trial, event-within-trial) or (peril, region).
    pub fn stream2(&self, major: u64, minor: u64) -> SimRng {
        SimRng::new(mix(mix(self.seed, major), minor ^ 0x5851_F42D_4C95_7F2D))
    }

    /// Derives a new factory for a named sub-domain of the simulation,
    /// e.g. one factory for the event catalog and one for the exposures.
    pub fn derive(&self, label: &str) -> RngFactory {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        RngFactory {
            seed: mix(self.seed, h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values produced by the canonical SplitMix64 from seed 0.
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        assert_eq!(s, 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(2));
    }

    #[test]
    fn deterministic_streams() {
        let f = RngFactory::new(7);
        let xs: Vec<u64> = (0..4).map(|_| f.stream(3).next_u64()).collect();
        assert!(xs.iter().all(|&x| x == xs[0]));
        assert_ne!(f.stream(3).next_u64(), f.stream(4).next_u64());
    }

    #[test]
    fn derive_changes_streams() {
        let f = RngFactory::new(7);
        let a = f.derive("catalog").stream(0).next_u64();
        let b = f.derive("exposure").stream(0).next_u64();
        assert_ne!(a, b);
        assert_eq!(a, f.derive("catalog").stream(0).next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::new(123);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = SimRng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_bound() {
        let mut rng = SimRng::new(5);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!((f64::from(c) - expected).abs() < expected * 0.1);
        }
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = SimRng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            saw_lo |= v == 10;
            saw_hi |= v == 13;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SimRng::new(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn substream_independent() {
        let base = SimRng::new(44);
        let mut a = base.substream(0);
        let mut b = base.substream(1);
        let overlap = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn seedable_rng_impl() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::new(9);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SimRng::from_seed(9u64.to_le_bytes());
        assert_eq!(SimRng::new(9).next_u64(), c.next_u64());
    }
}
