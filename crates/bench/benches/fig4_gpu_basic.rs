//! Fig. 4 — the basic GPU kernel: simulated Tesla C2075 execution time vs
//! threads per CUDA block.
//!
//! The measured quantity is the *simulated* device time produced by the
//! `catrisk-gpusim` cost model (reported through Criterion's `iter_custom`),
//! not the wall-clock time of running the simulation on the host.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_gpusim::executor::Executor;
use catrisk_gpusim::kernel::LaunchConfig;
use catrisk_gpusim::kernels::{run_gpu_analysis, total_simulated_seconds, GpuVariant};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 50_000,
        trials: 1_000,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 5_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    }
}

fn fig4_threads_per_block(c: &mut Criterion) {
    let input = build_input(&workload());
    let executor = Executor::tesla_c2075();
    let mut group = c.benchmark_group("fig4_gpu_basic_threads_per_block");
    group.sample_size(10);
    for tpb in [128u32, 192, 256, 320, 384, 512, 640] {
        group.bench_with_input(BenchmarkId::from_parameter(tpb), &tpb, |b, &tpb| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (_, launches) = run_gpu_analysis(
                        &executor,
                        &input,
                        GpuVariant::Basic,
                        LaunchConfig::with_block_size(tpb),
                    )
                    .expect("launch");
                    total += Duration::from_secs_f64(total_simulated_seconds(&launches));
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = fig4;
    // The simulated-GPU measurements are deterministic (zero variance), which
    // criterion's plotting backend cannot density-estimate; disable plots.
    config = Criterion::default().without_plots();
    targets = fig4_threads_per_block
}
criterion_main!(fig4);
