//! Property-based tests of the core invariants, run with proptest.
//!
//! These cover the arithmetic heart of the engine (term application and the
//! cumulative-difference formulation), the interchangeable lookup
//! structures, the statistics the metrics are built on, and the engine
//! itself on randomly shaped inputs.

use proptest::prelude::*;

use catrisk::engine::input::AnalysisInputBuilder;
use catrisk::engine::parallel::ParallelEngine;
use catrisk::engine::sequential::SequentialEngine;
use catrisk::finterms::apply::{layer_terms_pipeline, layer_terms_reference, retention_and_limit};
use catrisk::finterms::terms::{FinancialTerms, LayerTerms};
use catrisk::lookup::{build_lookup, EventLookup, LookupKind};
use catrisk::metrics::ep::ExceedanceCurve;
use catrisk::metrics::var::{tvar, var};
use catrisk::simkit::stats::{quantile_sorted, RunningStats};

// ---------------------------------------------------------------------------
// Term application
// ---------------------------------------------------------------------------

proptest! {
    /// The excess-of-loss transform is bounded, monotone and zero below the
    /// retention.
    #[test]
    fn retention_and_limit_properties(
        x in 0.0..1.0e9f64,
        y in 0.0..1.0e9f64,
        retention in 0.0..1.0e8f64,
        limit in 0.0..1.0e8f64,
    ) {
        let fx = retention_and_limit(x, retention, limit);
        prop_assert!(fx >= 0.0);
        prop_assert!(fx <= limit);
        prop_assert!(fx <= x);
        if x <= retention {
            prop_assert_eq!(fx, 0.0);
        }
        // Monotonicity.
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(retention_and_limit(lo, retention, limit) <= retention_and_limit(hi, retention, limit));
    }

    /// The cumulative-difference formulation of the layer terms (paper lines
    /// 10–19) agrees with direct "remaining retention / remaining limit"
    /// accounting for arbitrary loss sequences and terms.
    #[test]
    fn layer_pipeline_matches_reference(
        losses in proptest::collection::vec(0.0..1.0e7f64, 0..40),
        occ_retention in 0.0..1.0e6f64,
        occ_limit in 1.0..1.0e7f64,
        agg_retention in 0.0..2.0e6f64,
        agg_limit in 1.0..2.0e7f64,
    ) {
        let mut scratch = losses.clone();
        let pipeline = layer_terms_pipeline(&mut scratch, occ_retention, occ_limit, agg_retention, agg_limit);
        let reference = layer_terms_reference(&losses, occ_retention, occ_limit, agg_retention, agg_limit);
        prop_assert!((pipeline - reference).abs() < 1e-6 * (1.0 + reference.abs()),
            "pipeline {} vs reference {}", pipeline, reference);
        // The year loss respects the aggregate limit (up to floating-point
        // rounding of the cumulative sums) and non-negativity.
        prop_assert!(pipeline >= 0.0);
        prop_assert!(pipeline <= agg_limit * (1.0 + 1e-12) + 1e-9);
    }

    /// Financial terms: output bounded by share × limit × fx and by the
    /// gross loss scaled by share × fx.
    #[test]
    fn financial_terms_bounds(
        loss in 0.0..1.0e9f64,
        deductible in 0.0..1.0e6f64,
        limit in 1.0..1.0e8f64,
        share in 0.0..1.0f64,
        fx in 0.1..10.0f64,
    ) {
        let terms = FinancialTerms::new(deductible, limit, share, fx).unwrap();
        let net = terms.apply(loss);
        prop_assert!(net >= 0.0);
        prop_assert!(net <= limit * share * fx + 1e-9);
        prop_assert!(net <= loss * share * fx + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Lookup structures
// ---------------------------------------------------------------------------

proptest! {
    /// Every lookup structure answers exactly like a BTreeMap reference for
    /// both present and absent keys.
    #[test]
    fn lookup_structures_match_reference(
        pairs in proptest::collection::vec((0u32..5_000, 0.01..1.0e6f64), 0..300),
        probes in proptest::collection::vec(0u32..6_000, 0..100),
    ) {
        let mut reference = std::collections::BTreeMap::new();
        for (event, loss) in &pairs {
            reference.insert(*event, *loss);
        }
        // Deduplicate keeping the last value, as the builders do.
        let deduped: Vec<(u32, f64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        for kind in LookupKind::ALL {
            let table = build_lookup(kind, &deduped, 5_000);
            prop_assert_eq!(table.len(), deduped.len());
            for probe in &probes {
                let expected = reference.get(probe).copied().unwrap_or(0.0);
                prop_assert_eq!(table.get(*probe), expected, "{} event {}", kind, probe);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Statistics and risk metrics
// ---------------------------------------------------------------------------

proptest! {
    /// Quantiles are monotone in the probability and bounded by min/max;
    /// TVaR dominates VaR; exceedance curves are consistent with quantiles.
    #[test]
    fn risk_metric_invariants(
        mut losses in proptest::collection::vec(0.0..1.0e6f64, 2..400),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = var(&losses, lo);
        let v_hi = var(&losses, hi);
        prop_assert!(v_lo <= v_hi + 1e-9);
        // TVaR dominates VaR up to floating-point rounding of the tail mean.
        prop_assert!(tvar(&losses, lo) >= v_lo - 1e-9 * (1.0 + v_lo.abs()));
        prop_assert!(tvar(&losses, hi) >= v_hi - 1e-9 * (1.0 + v_hi.abs()));

        losses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = losses[0];
        let max = *losses.last().unwrap();
        prop_assert!(quantile_sorted(&losses, lo) >= min - 1e-9);
        prop_assert!(quantile_sorted(&losses, hi) <= max + 1e-9);

        let curve = ExceedanceCurve::new(losses.clone());
        // Exceedance probability is a non-increasing function of the threshold.
        let p_small = curve.exceedance_probability(min);
        let p_large = curve.exceedance_probability(max);
        prop_assert!(p_small >= p_large);
        prop_assert_eq!(curve.exceedance_probability(max), 0.0);
    }

    /// Welford merging equals single-pass accumulation.
    #[test]
    fn running_stats_merge_property(
        a in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200),
        b in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200),
    ) {
        let mut whole = RunningStats::new();
        whole.extend(&a);
        whole.extend(&b);
        let mut left = RunningStats::new();
        left.extend(&a);
        let mut right = RunningStats::new();
        right.extend(&b);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
    }
}

// ---------------------------------------------------------------------------
// The engine itself on randomly shaped inputs
// ---------------------------------------------------------------------------

fn arbitrary_input() -> impl Strategy<Value = (Vec<Vec<(u32, f32)>>, Vec<Vec<(u32, f64)>>, LayerTerms)> {
    let trials = proptest::collection::vec(
        proptest::collection::vec((0u32..800, 0.0f32..365.0), 0..30),
        1..40,
    );
    let elts = proptest::collection::vec(
        proptest::collection::vec((0u32..800, 1.0..1.0e6f64), 1..120),
        1..5,
    );
    let terms = (0.0..1.0e5f64, 1.0..1.0e6f64, 0.0..2.0e5f64, 1.0..2.0e6f64)
        .prop_map(|(or_, ol, ar, al)| LayerTerms::new(or_, ol, ar, al).unwrap());
    (trials, elts, terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any randomly shaped input: the parallel engine matches the
    /// sequential engine exactly, year losses are non-negative and respect
    /// the aggregate limit, and removing the terms (unlimited layer) never
    /// decreases the loss.
    #[test]
    fn engine_invariants_on_random_inputs((trials, elts, terms) in arbitrary_input()) {
        let build = |layer_terms: LayerTerms| {
            let mut builder = AnalysisInputBuilder::new();
            builder.set_yet_from_trials(800, trials.clone());
            let indices: Vec<usize> = elts
                .iter()
                .map(|pairs| builder.add_elt(pairs, FinancialTerms::pass_through()))
                .collect();
            builder.add_layer_over(&indices, layer_terms);
            builder.build().unwrap()
        };

        let input = build(terms);
        let sequential = SequentialEngine::new().run(&input);
        let parallel = ParallelEngine::with_threads(3).run(&input);
        prop_assert_eq!(sequential.max_abs_difference(&parallel), 0.0);

        let unlimited = SequentialEngine::new().run(&build(LayerTerms::unlimited()));
        for (capped, gross) in sequential.layer(0).outcomes().iter().zip(unlimited.layer(0).outcomes()) {
            prop_assert!(capped.year_loss >= 0.0);
            prop_assert!(capped.year_loss <= terms.agg_limit * (1.0 + 1e-12) + 1e-9);
            prop_assert!(capped.year_loss <= gross.year_loss * (1.0 + 1e-12) + 1e-9,
                "applying terms can only reduce the loss");
            prop_assert!(capped.max_occurrence_loss <= terms.occ_limit * (1.0 + 1e-12) + 1e-9);
        }
    }
}
