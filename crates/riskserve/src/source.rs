//! The serving data plane: how the batch scheduler sees its storage.
//!
//! A [`SourceProvider`] hands every batch a *consistent snapshot* of the
//! data as a [`SegmentSource`] plus the generation stamps the result
//! cache keys on.  Two providers exist:
//!
//! * any `Arc<S: SegmentSource>` — the static single-store form (an
//!   in-memory `ResultStore`, an immutable `StoreReader`): one shard,
//!   generation pinned at zero, refresh a no-op;
//! * [`StoreCatalog`](crate::catalog::StoreCatalog) — N persistent
//!   stores served as one `ShardedSource` union, refreshable while
//!   ingest writers keep committing.
//!
//! The server is generic over this trait, so the queue / batch-window /
//! fused-scan scheduler is written once and re-proven once.

use std::sync::Arc;

use catrisk_riskquery::SegmentSource;

/// Storage behind a [`Server`](crate::server::Server): snapshots,
/// generations, refresh.
pub trait SourceProvider: Send + Sync + 'static {
    /// Trials every segment holds — fixed for the provider's lifetime
    /// (refreshes add segments, never trials), so the admission path can
    /// validate queries without taking any snapshot lock.
    fn num_trials(&self) -> usize;

    /// Total committed segments currently visible (diagnostics).
    fn num_segments(&self) -> usize;

    /// Picks up newly committed data, if the backing storage supports
    /// it.  Returns the indices of the shards whose visible state
    /// advanced.  The default is the immutable no-op.
    fn refresh(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Runs `f` over a consistent snapshot of the data.
    ///
    /// `generations` carries one monotonic stamp per shard, taken under
    /// the same snapshot as the source: a stamp changes exactly when that
    /// shard's visible data changes, so `(query, generations)` is a sound
    /// result-cache key — see
    /// the server's generation-keyed result cache.
    fn with_source<R>(&self, f: impl FnOnce(&dyn SegmentSource, &[u64]) -> R) -> R;
}

/// The static single-store provider: one immutable shard at generation
/// zero.
impl<S: SegmentSource + Send + Sync + 'static> SourceProvider for Arc<S> {
    fn num_trials(&self) -> usize {
        SegmentSource::num_trials(&**self)
    }

    fn num_segments(&self) -> usize {
        SegmentSource::num_segments(&**self)
    }

    fn with_source<R>(&self, f: impl FnOnce(&dyn SegmentSource, &[u64]) -> R) -> R {
        f(&**self, &[0])
    }
}
