//! Routing one query scan across many stores: the segment-union shard
//! view.
//!
//! A serving fleet does not hold its whole book in one store file:
//! portfolios are ingested into separate stores (per book, per region,
//! per ingest pipeline), and some of those stores are still being
//! appended to while analysts query.  [`ShardedSource`] presents N
//! independent [`SegmentSource`]s — *shards* — as one logical store whose
//! segment axis is their concatenation, so the existing
//! [`plan`](crate::plan), [`exec`](crate::exec) and
//! [`QuerySession`](crate::session::QuerySession) pipeline runs over a
//! whole catalog unchanged.
//!
//! ## Remapping
//!
//! Each shard carries its own dictionaries, so the same peril can sit
//! behind different codes in different shards.  Construction builds
//! *merged* dictionaries and remaps every shard's per-segment code
//! vectors into them (O(total segments), no loss data touched); global
//! segment index `g` remaps through a cumulative offset table to shard
//! `j`'s local segment — and thence to the shard-local column offset its
//! loss slices live at — so scan-time access stays zero-copy borrowing
//! from the owning shard.
//!
//! ## Exactness
//!
//! Results are **bit-identical** to a single store holding every shard's
//! segments ingested in shard order: the fused scan accumulates segments
//! in global segment order within each trial block — exactly the order a
//! concatenated store would — and the per-block partial aggregates merge
//! by the same exact concatenation monoid.  The workspace's
//! `tests/catalog_equivalence.rs` proves this over random shard splits.

use std::sync::Arc;

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;

use crate::dict::Dictionary;
use crate::dims::{LineOfBusiness, SegmentMeta};
use crate::store::SegmentSource;
use crate::{QueryError, Result};

/// The shard-independent half of a union view: merged dictionaries,
/// remapped per-segment codes, and the global segment offsets.
///
/// Building it is the only O(total segments) step of
/// [`ShardedSource::new`], so a serving layer that snapshots the same
/// shards batch after batch memoizes it (behind an `Arc`, keyed on the
/// shards' generation stamps) and re-attaches it to fresh borrows with
/// [`ShardedSource::with_schema`].
#[derive(Debug)]
pub struct MergedSchema {
    /// `seg_starts[j]` is the global index of shard `j`'s first segment;
    /// one extra trailing entry holds the total.
    seg_starts: Vec<usize>,
    num_trials: usize,
    layer_dict: Dictionary<LayerId>,
    peril_dict: Dictionary<Peril>,
    region_dict: Dictionary<Region>,
    lob_dict: Dictionary<LineOfBusiness>,
    /// Per-segment codes remapped into the merged dictionaries, global
    /// segment order, dimension order layer / peril / region / lob.
    codes: [Vec<u32>; 4],
}

/// N shards presented as one [`SegmentSource`]: the union of their
/// segments over a common trial axis.
///
/// Borrowed shards may be any mix of sources behind `S = dyn
/// SegmentSource` (an in-memory [`ResultStore`](crate::store::ResultStore)
/// next to persistent readers).  Shards with zero segments are valid —
/// a store that is still being ingested contributes nothing until its
/// first commit becomes visible.
pub struct ShardedSource<'a, S: SegmentSource + ?Sized> {
    shards: Vec<&'a S>,
    schema: Arc<MergedSchema>,
}

impl<S: SegmentSource + ?Sized> std::fmt::Debug for ShardedSource<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSource")
            .field("shards", &self.shards.len())
            .field("segments", &self.num_segments())
            .field("trials", &self.schema.num_trials)
            .finish()
    }
}

impl<'a, S: SegmentSource + ?Sized> ShardedSource<'a, S> {
    /// Builds the union view over `shards`, validating that every shard
    /// holds the same number of trials (segments of different trial
    /// counts cannot share one scan) and merging the dictionaries.
    pub fn new(shards: Vec<&'a S>) -> Result<Self> {
        let Some(first) = shards.first() else {
            return Err(QueryError::Store(
                "a sharded source needs at least one shard".to_string(),
            ));
        };
        let num_trials = first.num_trials();
        let mut schema = MergedSchema {
            seg_starts: vec![0],
            num_trials,
            layer_dict: Dictionary::new(),
            peril_dict: Dictionary::new(),
            region_dict: Dictionary::new(),
            lob_dict: Dictionary::new(),
            codes: Default::default(),
        };
        for (index, shard) in shards.iter().enumerate() {
            if shard.num_trials() != num_trials {
                return Err(QueryError::Store(format!(
                    "shard {index} holds {}-trial segments but shard 0 holds {num_trials}-trial \
                     segments",
                    shard.num_trials()
                )));
            }
            schema.absorb_shard(*shard);
        }
        Ok(ShardedSource {
            shards,
            schema: Arc::new(schema),
        })
    }

    /// Re-attaches a previously built schema to fresh shard borrows,
    /// skipping the O(total segments) dictionary merge.
    ///
    /// Only the *shape* is validated (shard count, per-shard segment
    /// counts, trial count); the caller must guarantee the schema was
    /// built from these same shards in their current state — in a
    /// serving layer that means keying the memoized schema on the
    /// shards' generation stamps, so any visible change rebuilds it.
    pub fn with_schema(shards: Vec<&'a S>, schema: Arc<MergedSchema>) -> Result<Self> {
        if shards.len() + 1 != schema.seg_starts.len() {
            return Err(QueryError::Store(format!(
                "schema was built from {} shards, got {}",
                schema.seg_starts.len() - 1,
                shards.len()
            )));
        }
        for (index, (shard, window)) in shards.iter().zip(schema.seg_starts.windows(2)).enumerate()
        {
            if shard.num_trials() != schema.num_trials {
                return Err(QueryError::Store(format!(
                    "shard {index} holds {}-trial segments but the schema holds {}-trial \
                     segments",
                    shard.num_trials(),
                    schema.num_trials
                )));
            }
            if shard.num_segments() != window[1] - window[0] {
                return Err(QueryError::Store(format!(
                    "shard {index} holds {} segments but the schema mapped {}",
                    shard.num_segments(),
                    window[1] - window[0]
                )));
            }
        }
        Ok(ShardedSource { shards, schema })
    }

    /// The merged schema, shareable across snapshots of the same shards.
    pub fn schema(&self) -> &Arc<MergedSchema> {
        &self.schema
    }
}

impl MergedSchema {
    /// Merges one shard's dictionaries and appends its remapped codes.
    fn absorb_shard<S: SegmentSource + ?Sized>(&mut self, shard: &S) {
        // Per-dimension remap tables: shard-local code -> merged code.
        // O(dictionary entries) to build, O(1) per segment to apply.
        let layer_map: Vec<u32> = shard
            .layer_dict()
            .values()
            .iter()
            .map(|&v| self.layer_dict.intern(v))
            .collect();
        let peril_map: Vec<u32> = shard
            .peril_dict()
            .values()
            .iter()
            .map(|&v| self.peril_dict.intern(v))
            .collect();
        let region_map: Vec<u32> = shard
            .region_dict()
            .values()
            .iter()
            .map(|&v| self.region_dict.intern(v))
            .collect();
        let lob_map: Vec<u32> = shard
            .lob_dict()
            .values()
            .iter()
            .map(|&v| self.lob_dict.intern(v))
            .collect();
        for (d, (codes, map)) in [
            (shard.layer_codes(), &layer_map),
            (shard.peril_codes(), &peril_map),
            (shard.region_codes(), &region_map),
            (shard.lob_codes(), &lob_map),
        ]
        .into_iter()
        .enumerate()
        {
            self.codes[d].extend(codes.iter().map(|&c| map[c as usize]));
        }
        self.seg_starts
            .push(self.seg_starts.last().unwrap() + shard.num_segments());
    }

    /// The global segment range `[lo, hi)` each shard contributes, in
    /// shard order — the layout a segment-axis partial cache gates its
    /// shard-alignment check on
    /// ([`plan_is_shard_aligned`](crate::partial::plan_is_shard_aligned)).
    pub fn segment_ranges(&self) -> Vec<(usize, usize)> {
        self.seg_starts
            .windows(2)
            .map(|window| (window[0], window[1]))
            .collect()
    }
}

impl<'a, S: SegmentSource + ?Sized> ShardedSource<'a, S> {
    /// Number of shards in the union.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards in union order.
    pub fn shards(&self) -> &[&'a S] {
        &self.shards
    }

    /// Maps a global segment index to `(shard index, shard-local segment
    /// index)`.
    ///
    /// # Panics
    /// If `segment` is out of bounds, like the slice accessors.
    pub fn locate(&self, segment: usize) -> (usize, usize) {
        assert!(
            segment < self.num_segments(),
            "segment {segment} out of bounds ({} segments)",
            self.num_segments()
        );
        let starts = &self.schema.seg_starts;
        let shard = starts.partition_point(|&start| start <= segment) - 1;
        (shard, segment - starts[shard])
    }

    /// The dimension tags of one global segment, decoded through the
    /// merged dictionaries.
    pub fn meta(&self, segment: usize) -> SegmentMeta {
        let schema = &self.schema;
        SegmentMeta::new(
            *schema.layer_dict.value(schema.codes[0][segment]),
            *schema.peril_dict.value(schema.codes[1][segment]),
            *schema.region_dict.value(schema.codes[2][segment]),
            *schema.lob_dict.value(schema.codes[3][segment]),
        )
    }
}

impl<S: SegmentSource + ?Sized> SegmentSource for ShardedSource<'_, S> {
    fn num_trials(&self) -> usize {
        self.schema.num_trials
    }

    fn num_segments(&self) -> usize {
        *self.schema.seg_starts.last().unwrap()
    }

    fn year_losses(&self, segment: usize) -> &[f64] {
        let (shard, local) = self.locate(segment);
        self.shards[shard].year_losses(local)
    }

    fn max_occ_losses(&self, segment: usize) -> &[f64] {
        let (shard, local) = self.locate(segment);
        self.shards[shard].max_occ_losses(local)
    }

    fn layer_codes(&self) -> &[u32] {
        &self.schema.codes[0]
    }

    fn peril_codes(&self) -> &[u32] {
        &self.schema.codes[1]
    }

    fn region_codes(&self) -> &[u32] {
        &self.schema.codes[2]
    }

    fn lob_codes(&self) -> &[u32] {
        &self.schema.codes[3]
    }

    fn layer_dict(&self) -> &Dictionary<LayerId> {
        &self.schema.layer_dict
    }

    fn peril_dict(&self) -> &Dictionary<Peril> {
        &self.schema.peril_dict
    }

    fn region_dict(&self) -> &Dictionary<Region> {
        &self.schema.region_dict
    }

    fn lob_dict(&self) -> &Dictionary<LineOfBusiness> {
        &self.schema.lob_dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::{Aggregate, QueryBuilder};
    use crate::session::QuerySession;
    use crate::store::ResultStore;
    use crate::Dimension;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};

    fn outcome(year: f64) -> TrialOutcome {
        TrialOutcome {
            year_loss: year,
            max_occurrence_loss: year * 0.5,
            nonzero_events: 0,
        }
    }

    fn seg(store: &mut ResultStore, layer: u32, peril: Peril, region: Region, losses: &[f64]) {
        let outcomes = losses.iter().map(|&l| outcome(l)).collect();
        store
            .ingest(
                &YearLossTable::new(LayerId(layer), outcomes),
                SegmentMeta::new(LayerId(layer), peril, region, LineOfBusiness::Property),
            )
            .unwrap();
    }

    /// Two shards whose dictionaries intern the shared dimension values in
    /// *different* orders, so the remap tables are actually exercised.
    fn split_shards() -> (ResultStore, ResultStore, ResultStore) {
        let mut a = ResultStore::new(3);
        seg(
            &mut a,
            0,
            Peril::Hurricane,
            Region::Europe,
            &[1.0, 0.0, 4.0],
        );
        seg(&mut a, 1, Peril::Flood, Region::Japan, &[2.0, 5.0, 0.0]);
        let mut b = ResultStore::new(3);
        seg(&mut b, 2, Peril::Flood, Region::Europe, &[0.0, 1.0, 1.0]);
        seg(&mut b, 3, Peril::Hurricane, Region::Japan, &[3.0, 0.0, 2.0]);
        let mut whole = ResultStore::new(3);
        seg(
            &mut whole,
            0,
            Peril::Hurricane,
            Region::Europe,
            &[1.0, 0.0, 4.0],
        );
        seg(&mut whole, 1, Peril::Flood, Region::Japan, &[2.0, 5.0, 0.0]);
        seg(
            &mut whole,
            2,
            Peril::Flood,
            Region::Europe,
            &[0.0, 1.0, 1.0],
        );
        seg(
            &mut whole,
            3,
            Peril::Hurricane,
            Region::Japan,
            &[3.0, 0.0, 2.0],
        );
        (a, b, whole)
    }

    #[test]
    fn union_layout_and_remapping() {
        let (a, b, _) = split_shards();
        let sharded = ShardedSource::new(vec![&a, &b]).unwrap();
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.num_segments(), 4);
        assert_eq!(SegmentSource::num_trials(&sharded), 3);
        assert_eq!(sharded.locate(0), (0, 0));
        assert_eq!(sharded.locate(1), (0, 1));
        assert_eq!(sharded.locate(2), (1, 0));
        assert_eq!(sharded.locate(3), (1, 1));
        // Global segment 3 is shard B's second segment.
        assert_eq!(sharded.year_losses(3), &[3.0, 0.0, 2.0]);
        // Shard B interned Flood before Hurricane; the merged dictionary
        // keeps shard A's order, so B's codes were remapped.
        assert_eq!(sharded.peril_codes(), &[0, 1, 1, 0]);
        assert_eq!(*sharded.peril_dict().value(0), Peril::Hurricane);
        assert_eq!(sharded.meta(2).peril, Peril::Flood);
        assert_eq!(sharded.meta(2).region, Region::Europe);
        assert_eq!(sharded.shards().len(), 2);
        assert!(format!("{sharded:?}").contains("ShardedSource"));
    }

    #[test]
    fn sharded_results_match_concatenated_store() {
        let (a, b, whole) = split_shards();
        let sharded = ShardedSource::new(vec![&a, &b]).unwrap();
        let queries = vec![
            QueryBuilder::new()
                .group_by(Dimension::Peril)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.9 })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .with_perils([Peril::Hurricane])
                .group_by(Dimension::Region)
                .aggregate(Aggregate::MaxLoss)
                .build()
                .unwrap(),
            QueryBuilder::new()
                .trials(1..3)
                .loss_at_least(1.0)
                .aggregate(Aggregate::Mean)
                .build()
                .unwrap(),
        ];
        for query in &queries {
            assert_eq!(
                execute(&sharded, query).unwrap(),
                execute(&whole, query).unwrap(),
                "sharded execution must be bit-identical to the concatenated store"
            );
        }
        assert_eq!(
            QuerySession::new(&sharded).run(&queries).unwrap(),
            QuerySession::new(&whole).run(&queries).unwrap()
        );
    }

    #[test]
    fn single_shard_union_is_transparent() {
        let (a, _, _) = split_shards();
        let sharded = ShardedSource::new(vec![&a]).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&sharded, &query).unwrap(),
            execute(&a, &query).unwrap()
        );
    }

    #[test]
    fn empty_shards_are_transparent() {
        let (a, b, whole) = split_shards();
        let empty = ResultStore::new(3);
        let sharded = ShardedSource::new(vec![&empty, &a, &empty, &b]).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&sharded, &query).unwrap(),
            execute(&whole, &query).unwrap()
        );
    }

    #[test]
    fn mismatched_trial_counts_and_empty_unions_are_rejected() {
        let (a, _, _) = split_shards();
        let other = ResultStore::new(7);
        assert!(matches!(
            ShardedSource::new(vec![&a, &other]),
            Err(QueryError::Store(_))
        ));
        assert!(matches!(
            ShardedSource::<ResultStore>::new(vec![]),
            Err(QueryError::Store(_))
        ));
    }

    #[test]
    fn reattached_schema_matches_a_fresh_build_and_validates_shape() {
        let (a, b, whole) = split_shards();
        let schema = Arc::clone(ShardedSource::new(vec![&a, &b]).unwrap().schema());
        let reused = ShardedSource::with_schema(vec![&a, &b], Arc::clone(&schema)).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();
        assert_eq!(
            execute(&reused, &query).unwrap(),
            execute(&whole, &query).unwrap()
        );
        // Shape mismatches are rejected: wrong shard count, wrong segment
        // count, wrong trial count.
        assert!(ShardedSource::with_schema(vec![&a], Arc::clone(&schema)).is_err());
        assert!(ShardedSource::with_schema(vec![&b, &a], Arc::clone(&schema)).is_ok());
        let mut grown = ResultStore::new(3);
        seg(&mut grown, 9, Peril::Tornado, Region::Europe, &[0.0; 3]);
        assert!(ShardedSource::with_schema(vec![&a, &grown], Arc::clone(&schema)).is_err());
        let other_trials = ResultStore::new(7);
        assert!(ShardedSource::with_schema(vec![&a, &other_trials], schema).is_err());
    }

    #[test]
    fn dynamic_shards_mix_source_types() {
        let (a, b, whole) = split_shards();
        let dyn_shards: Vec<&dyn SegmentSource> = vec![&a, &b];
        let sharded = ShardedSource::new(dyn_shards).unwrap();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&sharded, &query).unwrap(),
            execute(&whole, &query).unwrap()
        );
    }
}
