//! Marginal impact and diversification analysis.
//!
//! Because every contract is simulated against the *same* Year Event Table
//! (the paper's motivation for pre-simulated YETs — "a consistent lens
//! through which to view results"), portfolio-level metrics can be computed
//! by adding per-trial losses across contracts, and the marginal impact of a
//! candidate contract is simply the difference of tail metrics with and
//! without it.

use serde::{Deserialize, Serialize};

use catrisk_metrics::var::tvar;

/// Marginal impact of adding a candidate contract to an existing portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginalAnalysis {
    /// Confidence level of the tail metric.
    pub level: f64,
    /// Portfolio TVaR without the candidate.
    pub base_tvar: f64,
    /// Portfolio TVaR with the candidate.
    pub combined_tvar: f64,
    /// Standalone TVaR of the candidate.
    pub standalone_tvar: f64,
    /// Marginal TVaR: `combined − base`.
    pub marginal_tvar: f64,
    /// Diversification benefit: `1 − marginal / standalone` (0 when the
    /// candidate has no standalone tail risk).
    pub diversification_benefit: f64,
    /// Expected annual loss of the candidate.
    pub candidate_expected_loss: f64,
}

impl MarginalAnalysis {
    /// Computes the marginal analysis from per-trial losses.
    ///
    /// `portfolio_losses` and `candidate_losses` must be aligned trial by
    /// trial (same YET, same order).
    pub fn new(portfolio_losses: &[f64], candidate_losses: &[f64], level: f64) -> Self {
        assert_eq!(
            portfolio_losses.len(),
            candidate_losses.len(),
            "portfolio and candidate must share the same trial set"
        );
        assert!(!portfolio_losses.is_empty(), "need at least one trial");
        let combined: Vec<f64> = portfolio_losses
            .iter()
            .zip(candidate_losses)
            .map(|(a, b)| a + b)
            .collect();
        let base_tvar = tvar(portfolio_losses, level);
        let combined_tvar = tvar(&combined, level);
        let standalone_tvar = tvar(candidate_losses, level);
        let marginal_tvar = combined_tvar - base_tvar;
        let diversification_benefit = if standalone_tvar > 0.0 {
            1.0 - marginal_tvar / standalone_tvar
        } else {
            0.0
        };
        Self {
            level,
            base_tvar,
            combined_tvar,
            standalone_tvar,
            marginal_tvar,
            diversification_benefit,
            candidate_expected_loss: candidate_losses.iter().sum::<f64>()
                / candidate_losses.len() as f64,
        }
    }

    /// Premium required to pay the expected loss plus a return on the
    /// marginal capital the candidate consumes.
    pub fn marginal_capital_price(&self, cost_of_capital: f64) -> f64 {
        self.candidate_expected_loss + cost_of_capital * self.marginal_tvar.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_simkit::rng::RngFactory;

    fn correlated_losses(n: usize, seed: u64, correlation_with_base: bool) -> (Vec<f64>, Vec<f64>) {
        let factory = RngFactory::new(seed);
        let mut base = Vec::with_capacity(n);
        let mut candidate = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = factory.stream(i as u64);
            let shock = if rng.uniform() < 0.1 {
                rng.uniform() * 100.0
            } else {
                0.0
            };
            let idio = if rng.uniform() < 0.1 {
                rng.uniform() * 100.0
            } else {
                0.0
            };
            base.push(shock * 10.0);
            candidate.push(if correlation_with_base { shock } else { idio });
        }
        (base, candidate)
    }

    #[test]
    fn independent_candidate_diversifies() {
        let (base, candidate) = correlated_losses(20_000, 1, false);
        let m = MarginalAnalysis::new(&base, &candidate, 0.99);
        assert!(m.marginal_tvar < m.standalone_tvar);
        assert!(
            m.diversification_benefit > 0.3,
            "benefit {}",
            m.diversification_benefit
        );
        assert!(m.combined_tvar >= m.base_tvar);
    }

    #[test]
    fn correlated_candidate_diversifies_less() {
        let (base, correlated) = correlated_losses(20_000, 2, true);
        let (_, independent) = correlated_losses(20_000, 2, false);
        let m_corr = MarginalAnalysis::new(&base, &correlated, 0.99);
        let m_ind = MarginalAnalysis::new(&base, &independent, 0.99);
        assert!(
            m_corr.diversification_benefit < m_ind.diversification_benefit,
            "correlated {} vs independent {}",
            m_corr.diversification_benefit,
            m_ind.diversification_benefit
        );
    }

    #[test]
    fn marginal_capital_price_adds_capital_charge() {
        let (base, candidate) = correlated_losses(5_000, 3, true);
        let m = MarginalAnalysis::new(&base, &candidate, 0.99);
        let price = m.marginal_capital_price(0.08);
        assert!(price >= m.candidate_expected_loss);
        assert!((price - (m.candidate_expected_loss + 0.08 * m.marginal_tvar)).abs() < 1e-9);
    }

    #[test]
    fn zero_risk_candidate() {
        let base = vec![1.0, 2.0, 3.0, 4.0];
        let candidate = vec![0.0; 4];
        let m = MarginalAnalysis::new(&base, &candidate, 0.5);
        assert_eq!(m.marginal_tvar, 0.0);
        assert_eq!(m.diversification_benefit, 0.0);
        assert_eq!(m.candidate_expected_loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "same trial set")]
    fn mismatched_lengths_panic() {
        MarginalAnalysis::new(&[1.0, 2.0], &[1.0], 0.9);
    }
}
