//! Synthetic exposure portfolio generation.

use serde::{Deserialize, Serialize};

use catrisk_eventgen::peril::Region;
use catrisk_simkit::distributions::{Distribution, LogNormal, Uniform};
use catrisk_simkit::rng::RngFactory;
use catrisk_simkit::sampling::AliasTable;

use crate::exposure::{Construction, ExposureDatabase, Location, Occupancy};
use crate::{ModelError, Result};

/// Configuration of the synthetic exposure generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureConfig {
    /// Name of the exposure set.
    pub name: String,
    /// Number of locations to generate.
    pub num_locations: usize,
    /// Regions the exposure is written in, with relative weights.
    pub region_weights: Vec<(Region, f64)>,
    /// Coefficient of variation of the insured value within an occupancy
    /// class (log-normal severity of TIVs).
    pub tiv_cv: f64,
    /// Fraction of the TIV used as the site deductible (0 = none).
    pub site_deductible_pct: f64,
    /// Multiple of the TIV used as the site limit (∞ = none).
    pub site_limit_multiple: f64,
}

impl ExposureConfig {
    /// A regional property book: `num_locations` locations concentrated in
    /// one region.
    pub fn regional(name: impl Into<String>, region: Region, num_locations: usize) -> Self {
        Self {
            name: name.into(),
            num_locations,
            region_weights: vec![(region, 1.0)],
            tiv_cv: 1.5,
            site_deductible_pct: 0.01,
            site_limit_multiple: f64::INFINITY,
        }
    }

    /// A globally diversified book across all regions.
    pub fn global(name: impl Into<String>, num_locations: usize) -> Self {
        Self {
            name: name.into(),
            num_locations,
            region_weights: Region::ALL.iter().map(|r| (*r, 1.0)).collect(),
            tiv_cv: 1.5,
            site_deductible_pct: 0.01,
            site_limit_multiple: f64::INFINITY,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_locations == 0 {
            return Err(ModelError::InvalidConfig(
                "num_locations must be positive".into(),
            ));
        }
        if self.region_weights.is_empty()
            || self
                .region_weights
                .iter()
                .any(|(_, w)| !w.is_finite() || *w < 0.0)
            || self.region_weights.iter().map(|(_, w)| w).sum::<f64>() <= 0.0
        {
            return Err(ModelError::InvalidConfig(
                "region_weights must be non-empty, non-negative and not all zero".into(),
            ));
        }
        if !(self.tiv_cv.is_finite() && self.tiv_cv >= 0.0) {
            return Err(ModelError::InvalidConfig(
                "tiv_cv must be non-negative".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.site_deductible_pct) {
            return Err(ModelError::InvalidConfig(
                "site_deductible_pct must be in [0, 1]".into(),
            ));
        }
        if self.site_limit_multiple.is_nan() || self.site_limit_multiple <= 0.0 {
            return Err(ModelError::InvalidConfig(
                "site_limit_multiple must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Generates the exposure database.
    pub fn generate(&self, factory: &RngFactory) -> Result<ExposureDatabase> {
        self.validate()?;
        let factory = factory.derive("exposure").derive(&self.name);

        let region_table = AliasTable::new(
            &self
                .region_weights
                .iter()
                .map(|(_, w)| *w)
                .collect::<Vec<_>>(),
        )
        .map_err(|e| ModelError::InvalidConfig(e.message))?;
        let construction_table = AliasTable::new(
            &Construction::ALL
                .iter()
                .map(|c| c.portfolio_share())
                .collect::<Vec<_>>(),
        )
        .expect("static weights");
        let occupancy_table = AliasTable::new(
            &Occupancy::ALL
                .iter()
                .map(|o| o.portfolio_share())
                .collect::<Vec<_>>(),
        )
        .expect("static weights");
        let coord = Uniform::new(0.0, 1.0).expect("static");
        let year = Uniform::new(1950.0, 2012.0).expect("static");

        let mut locations = Vec::with_capacity(self.num_locations);
        for i in 0..self.num_locations {
            let mut rng = factory.stream(i as u64);
            let region = self.region_weights[region_table.sample(&mut rng)].0;
            let construction = Construction::ALL[construction_table.sample(&mut rng)];
            let occupancy = Occupancy::ALL[occupancy_table.sample(&mut rng)];
            let tiv_dist =
                LogNormal::from_mean_cv(occupancy.median_tiv(), self.tiv_cv).expect("validated cv");
            let tiv = tiv_dist.sample(&mut rng);
            locations.push(Location {
                id: i as u32,
                region,
                x: coord.sample(&mut rng),
                y: coord.sample(&mut rng),
                construction,
                occupancy,
                year_built: year.sample(&mut rng) as u16,
                tiv,
                site_deductible: tiv * self.site_deductible_pct,
                site_limit: if self.site_limit_multiple.is_infinite() {
                    f64::INFINITY
                } else {
                    tiv * self.site_limit_multiple
                },
            });
        }
        Ok(ExposureDatabase::new(self.name.clone(), locations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_book_stays_in_region() {
        let config = ExposureConfig::regional("gulf", Region::NorthAmericaEast, 2_000);
        let db = config.generate(&RngFactory::new(3)).unwrap();
        assert_eq!(db.len(), 2_000);
        assert!(db
            .locations()
            .iter()
            .all(|l| l.region == Region::NorthAmericaEast));
        assert!(db.total_tiv() > 0.0);
    }

    #[test]
    fn global_book_spreads_across_regions() {
        let config = ExposureConfig::global("world", 3_000);
        let db = config.generate(&RngFactory::new(4)).unwrap();
        let counts = db.region_counts();
        let nonzero = counts.iter().filter(|(_, c)| *c > 0).count();
        assert_eq!(
            nonzero,
            Region::ALL.len(),
            "all regions populated: {counts:?}"
        );
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let config = ExposureConfig::global("det", 500);
        let a = config.generate(&RngFactory::new(5)).unwrap();
        let b = config.generate(&RngFactory::new(5)).unwrap();
        let c = config.generate(&RngFactory::new(6)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Different names derive different streams too.
        let mut config2 = config.clone();
        config2.name = "other".into();
        let d = config2.generate(&RngFactory::new(5)).unwrap();
        assert_ne!(a.locations()[0].tiv, d.locations()[0].tiv);
    }

    #[test]
    fn site_terms_follow_configuration() {
        let mut config = ExposureConfig::regional("terms", Region::Europe, 200);
        config.site_deductible_pct = 0.05;
        config.site_limit_multiple = 0.8;
        let db = config.generate(&RngFactory::new(7)).unwrap();
        for l in db.locations() {
            assert!((l.site_deductible - 0.05 * l.tiv).abs() < 1e-9);
            assert!((l.site_limit - 0.8 * l.tiv).abs() < 1e-9);
        }
    }

    #[test]
    fn tiv_distribution_heavy_tailed() {
        let config = ExposureConfig::global("tiv", 5_000);
        let db = config.generate(&RngFactory::new(8)).unwrap();
        let tivs: Vec<f64> = db.locations().iter().map(|l| l.tiv).collect();
        let mean = tivs.iter().sum::<f64>() / tivs.len() as f64;
        let max = tivs.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 10.0 * mean,
            "heavy tail expected: max {max}, mean {mean}"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = ExposureConfig::global("v", 100);
        assert!(ExposureConfig {
            num_locations: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ExposureConfig {
            region_weights: vec![],
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ExposureConfig {
            region_weights: vec![(Region::Japan, -1.0)],
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ExposureConfig {
            tiv_cv: f64::NAN,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ExposureConfig {
            site_deductible_pct: 1.5,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ExposureConfig {
            site_limit_multiple: 0.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn year_built_in_expected_range() {
        let config = ExposureConfig::global("years", 1_000);
        let db = config.generate(&RngFactory::new(9)).unwrap();
        assert!(db
            .locations()
            .iter()
            .all(|l| (1950..2012).contains(&l.year_built)));
    }
}
