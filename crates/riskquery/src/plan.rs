//! Query planning: filter pushdown over dictionary codes and group-key
//! assignment, before any loss data is touched.

use std::collections::HashMap;

use crate::dims::Dimension;
use crate::query::{Filter, LossRange, Query};
use crate::result::DimValue;
use crate::store::SegmentSource;
use crate::{QueryError, Result};

/// A per-dimension predicate resolved to dictionary codes: `None` passes
/// everything, `Some(codes)` passes the listed codes only.
///
/// Filter values that were never interned by the store simply resolve to no
/// code: the predicate then (correctly) matches no segment on that value.
#[derive(Debug, Clone)]
struct CodePredicate(Option<Vec<u32>>);

impl CodePredicate {
    fn passes(&self, code: u32) -> bool {
        match &self.0 {
            None => true,
            Some(codes) => codes.contains(&code),
        }
    }
}

/// The resolved execution plan of one query against one store: the
/// surviving segments (filter pushdown), their group assignment, and the
/// trial window.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Half-open trial window `[start, end)` actually scanned.
    pub trial_start: usize,
    /// End of the trial window.
    pub trial_end: usize,
    /// Per-trial year-loss range each group is conditioned on, applied
    /// inside the scan.
    pub loss: Option<LossRange>,
    /// Surviving segment indices in store order.
    pub segments: Vec<usize>,
    /// `groups[i]` is the group index of `segments[i]`.
    pub groups: Vec<usize>,
    /// Decoded group keys, indexed by group (ordered by first appearance in
    /// segment order, then sorted canonically by
    /// [`QueryPlan::sorted_group_order`] at finalisation).
    pub keys: Vec<Vec<DimValue>>,
}

impl QueryPlan {
    /// Checks that `query` can be planned against `store` without
    /// materialising the plan.
    ///
    /// Trial-window resolution is the only fallible step of
    /// [`QueryPlan::new`] (predicate resolution and group-key decoding
    /// are total), so this is the complete admission check — a serving
    /// front-end calls it per submit at O(1) instead of paying the
    /// O(segments) planning pass it would immediately discard.
    pub fn validate<S: SegmentSource + ?Sized>(store: &S, query: &Query) -> Result<()> {
        Self::validate_trials(store.num_trials(), query)
    }

    /// [`QueryPlan::validate`] from the trial count alone.
    ///
    /// A store's trial count is fixed for its whole lifetime (refreshes
    /// add segments, never trials), so a serving front-end can admit
    /// queries against a cached count without touching — or locking —
    /// the store itself.
    pub fn validate_trials(num_trials: usize, query: &Query) -> Result<()> {
        resolve_trial_window(num_trials, &query.filter).map(|_| ())
    }

    /// Plans `query` against `store`.
    pub fn new<S: SegmentSource + ?Sized>(store: &S, query: &Query) -> Result<QueryPlan> {
        let (trial_start, trial_end) = resolve_trials(store, &query.filter)?;
        let predicates = resolve_predicates(store, &query.filter);

        let mut segments = Vec::new();
        let mut groups = Vec::new();
        let mut keys: Vec<Vec<DimValue>> = Vec::new();
        let mut key_index: HashMap<Vec<u32>, usize> = HashMap::new();

        for segment in 0..store.num_segments() {
            let codes = [
                store.layer_codes()[segment],
                store.peril_codes()[segment],
                store.region_codes()[segment],
                store.lob_codes()[segment],
            ];
            let pass = predicates
                .iter()
                .zip(codes)
                .all(|(predicate, code)| predicate.passes(code));
            if !pass {
                continue;
            }
            let group_code: Vec<u32> = query
                .group_by
                .iter()
                .map(|dim| codes[dim_index(*dim)])
                .collect();
            let group = match key_index.get(&group_code) {
                Some(&g) => g,
                None => {
                    let g = keys.len();
                    keys.push(decode_key(store, &query.group_by, &group_code));
                    key_index.insert(group_code, g);
                    g
                }
            };
            segments.push(segment);
            groups.push(group);
        }

        Ok(QueryPlan {
            trial_start,
            trial_end,
            loss: query.filter.loss,
            segments,
            groups,
            keys,
        })
    }

    /// Number of result groups.
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// Number of trials in the scanned window.
    pub fn num_trials(&self) -> usize {
        self.trial_end - self.trial_start
    }

    /// Canonical output order of the groups: ascending by decoded key.
    /// Returns `order` such that `order[rank] = group`.
    pub fn sorted_group_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_by(|&a, &b| DimValue::compare_keys(&self.keys[a], &self.keys[b]));
        order
    }

    /// Attribution of scanning this plan's whole trial window — what a
    /// trace's `scan` span reports.
    pub fn attribution(&self) -> ScanAttribution {
        self.attribution_for_window(self.trial_start, self.trial_end)
    }

    /// Attribution of scanning this plan restricted to the global trial
    /// window `[start, end)` (the per-shard window of a trial-partial
    /// rescan).
    pub fn attribution_for_window(&self, start: usize, end: usize) -> ScanAttribution {
        let trials = end.saturating_sub(start);
        ScanAttribution {
            segments: self.segments.len(),
            trials,
            groups: self.num_groups(),
            bytes: self.segments.len() * trials * 2 * std::mem::size_of::<f64>(),
        }
    }
}

/// Numeric attribution of one scan, derived from the plan after filter
/// pushdown: how much work answering the query actually took.  These are
/// the counts a request trace attaches to its `scan` / `scan_shard` spans
/// (see `docs/OBSERVABILITY.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanAttribution {
    /// Segments surviving filter pushdown (whole-segment pruning happens
    /// before any loss data is touched, so this is the scanned count, not
    /// the store's).
    pub segments: usize,
    /// Trials in the scanned window.
    pub trials: usize,
    /// Result groups the segments were assigned to.
    pub groups: usize,
    /// Loss-column bytes decoded: two `f64` columns (year loss and max
    /// occurrence loss) per segment per trial.
    pub bytes: usize,
}

fn dim_index(dim: Dimension) -> usize {
    match dim {
        Dimension::Layer => 0,
        Dimension::Peril => 1,
        Dimension::Region => 2,
        Dimension::Lob => 3,
    }
}

fn decode_key<S: SegmentSource + ?Sized>(
    store: &S,
    dims: &[Dimension],
    codes: &[u32],
) -> Vec<DimValue> {
    dims.iter()
        .zip(codes)
        .map(|(dim, &code)| match dim {
            Dimension::Layer => DimValue::Layer(*store.layer_dict().value(code)),
            Dimension::Peril => DimValue::Peril(*store.peril_dict().value(code)),
            Dimension::Region => DimValue::Region(*store.region_dict().value(code)),
            Dimension::Lob => DimValue::Lob(*store.lob_dict().value(code)),
        })
        .collect()
}

fn resolve_trials<S: SegmentSource + ?Sized>(store: &S, filter: &Filter) -> Result<(usize, usize)> {
    resolve_trial_window(store.num_trials(), filter)
}

fn resolve_trial_window(num_trials: usize, filter: &Filter) -> Result<(usize, usize)> {
    if num_trials == 0 {
        return Err(QueryError::Store(
            "the store holds no trials; aggregates over an empty trial set are undefined"
                .to_string(),
        ));
    }
    match filter.trials {
        None => Ok((0, num_trials)),
        Some((start, end)) => {
            if start >= end {
                return Err(QueryError::InvalidQuery(format!(
                    "empty trial window {start}..{end}"
                )));
            }
            if end > num_trials {
                return Err(QueryError::InvalidQuery(format!(
                    "trial window {start}..{end} exceeds the store's {num_trials} trials"
                )));
            }
            Ok((start, end))
        }
    }
}

fn resolve_predicates<S: SegmentSource + ?Sized>(store: &S, filter: &Filter) -> [CodePredicate; 4] {
    let layer = filter.layers.as_ref().map(|layers| {
        layers
            .iter()
            .filter_map(|&id| {
                store
                    .layer_dict()
                    .code_of(&catrisk_finterms::layer::LayerId(id))
            })
            .collect()
    });
    let peril = filter.perils.as_ref().map(|ps| {
        ps.iter()
            .filter_map(|p| store.peril_dict().code_of(p))
            .collect()
    });
    let region = filter.regions.as_ref().map(|rs| {
        rs.iter()
            .filter_map(|r| store.region_dict().code_of(r))
            .collect()
    });
    let lob = filter.lobs.as_ref().map(|ls| {
        ls.iter()
            .filter_map(|l| store.lob_dict().code_of(l))
            .collect()
    });
    [
        CodePredicate(layer),
        CodePredicate(peril),
        CodePredicate(region),
        CodePredicate(lob),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::{LineOfBusiness, SegmentMeta};
    use crate::query::{Aggregate, QueryBuilder};
    use crate::store::ResultStore;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;

    fn store() -> ResultStore {
        let mut store = ResultStore::new(4);
        let outcomes = vec![
            TrialOutcome {
                year_loss: 1.0,
                max_occurrence_loss: 1.0,
                nonzero_events: 1
            };
            4
        ];
        for (layer, peril, region, lob) in [
            (
                0,
                Peril::Hurricane,
                Region::Europe,
                LineOfBusiness::Property,
            ),
            (0, Peril::Flood, Region::Europe, LineOfBusiness::Property),
            (1, Peril::Hurricane, Region::Japan, LineOfBusiness::Marine),
            (1, Peril::Earthquake, Region::Japan, LineOfBusiness::Marine),
        ] {
            store
                .ingest(
                    &YearLossTable::new(LayerId(layer), outcomes.clone()),
                    SegmentMeta::new(LayerId(layer), peril, region, lob),
                )
                .unwrap();
        }
        store
    }

    #[test]
    fn validate_agrees_with_planning() {
        let store = store();
        for (build, fine) in [
            (
                QueryBuilder::new().aggregate(Aggregate::Mean),
                true, // unconstrained
            ),
            (
                QueryBuilder::new().trials(0..4).aggregate(Aggregate::Mean),
                true, // exact window
            ),
            (
                QueryBuilder::new().trials(2..9).aggregate(Aggregate::Mean),
                false, // past the store's 4 trials
            ),
        ] {
            let query = build.build().unwrap();
            assert_eq!(QueryPlan::validate(&store, &query).is_ok(), fine);
            assert_eq!(QueryPlan::new(&store, &query).is_ok(), fine);
        }
    }

    #[test]
    fn pushdown_prunes_segments() {
        let store = store();
        let query = QueryBuilder::new()
            .with_perils([Peril::Hurricane])
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        assert_eq!(plan.segments, vec![0, 2]);
        assert_eq!(plan.num_groups(), 1, "no group-by: everything in one group");
        assert_eq!(plan.num_trials(), 4);
        // Attribution reflects pushdown: 2 surviving segments x 4 trials x
        // two f64 columns.
        let attribution = plan.attribution();
        assert_eq!(
            attribution,
            ScanAttribution {
                segments: 2,
                trials: 4,
                groups: 1,
                bytes: 2 * 4 * 16,
            }
        );
        assert_eq!(plan.attribution_for_window(1, 3).trials, 2);
        assert_eq!(plan.attribution_for_window(3, 3).bytes, 0);
    }

    #[test]
    fn grouping_assigns_stable_keys() {
        let store = store();
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        assert_eq!(plan.num_groups(), 2);
        assert_eq!(plan.groups, vec![0, 0, 1, 1]);
        let order = plan.sorted_group_order();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn unknown_filter_values_match_nothing() {
        let store = store();
        let query = QueryBuilder::new()
            .with_perils([Peril::Wildfire])
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        assert!(plan.segments.is_empty());
    }

    #[test]
    fn trial_window_is_validated() {
        let store = store();
        let query = QueryBuilder::new()
            .trials(2..9)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(matches!(
            QueryPlan::new(&store, &query),
            Err(QueryError::InvalidQuery(_))
        ));
        let query = QueryBuilder::new()
            .trials(1..3)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        assert_eq!((plan.trial_start, plan.trial_end), (1, 3));
    }

    #[test]
    fn zero_trial_store_errors_instead_of_panicking() {
        let mut store = ResultStore::new(0);
        store
            .ingest(
                &YearLossTable::new(LayerId(0), vec![]),
                SegmentMeta::new(
                    LayerId(0),
                    Peril::Hurricane,
                    Region::Europe,
                    LineOfBusiness::Property,
                ),
            )
            .unwrap();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Var { level: 0.99 })
            .build()
            .unwrap();
        assert!(matches!(
            crate::exec::execute(&store, &query),
            Err(QueryError::Store(_))
        ));
    }
}
