//! Scheduling can never change bits: scan results are bit-identical
//! across thread counts (1/2/8), scan granularities, and shim chunking
//! — the invariant that lets the self-scheduling claim loop and the
//! SIMD kernels replace the old static scalar scan without a results
//! audit.
//!
//! The per-trial-block partials merge by exact adjacent-window
//! concatenation in block order, so neither block boundaries (thread
//! count × granularity) nor claim interleaving (which executor ran
//! which block) can reach the arithmetic.  `catrisk-gpusim`'s
//! `scan_oracle` holds the kernels themselves to the same bit-for-bit
//! contract; here the whole pipeline is pinned across schedules on
//! random stores.

use proptest::prelude::*;

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::kernel;
use catrisk_riskquery::prelude::*;
use catrisk_simkit::rng::RngFactory;

/// Restores the scan-granularity and shim-chunking knobs on scope exit.
struct RestoreKnobs;

impl Drop for RestoreKnobs {
    fn drop(&mut self) {
        kernel::set_scan_chunks_per_thread(None);
        rayon::set_chunks_per_worker(None);
    }
}

fn random_store(trials: usize, segments: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("scan-determinism");
    let mut store = ResultStore::new(trials);
    for s in 0..segments {
        let mut rng = factory.stream(s as u64);
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .map(|_| {
                let year = if rng.uniform() < 0.4 {
                    rng.uniform() * 1.0e6
                } else {
                    0.0
                };
                TrialOutcome {
                    year_loss: year,
                    max_occurrence_loss: year * rng.uniform(),
                    nonzero_events: u32::from(year > 0.0),
                }
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId((s / 2) as u32),
            Peril::ALL[s % Peril::ALL.len()],
            Region::ALL[(s / 3) % Region::ALL.len()],
            LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
        );
        store
            .ingest(&YearLossTable::new(LayerId((s / 2) as u32), outcomes), meta)
            .expect("ingest");
    }
    store
}

fn query_batch(trials: usize) -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.97 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Region)
            .loss_at_least(3.0e5)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Pml {
                return_period: 50.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .trials(1..trials.max(2) - 1)
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 5,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::StdDev)
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The 1-vs-N invariant: any thread count, scan granularity and shim
    /// chunk granularity reproduces the single-threaded scan bit for
    /// bit, through both `execute` and the batched session.
    #[test]
    fn scan_is_bit_identical_across_schedules(
        trials in 8..160usize,
        segments in 1..14usize,
        seed in 0..400u64,
    ) {
        let _restore = RestoreKnobs;
        let store = random_store(trials, segments, seed);
        let queries = query_batch(trials);

        kernel::set_scan_chunks_per_thread(Some(1));
        let single = catrisk_simkit::parallel::build_pool(1);
        let expected: Vec<QueryResult> = single.install(|| {
            queries.iter().map(|q| execute(&store, q).expect("query")).collect()
        });
        let expected_batch = single
            .install(|| QuerySession::new(&store).run(&queries))
            .expect("batch");

        for threads in [2usize, 8] {
            let pool = catrisk_simkit::parallel::build_pool(threads);
            for granularity in [1usize, 3, 8] {
                kernel::set_scan_chunks_per_thread(Some(granularity));
                for chunking in [1usize, 4] {
                    rayon::set_chunks_per_worker(Some(chunking));
                    let got: Vec<QueryResult> = pool.install(|| {
                        queries.iter().map(|q| execute(&store, q).expect("query")).collect()
                    });
                    prop_assert_eq!(
                        &got, &expected,
                        "execute diverged at threads={} granularity={} chunking={}",
                        threads, granularity, chunking
                    );
                    let got_batch = pool
                        .install(|| QuerySession::new(&store).run(&queries))
                        .expect("batch");
                    prop_assert_eq!(
                        &got_batch, &expected_batch,
                        "session diverged at threads={} granularity={} chunking={}",
                        threads, granularity, chunking
                    );
                }
            }
        }
    }
}

/// The gpusim bit-identity oracle runs as part of tier-1: kernel slices
/// on raw bits, plus the pipeline sweep over thread counts ×
/// granularities × SIMD lane widths.
#[test]
fn gpusim_scan_oracle_passes() {
    let report = catrisk_gpusim::verify_scan_kernels(424242).expect("oracle must pass");
    assert!(
        report.kernel_cases > 0 && report.pipeline_cases > 0,
        "oracle must actually check cases: {report:?}"
    );
}
