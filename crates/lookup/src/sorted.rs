//! Sorted-array ELT representation with binary search lookups.

use crate::{EventId, EventLookup, LookupKind};

/// A compact `(event, loss)` table sorted by event id, searched with binary
/// search.
///
/// This is the `O(log n)`-accesses-per-lookup alternative the paper
/// discusses: memory-proportional to the number of non-zero losses, but each
/// lookup costs ~`log2(n)` dependent memory accesses, which is exactly what
/// the memory-bound aggregate analysis cannot afford.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedTable {
    events: Vec<EventId>,
    losses: Vec<f64>,
}

impl SortedTable {
    /// Builds the table from `(event, loss)` pairs (need not be sorted;
    /// duplicate event ids keep the last value).
    pub fn from_pairs(pairs: &[(EventId, f64)]) -> Self {
        let mut sorted: Vec<(EventId, f64)> = pairs.to_vec();
        sorted.sort_by_key(|(e, _)| *e);
        // Keep the last occurrence of each duplicate id.
        let mut events: Vec<EventId> = Vec::with_capacity(sorted.len());
        let mut losses: Vec<f64> = Vec::with_capacity(sorted.len());
        for (e, l) in sorted {
            if events.last() == Some(&e) {
                *losses.last_mut().expect("non-empty") = l;
            } else {
                events.push(e);
                losses.push(l);
            }
        }
        Self { events, losses }
    }

    /// The sorted event ids.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }
}

impl EventLookup for SortedTable {
    #[inline]
    fn get(&self, event: EventId) -> f64 {
        match self.events.binary_search(&event) {
            Ok(i) => self.losses[i],
            Err(_) => 0.0,
        }
    }

    fn len(&self) -> usize {
        self.events.len()
    }

    fn memory_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<EventId>()
            + self.losses.len() * std::mem::size_of::<f64>()
    }

    fn kind(&self) -> LookupKind {
        LookupKind::Sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_present_and_absent() {
        let t = SortedTable::from_pairs(&[(9, 3.0), (2, 5.0), (7, 1.5)]);
        assert_eq!(t.get(2), 5.0);
        assert_eq!(t.get(7), 1.5);
        assert_eq!(t.get(9), 3.0);
        assert_eq!(t.get(0), 0.0);
        assert_eq!(t.get(8), 0.0);
        assert_eq!(t.get(10_000), 0.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.kind(), LookupKind::Sorted);
        assert_eq!(t.events(), &[2, 7, 9]);
    }

    #[test]
    fn duplicates_keep_last_value() {
        let t = SortedTable::from_pairs(&[(5, 1.0), (5, 2.0), (1, 9.0)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(5), 2.0);
        assert_eq!(t.get(1), 9.0);
    }

    #[test]
    fn empty_table() {
        let t = SortedTable::from_pairs(&[]);
        assert!(t.is_empty());
        assert_eq!(t.get(0), 0.0);
        assert_eq!(t.memory_bytes(), 0);
    }

    #[test]
    fn memory_is_proportional_to_entries() {
        let pairs: Vec<(EventId, f64)> = (0..1000).map(|i| (i * 7, i as f64)).collect();
        let t = SortedTable::from_pairs(&pairs);
        assert_eq!(t.memory_bytes(), 1000 * (4 + 8));
    }
}
