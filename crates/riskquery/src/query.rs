//! The typed query AST and its builder.

use serde::{Deserialize, Serialize};

use catrisk_eventgen::peril::{Peril, Region};

use crate::dims::{Dimension, LineOfBusiness};
use crate::{QueryError, Result};

/// Which loss column an exceedance-style aggregate is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Basis {
    /// Aggregate (annual) losses: the year-loss column.
    Aep,
    /// Occurrence losses: the per-trial maximum-occurrence-loss column.
    Oep,
}

/// An inclusive range predicate over per-trial annual losses.
///
/// Applied *after* grouping, per trial: a trial survives for a result group
/// when the group's summed year loss in that trial lies in `[min, max]`.
/// This is the conditional-analysis primitive — "statistics of years where
/// the selection lost at least x" — and it is pushed into the scan: trials
/// are dropped block-by-block while the loss slices are hot, never
/// materialised and post-filtered.
///
/// # Total equality and hashing
///
/// `LossRange` implements [`Eq`] and [`Hash`](std::hash::Hash) even though
/// its bounds are floats, because every constructor in this crate keeps the
/// bounds **NaN-free**: [`QueryBuilder::build`] and the textual parser both
/// reject NaN bounds, and the `at_least` / `at_most` helpers only produce
/// finite or `+∞` values.  On NaN-free values `==` is a total equivalence
/// and hashing the bit patterns (with `-0.0` normalised to `0.0`, so the
/// two representations of zero that compare equal also hash equally) is
/// consistent with it.  This is what lets a serving front-end key
/// cross-client scan-spec dedup maps on [`Query::scan_spec`] without
/// collisions or misses.  Code that builds a `LossRange` by hand (the
/// fields are public) must uphold the no-NaN invariant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossRange {
    /// Smallest year loss kept (inclusive).  Losses are non-negative, so
    /// `0.0` means "no lower bound".
    pub min: f64,
    /// Largest year loss kept (inclusive).  `f64::INFINITY` means "no upper
    /// bound".
    pub max: f64,
}

impl LossRange {
    /// `[min, ∞)`.
    pub fn at_least(min: f64) -> Self {
        Self {
            min,
            max: f64::INFINITY,
        }
    }

    /// `[0, max]`.
    pub fn at_most(max: f64) -> Self {
        Self { min: 0.0, max }
    }

    /// True when `loss` lies in the range.
    #[inline]
    pub fn contains(&self, loss: f64) -> bool {
        loss >= self.min && loss <= self.max
    }
}

impl Default for LossRange {
    fn default() -> Self {
        Self {
            min: 0.0,
            max: f64::INFINITY,
        }
    }
}

// Total by the no-NaN invariant documented on the type.
impl Eq for LossRange {}

impl std::hash::Hash for LossRange {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_f64_total(self.min, state);
        hash_f64_total(self.max, state);
    }
}

/// Hashes a NaN-free float consistently with `==`: `-0.0` is normalised to
/// `0.0` (they compare equal, so they must hash equally), every other value
/// hashes its IEEE-754 bit pattern.
fn hash_f64_total<H: std::hash::Hasher>(value: f64, state: &mut H) {
    use std::hash::Hash;
    (value + 0.0).to_bits().hash(state);
}

/// Conjunctive segment filter: a segment survives when every specified
/// dimension list contains its value.  `None` means "no constraint".
///
/// The trial filter restricts the scanned trial window (half-open range),
/// which is how convergence-style queries ("the same metric over the first
/// N trials") are expressed.  The loss filter conditions each result group
/// on the trials whose summed year loss lies in a [`LossRange`].
///
/// `Filter` is [`Eq`] + [`Hash`](std::hash::Hash) — the only float-bearing
/// field is the [`LossRange`], whose totality argument (NaN-free by
/// construction) is documented on that type — so filters can key dedup
/// maps directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Filter {
    /// Perils to keep.
    pub perils: Option<Vec<Peril>>,
    /// Regions to keep.
    pub regions: Option<Vec<Region>>,
    /// Lines of business to keep.
    pub lobs: Option<Vec<LineOfBusiness>>,
    /// Layer ids to keep (raw `LayerId` values).
    pub layers: Option<Vec<u32>>,
    /// Half-open trial window `[start, end)`.
    pub trials: Option<(usize, usize)>,
    /// Per-trial year-loss range each group is conditioned on.
    pub loss: Option<LossRange>,
}

impl Filter {
    /// The unconstrained filter.
    pub fn all() -> Self {
        Self::default()
    }
}

/// An aggregate computed per result group.
///
/// Implements [`Eq`] + [`Hash`](std::hash::Hash): the float parameters
/// (confidence levels, return periods) are NaN-free by construction —
/// [`Aggregate::validate`](QueryBuilder::build) rejects NaN levels (a NaN
/// fails the `[0, 1]` range check) and non-finite return periods — so
/// bit-pattern hashing with `-0.0` normalised is consistent with `==`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Mean annual loss (expected loss under the simulation measure).
    Mean,
    /// Population standard deviation of the annual loss.
    StdDev,
    /// Largest annual loss across trials.
    MaxLoss,
    /// Fraction of trials with a non-zero annual loss.
    AttachProb,
    /// Value at Risk at the given confidence level.
    Var {
        /// Confidence level in `[0, 1]`.
        level: f64,
    },
    /// Tail Value at Risk at the given confidence level.
    Tvar {
        /// Confidence level in `[0, 1]`.
        level: f64,
    },
    /// Probable Maximum Loss at a return period, over the chosen basis.
    Pml {
        /// Return period in years (>= 1).
        return_period: f64,
        /// Loss column the PML is read from.
        basis: Basis,
    },
    /// A sampled exceedance-probability curve over the chosen basis.
    EpCurve {
        /// Loss column the curve is built from.
        basis: Basis,
        /// Number of sampled `(probability, loss)` points (>= 2).
        points: usize,
    },
}

// Total by the no-NaN invariant documented on the type.
impl Eq for Aggregate {}

impl std::hash::Hash for Aggregate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Aggregate::Mean | Aggregate::StdDev | Aggregate::MaxLoss | Aggregate::AttachProb => {}
            Aggregate::Var { level } | Aggregate::Tvar { level } => hash_f64_total(*level, state),
            Aggregate::Pml {
                return_period,
                basis,
            } => {
                hash_f64_total(*return_period, state);
                basis.hash(state);
            }
            Aggregate::EpCurve { basis, points } => {
                basis.hash(state);
                points.hash(state);
            }
        }
    }
}

impl Aggregate {
    /// Short column label used in rendered result tables.
    pub fn label(&self) -> String {
        match self {
            Aggregate::Mean => "mean".to_string(),
            Aggregate::StdDev => "stddev".to_string(),
            Aggregate::MaxLoss => "maxloss".to_string(),
            Aggregate::AttachProb => "attach".to_string(),
            Aggregate::Var { level } => format!("var({level})"),
            Aggregate::Tvar { level } => format!("tvar({level})"),
            Aggregate::Pml {
                return_period,
                basis: Basis::Aep,
            } => format!("pml({return_period})"),
            Aggregate::Pml {
                return_period,
                basis: Basis::Oep,
            } => {
                format!("opml({return_period})")
            }
            Aggregate::EpCurve {
                basis: Basis::Aep,
                points,
            } => format!("aep({points})"),
            Aggregate::EpCurve {
                basis: Basis::Oep,
                points,
            } => format!("oep({points})"),
        }
    }

    fn validate(&self) -> Result<()> {
        match self {
            Aggregate::Var { level } | Aggregate::Tvar { level }
                if !(0.0..=1.0).contains(level) =>
            {
                return Err(QueryError::InvalidQuery(format!(
                    "confidence level must be in [0, 1], got {level}"
                )));
            }
            Aggregate::Pml { return_period, .. }
                if (!return_period.is_finite() || *return_period < 1.0) =>
            {
                return Err(QueryError::InvalidQuery(format!(
                    "return period must be at least 1 year, got {return_period}"
                )));
            }
            Aggregate::EpCurve { points, .. } if *points < 2 => {
                return Err(QueryError::InvalidQuery(format!(
                    "an EP curve needs at least 2 points, got {points}"
                )));
            }
            _ => {}
        }
        Ok(())
    }
}

/// An ad-hoc aggregate risk query: filter, grouping, aggregates.
///
/// Queries are cheap to [`Clone`] (a few small vectors) and implement
/// [`Eq`] + [`Hash`](std::hash::Hash) — see [`Filter`] and [`Aggregate`]
/// for why the float-bearing parts are total — so a serving front-end can
/// move them between threads and dedup identical requests from different
/// submitters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Segment and trial filter.
    pub filter: Filter,
    /// Dimensions to group surviving segments by (empty = one total row).
    pub group_by: Vec<Dimension>,
    /// Aggregates computed per group, in output order.
    pub aggregates: Vec<Aggregate>,
}

impl Query {
    /// The scan specification — the part of the query whose evaluation cost
    /// a [`QuerySession`](crate::session::QuerySession) can share between
    /// queries.  Two queries with equal scan specs group the exact same
    /// loss vectors.
    ///
    /// The returned tuple is [`Eq`] + [`Hash`](std::hash::Hash) with the
    /// total float treatment documented on [`LossRange`], so it can be used
    /// directly as a `HashMap` key — the session and the serving front-end
    /// both key their cross-query dedup on it.
    pub fn scan_spec(&self) -> (&Filter, &[Dimension]) {
        (&self.filter, &self.group_by)
    }
}

/// Fluent builder for [`Query`].
///
/// ```
/// use catrisk_riskquery::prelude::*;
/// use catrisk_eventgen::peril::Peril;
///
/// let query = QueryBuilder::new()
///     .with_perils([Peril::Hurricane, Peril::Flood])
///     .trials(0..10_000)
///     .group_by(Dimension::Region)
///     .aggregate(Aggregate::Mean)
///     .aggregate(Aggregate::Tvar { level: 0.99 })
///     .build()
///     .unwrap();
/// assert_eq!(query.aggregates.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    filter: Filter,
    group_by: Vec<Dimension>,
    aggregates: Vec<Aggregate>,
}

impl QueryBuilder {
    /// Starts an unconstrained query with no aggregates.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keeps only segments with one of the given perils.
    pub fn with_perils(mut self, perils: impl IntoIterator<Item = Peril>) -> Self {
        self.filter.perils = Some(perils.into_iter().collect());
        self
    }

    /// Keeps only segments in one of the given regions.
    pub fn in_regions(mut self, regions: impl IntoIterator<Item = Region>) -> Self {
        self.filter.regions = Some(regions.into_iter().collect());
        self
    }

    /// Keeps only segments writing one of the given lines of business.
    pub fn for_lobs(mut self, lobs: impl IntoIterator<Item = LineOfBusiness>) -> Self {
        self.filter.lobs = Some(lobs.into_iter().collect());
        self
    }

    /// Keeps only segments belonging to one of the given layer ids.
    pub fn in_layers(mut self, layers: impl IntoIterator<Item = u32>) -> Self {
        self.filter.layers = Some(layers.into_iter().collect());
        self
    }

    /// Restricts the scan to a half-open trial window.
    pub fn trials(mut self, range: std::ops::Range<usize>) -> Self {
        self.filter.trials = Some((range.start, range.end));
        self
    }

    /// Conditions each group on trials whose summed year loss is at least
    /// `min` (inclusive).  Combines with an earlier upper bound.
    pub fn loss_at_least(mut self, min: f64) -> Self {
        let mut range = self.filter.loss.unwrap_or_default();
        range.min = min;
        self.filter.loss = Some(range);
        self
    }

    /// Conditions each group on trials whose summed year loss is at most
    /// `max` (inclusive).  Combines with an earlier lower bound.
    pub fn loss_at_most(mut self, max: f64) -> Self {
        let mut range = self.filter.loss.unwrap_or_default();
        range.max = max;
        self.filter.loss = Some(range);
        self
    }

    /// Conditions each group on trials whose summed year loss lies in
    /// `[min, max]` (both inclusive).
    pub fn loss_in(mut self, min: f64, max: f64) -> Self {
        self.filter.loss = Some(LossRange { min, max });
        self
    }

    /// Adds a group-by dimension (call order defines key order).
    pub fn group_by(mut self, dimension: Dimension) -> Self {
        self.group_by.push(dimension);
        self
    }

    /// Adds an aggregate column.
    pub fn aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregates.push(aggregate);
        self
    }

    /// Validates and produces the query.
    pub fn build(self) -> Result<Query> {
        if self.aggregates.is_empty() {
            return Err(QueryError::InvalidQuery(
                "a query needs at least one aggregate".to_string(),
            ));
        }
        for aggregate in &self.aggregates {
            aggregate.validate()?;
        }
        let mut seen = Vec::new();
        for dim in &self.group_by {
            if seen.contains(dim) {
                return Err(QueryError::InvalidQuery(format!(
                    "duplicate group-by dimension `{dim}`"
                )));
            }
            seen.push(*dim);
        }
        if let Some((start, end)) = self.filter.trials {
            if start >= end {
                return Err(QueryError::InvalidQuery(format!(
                    "empty trial window {start}..{end}"
                )));
            }
        }
        if let Some(range) = self.filter.loss {
            if range.min.is_nan() || range.max.is_nan() {
                return Err(QueryError::InvalidQuery(
                    "loss range bounds must not be NaN".to_string(),
                ));
            }
            if range.min > range.max {
                return Err(QueryError::InvalidQuery(format!(
                    "empty loss range [{}, {}]",
                    range.min, range.max
                )));
            }
        }
        for (name, list) in [
            ("peril", self.filter.perils.as_ref().map(Vec::len)),
            ("region", self.filter.regions.as_ref().map(Vec::len)),
            ("lob", self.filter.lobs.as_ref().map(Vec::len)),
            ("layer", self.filter.layers.as_ref().map(Vec::len)),
        ] {
            if list == Some(0) {
                return Err(QueryError::InvalidQuery(format!(
                    "empty `{name}` filter list matches nothing; omit the filter instead"
                )));
            }
        }
        Ok(Query {
            filter: self.filter,
            group_by: self.group_by,
            aggregates: self.aggregates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(matches!(
            QueryBuilder::new().build(),
            Err(QueryError::InvalidQuery(_))
        ));
        assert!(QueryBuilder::new()
            .aggregate(Aggregate::Var { level: 1.5 })
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .aggregate(Aggregate::Pml {
                return_period: 0.5,
                basis: Basis::Aep
            })
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 1
            })
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .group_by(Dimension::Peril)
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .trials(5..5)
            .aggregate(Aggregate::Mean)
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .loss_in(10.0, 5.0)
            .aggregate(Aggregate::Mean)
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .loss_at_least(f64::NAN)
            .aggregate(Aggregate::Mean)
            .build()
            .is_err());
        assert!(QueryBuilder::new()
            .with_perils([])
            .aggregate(Aggregate::Mean)
            .build()
            .is_err());
    }

    #[test]
    fn builder_happy_path() {
        let query = QueryBuilder::new()
            .with_perils([Peril::Hurricane])
            .in_regions([Region::Europe, Region::Japan])
            .for_lobs([LineOfBusiness::Property])
            .in_layers([0, 1])
            .trials(10..20)
            .group_by(Dimension::Peril)
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 5,
            })
            .build()
            .unwrap();
        assert_eq!(query.group_by.len(), 2);
        assert_eq!(query.filter.trials, Some((10, 20)));
        let (filter, dims) = query.scan_spec();
        assert_eq!(filter, &query.filter);
        assert_eq!(dims, &query.group_by[..]);
    }

    #[test]
    fn loss_bounds_combine_into_one_range() {
        let query = QueryBuilder::new()
            .loss_at_least(100.0)
            .loss_at_most(500.0)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            query.filter.loss,
            Some(LossRange {
                min: 100.0,
                max: 500.0
            })
        );
        let range = LossRange::at_least(2.0);
        assert!(range.contains(2.0));
        assert!(!range.contains(1.9));
        assert!(range.contains(f64::MAX));
        let range = LossRange::at_most(2.0);
        assert!(range.contains(0.0));
        assert!(!range.contains(2.1));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Aggregate::Mean.label(), "mean");
        assert_eq!(Aggregate::Var { level: 0.99 }.label(), "var(0.99)");
        assert_eq!(
            Aggregate::Pml {
                return_period: 250.0,
                basis: Basis::Oep
            }
            .label(),
            "opml(250)"
        );
        assert_eq!(
            Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 9
            }
            .label(),
            "oep(9)"
        );
    }

    fn hash_of(value: &impl std::hash::Hash) -> u64 {
        use std::hash::Hasher;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn scan_spec_hash_agrees_with_eq() {
        let build = |min: f64| {
            QueryBuilder::new()
                .with_perils([Peril::Hurricane])
                .loss_at_least(min)
                .group_by(Dimension::Region)
                .aggregate(Aggregate::Mean)
                .build()
                .unwrap()
        };
        // Equal specs (including the two representations of zero that
        // compare equal) hash equally.
        let a = build(0.0);
        let b = build(-0.0);
        assert_eq!(a.scan_spec(), b.scan_spec());
        assert_eq!(hash_of(&a.scan_spec()), hash_of(&b.scan_spec()));
        assert_eq!(hash_of(&a), hash_of(&b));
        // Different bounds produce different specs (and, for these values,
        // different hashes — bit-pattern hashing has no accidental
        // collapse).
        let c = build(1.0e6);
        assert_ne!(a.scan_spec(), c.scan_spec());
        assert_ne!(hash_of(&a.scan_spec()), hash_of(&c.scan_spec()));
        // A whole Query keys a map: same query from two "clients" dedups.
        let mut seen = std::collections::HashMap::new();
        seen.insert(a.clone(), 1);
        *seen.entry(b).or_insert(0) += 1;
        seen.insert(c, 1);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[&a], 2);
    }

    #[test]
    fn aggregate_hash_distinguishes_variants() {
        // Same float payload under different constructors must not collide
        // via discriminant-free hashing.
        assert_ne!(
            hash_of(&Aggregate::Var { level: 0.99 }),
            hash_of(&Aggregate::Tvar { level: 0.99 })
        );
        assert_eq!(
            hash_of(&Aggregate::Var { level: 0.99 }),
            hash_of(&Aggregate::Var { level: 0.99 })
        );
    }

    #[test]
    fn serde_round_trip() {
        let query = QueryBuilder::new()
            .with_perils([Peril::Flood])
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .unwrap();
        let json = serde_json::to_string(&query).unwrap();
        assert_eq!(serde_json::from_str::<Query>(&json).unwrap(), query);
    }
}
