//! Bridging the streaming engine's trial-block output into segment
//! appends.
//!
//! The streaming engine emits *trial-major* blocks (all layers × one trial
//! window), while the store's data region is *segment-major* (all trials
//! of one layer, contiguously — that is what makes a query scan stream
//! linearly through one column).  A transposition therefore has to buffer
//! one side, and the ingestor buffers the cheap side: two `f64`s per trial
//! per layer (16 bytes), versus the 24-byte `TrialOutcome`s a full
//! `AnalysisOutput` would hold — and it starts spilling the moment the
//! run finishes, segment by segment, committing in batches so readers can
//! follow an ingest in progress.

use catrisk_engine::ylt::AnalysisOutput;
use catrisk_riskquery::SegmentMeta;

use crate::writer::StoreWriter;
use crate::{Result, StoreError};

/// Accumulates streamed trial blocks and spills them into a
/// [`StoreWriter`] as complete segments.
///
/// ```no_run
/// use catrisk_riskstore::{StoreWriter, StreamIngestor};
/// # fn demo(
/// #     input: &catrisk_engine::input::AnalysisInput,
/// #     metas: &[catrisk_riskquery::SegmentMeta],
/// # ) -> catrisk_riskstore::Result<()> {
/// let mut writer = StoreWriter::create("portfolio.clm", input.num_trials())?;
/// let mut ingestor = StreamIngestor::new(input.layers().len(), input.num_trials());
/// catrisk_engine::streaming::StreamingEngine::new(8_192).run_with(input, |_, _, block| {
///     ingestor.push_block(block).expect("uniform block shape");
/// });
/// let segments = ingestor.finish(&mut writer, metas, 8)?;
/// writer.finish()?;
/// # let _ = segments;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamIngestor {
    num_trials: usize,
    year: Vec<Vec<f64>>,
    max_occ: Vec<Vec<f64>>,
}

impl StreamIngestor {
    /// An ingestor expecting `num_layers` layers over `num_trials` trials.
    pub fn new(num_layers: usize, num_trials: usize) -> Self {
        Self {
            num_trials,
            year: vec![Vec::with_capacity(num_trials); num_layers],
            max_occ: vec![Vec::with_capacity(num_trials); num_layers],
        }
    }

    /// Appends one streamed block (every layer's outcomes over one trial
    /// window, in trial order).
    pub fn push_block(&mut self, block: &AnalysisOutput) -> Result<()> {
        if block.num_layers() != self.year.len() {
            return Err(StoreError::InvalidArgument(format!(
                "streamed block has {} layers, expected {}",
                block.num_layers(),
                self.year.len()
            )));
        }
        for (layer, ylt) in block.layers().iter().enumerate() {
            for outcome in ylt.outcomes() {
                self.year[layer].push(outcome.year_loss);
                self.max_occ[layer].push(outcome.max_occurrence_loss);
            }
        }
        Ok(())
    }

    /// Trials buffered so far for the first layer (every layer advances in
    /// lock-step).
    pub fn buffered_trials(&self) -> usize {
        self.year.first().map_or(0, Vec::len)
    }

    /// Spills every buffered layer into `writer` as one segment each
    /// (`metas[i]` tags layer `i`), committing after every
    /// `commit_every` segments (0 = a single commit at the end).
    /// Returns the number of segments appended.
    pub fn finish(
        self,
        writer: &mut StoreWriter,
        metas: &[SegmentMeta],
        commit_every: usize,
    ) -> Result<usize> {
        if metas.len() != self.year.len() {
            return Err(StoreError::InvalidArgument(format!(
                "{} layers but {} segment tags",
                self.year.len(),
                metas.len()
            )));
        }
        for (layer, ((year, max_occ), meta)) in
            self.year.iter().zip(&self.max_occ).zip(metas).enumerate()
        {
            if year.len() != self.num_trials {
                return Err(StoreError::InvalidArgument(format!(
                    "layer {layer} streamed {} trials, expected {}",
                    year.len(),
                    self.num_trials
                )));
            }
            writer.append_segment(*meta, year, max_occ)?;
            if commit_every > 0 && (layer + 1) % commit_every == 0 {
                writer.commit()?;
            }
        }
        writer.commit()?;
        Ok(metas.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StoreReader;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;
    use catrisk_riskquery::{LineOfBusiness, SegmentSource};

    fn outcome(loss: f64) -> TrialOutcome {
        TrialOutcome {
            year_loss: loss,
            max_occurrence_loss: loss * 0.5,
            nonzero_events: u32::from(loss > 0.0),
        }
    }

    fn block(layer_losses: &[&[f64]]) -> AnalysisOutput {
        AnalysisOutput::new(
            layer_losses
                .iter()
                .enumerate()
                .map(|(i, losses)| {
                    YearLossTable::new(
                        LayerId(i as u32),
                        losses.iter().map(|&l| outcome(l)).collect(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn blocks_reassemble_into_segments() {
        let mut path = std::env::temp_dir();
        path.push(format!("catrisk-ingest-{}.clm", std::process::id()));

        let mut ingestor = StreamIngestor::new(2, 5);
        ingestor
            .push_block(&block(&[&[1.0, 2.0], &[10.0, 20.0]]))
            .unwrap();
        assert_eq!(ingestor.buffered_trials(), 2);
        ingestor
            .push_block(&block(&[&[3.0, 4.0, 5.0], &[30.0, 40.0, 50.0]]))
            .unwrap();
        assert!(ingestor.push_block(&block(&[&[9.0]])).is_err());

        let metas = [
            SegmentMeta::new(
                LayerId(0),
                Peril::Hurricane,
                Region::Europe,
                LineOfBusiness::Property,
            ),
            SegmentMeta::new(
                LayerId(1),
                Peril::Flood,
                Region::Japan,
                LineOfBusiness::Marine,
            ),
        ];
        let mut writer = StoreWriter::create(&path, 5).unwrap();
        assert_eq!(ingestor.finish(&mut writer, &metas, 1).unwrap(), 2);
        // One commit per segment plus the final no-op-or-real commit.
        assert!(writer.commit_seq() >= 2);
        writer.finish().unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 2);
        assert_eq!(
            SegmentSource::year_losses(&reader, 0),
            &[1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(
            SegmentSource::year_losses(&reader, 1),
            &[10.0, 20.0, 30.0, 40.0, 50.0]
        );
        assert_eq!(
            SegmentSource::max_occ_losses(&reader, 1),
            &[5.0, 10.0, 15.0, 20.0, 25.0]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finish_validates_shapes() {
        let mut path = std::env::temp_dir();
        path.push(format!("catrisk-ingest-short-{}.clm", std::process::id()));
        let ingestor = StreamIngestor::new(1, 4);
        let meta = SegmentMeta::new(
            LayerId(0),
            Peril::Hurricane,
            Region::Europe,
            LineOfBusiness::Property,
        );
        let mut writer = StoreWriter::create(&path, 4).unwrap();
        // Too few trials buffered.
        assert!(matches!(
            ingestor.finish(&mut writer, &[meta], 0),
            Err(StoreError::InvalidArgument(_))
        ));
        // Wrong tag count.
        let ingestor = StreamIngestor::new(1, 4);
        assert!(matches!(
            ingestor.finish(&mut writer, &[], 0),
            Err(StoreError::InvalidArgument(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
