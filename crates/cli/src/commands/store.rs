//! `catrisk store` — write portfolio results to a persistent columnar
//! store file and query it back without re-simulation.
//!
//! `store write` builds the synthetic world, runs the chosen engine, and
//! spills every tagged segment into a `catrisk-riskstore` file with
//! incremental commits (the streaming engine feeds the writer through
//! [`StreamIngestor`]).  `store query` reopens such a file — from this or
//! any earlier process — and answers ad-hoc queries over it.

use catrisk_riskquery::execute;
use catrisk_riskserve::{SourceProvider, StoreCatalog};
use catrisk_riskstore::{StoreOptions, StoreReader, StoreWriter, StreamIngestor};
use catrisk_simkit::timing::Stopwatch;

use super::query::{
    build_query, build_segmented_world, print_result, run_engine, unknown_engine, ENGINES,
};
use super::world::WorldConfig;
use super::Options;

/// Detailed usage of the store command, shown by `catrisk store --help`.
pub const STORE_HELP: &str = "usage: catrisk store <write|query> [options]

write   run the aggregate risk engine over a synthetic world and spill the
        tagged segments into a persistent columnar store file:
  --out PATH       store file to create or append to (required)
  --append         append to an existing store instead of creating
  --trials N       number of YET trials (default 20000)
  --locations N    locations per exposure book (default 2000)
  --events N       catalog size (default 50000)
  --seed S         master random seed (default 2012)
  --engine E       sequential | parallel | chunked | streaming (default streaming)
  --commit-every K commit after every K appended segments (default 8,
                   0 = one commit at the end)
  --page-trials N  trials per checksummed loss page (default 4096; fixed at
                   creation, cannot be changed by --append)

query   reopen a store file and answer an ad-hoc aggregate query:
  --in PATH        store file to open (required)
  --select LIST    aggregates: mean, stddev, maxloss, attach, var(l), tvar(l),
                   pml(rp), opml(rp), aep(n), oep(n)   (default \"mean,tvar(0.99)\")
  --where EXPR     filter: dimension=value|value constraints plus
                   trial=start..end and loss>=x / loss<=x / loss=[min,max]
  --group-by LIST  comma-separated: layer, peril, region, lob
  --json           print the result as JSON instead of a table

catalog inspect a multi-store catalog: per-shard segment counts, trial
        counts, commit generations and resident sizes, plus the union the
        query router would serve (`catrisk serve --store ...` takes the
        same shard list):
  --store PATH     a shard file; repeat for more shards (at least one)

examples:
  catrisk store write --out portfolio.clm --trials 50000 --engine streaming
  catrisk store write --out portfolio.clm --append --seed 2013
  catrisk store query --in portfolio.clm \\
      --select \"tvar(0.99),aep(10)\" --where \"peril=HU|FL\" --group-by region
  catrisk store catalog --store eu.clm --store na.clm";

/// Runs the store command: dispatches on the `write` / `query` action.
pub fn run(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first() else {
        println!("{STORE_HELP}");
        return Ok(());
    };
    match action.as_str() {
        "--help" | "help" => {
            println!("{STORE_HELP}");
            Ok(())
        }
        "write" => write(&Options::parse(&args[1..])?),
        "query" => query(&Options::parse(&args[1..])?),
        "catalog" => catalog(&Options::parse(&args[1..])?),
        other => Err(format!(
            "unknown store action `{other}` (expected write, query or catalog)"
        )),
    }
}

fn write(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let out = options.get("out", String::new())?;
    if out.is_empty() {
        return Err("store write needs --out PATH".to_string());
    }
    let config = WorldConfig {
        seed: options.get("seed", 2012u64)?,
        num_events: options.get("events", 50_000u32)?,
        locations: options.get("locations", 2_000usize)?,
        trials: options.get("trials", 20_000usize)?,
    };
    let engine = options.get("engine", "streaming".to_string())?;
    let commit_every = options.get("commit-every", 8usize)?;
    let page_trials = options.get("page-trials", 4096u32)?;
    let append = options.has_flag("append");
    if !ENGINES.contains(&engine.as_str()) {
        return Err(unknown_engine(&engine));
    }

    // Open (and for --append, validate against) the store file first, so a
    // bad path or an option mismatch fails before the expensive world
    // build.
    let mut writer = if append {
        StoreWriter::open_append(&out).map_err(|e| e.to_string())?
    } else {
        StoreWriter::create_with(&out, config.trials, StoreOptions { page_trials })
            .map_err(|e| e.to_string())?
    };
    if writer.num_trials() != config.trials {
        return Err(format!(
            "store `{out}` holds {}-trial segments, the requested world has {} trials",
            writer.num_trials(),
            config.trials
        ));
    }
    if append && options.has_value("page-trials") && writer.page_trials() != page_trials {
        return Err(format!(
            "store `{out}` was created with {}-trial pages; --page-trials {} cannot change \
             an existing store's page size",
            writer.page_trials(),
            page_trials
        ));
    }
    let already = writer.num_segments();

    let segmented = build_segmented_world(&config)?;

    let sw = Stopwatch::start();
    if engine == "streaming" {
        // The incremental path: streamed trial blocks feed the writer
        // through the ingestor, committing every `commit_every` segments.
        let mut ingestor =
            StreamIngestor::new(segmented.input.layers().len(), segmented.input.num_trials());
        let mut failed = None;
        catrisk_engine::streaming::StreamingEngine::new(8_192).run_with(
            &segmented.input,
            |_, _, block| {
                if failed.is_none() {
                    failed = ingestor.push_block(block).err();
                }
            },
        );
        if let Some(err) = failed {
            return Err(err.to_string());
        }
        ingestor
            .finish(&mut writer, &segmented.metas, commit_every)
            .map_err(|e| e.to_string())?;
    } else {
        let output = run_engine(&engine, &segmented)?;
        if output.num_layers() != segmented.metas.len() {
            return Err(format!(
                "{} engine layers but {} segment tags",
                output.num_layers(),
                segmented.metas.len()
            ));
        }
        for (ylt, meta) in output.layers().iter().zip(&segmented.metas) {
            writer.append_ylt(ylt, *meta).map_err(|e| e.to_string())?;
            if commit_every > 0 && writer.uncommitted_segments() >= commit_every {
                writer.commit().map_err(|e| e.to_string())?;
            }
        }
    }
    writer.commit().map_err(|e| e.to_string())?;
    let segments = writer.num_segments();
    let commits = writer.commit_seq();
    writer.finish().map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map_err(|e| e.to_string())?.len();
    eprintln!(
        "  {} engine wrote {} segments ({} new) in {} commits, {:.1} MB on disk  [{:.2}s]",
        engine,
        segments,
        segments - already,
        commits,
        bytes as f64 / 1.0e6,
        sw.elapsed_secs()
    );
    println!("{out}");
    Ok(())
}

fn query(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let input = options.get("in", String::new())?;
    if input.is_empty() {
        return Err("store query needs --in PATH".to_string());
    }
    let select = options.get("select", "mean,tvar(0.99)".to_string())?;
    let where_clause = options.get("where", String::new())?;
    let group_by = options.get("group-by", String::new())?;
    let as_json = options.has_flag("json");
    let query = build_query(&select, &where_clause, &group_by)?;

    let sw = Stopwatch::start();
    let reader = StoreReader::open(&input).map_err(|e| e.to_string())?;
    eprintln!(
        "  opened {}: {} segments x {} trials, {:.1} MB of loss columns, commit {}  [{:.4}s]",
        input,
        reader.num_segments(),
        reader.num_trials(),
        reader.memory_bytes() as f64 / 1.0e6,
        reader.commit_seq(),
        sw.elapsed_secs()
    );

    let sw = Stopwatch::start();
    let result = execute(&reader, &query).map_err(|e| e.to_string())?;
    eprintln!("  query answered in {:.4}s\n", sw.elapsed_secs());

    print_result(&result, as_json)
}

/// `store catalog`: open the shard list through the exact
/// [`StoreCatalog`] path `catrisk serve` uses (so accept/reject
/// behaviour cannot drift) and print the per-shard state plus the union
/// view the query router serves.
fn catalog(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STORE_HELP}");
        return Ok(());
    }
    let stores = options.get_all("store");
    if stores.is_empty() {
        return Err("store catalog needs at least one --store PATH".to_string());
    }

    let sw = Stopwatch::start();
    let catalog = StoreCatalog::open(&stores)
        .map_err(|e| format!("these shards cannot form one catalog: {e}"))?;
    println!("{}", catalog.describe());
    catalog.with_source(|union, generations| {
        println!(
            "union: {} shards, {} segments x {} trials (generations {generations:?}); \
             dictionaries: {} layers, {} perils, {} regions, {} lobs  [{:.4}s]",
            catalog.num_shards(),
            union.num_segments(),
            union.num_trials(),
            union.layer_dict().len(),
            union.peril_dict().len(),
            union.region_dict().len(),
            union.lob_dict().len(),
            sw.elapsed_secs()
        );
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_store(name: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-cli-store-{}-{}.clm",
            std::process::id(),
            name
        ));
        path.to_string_lossy().into_owned()
    }

    fn small_world(out: &str, extra: &[&str]) -> Vec<String> {
        let mut args = strings(&[
            "--out",
            out,
            "--trials",
            "120",
            "--locations",
            "100",
            "--events",
            "2000",
            "--seed",
            "5",
        ]);
        args.extend(strings(extra));
        args
    }

    #[test]
    fn write_then_query_round_trips() {
        let out = temp_store("roundtrip");
        // Streaming (incremental) write with frequent commits.
        run(&[
            vec!["write".to_string()],
            small_world(&out, &["--commit-every", "2", "--page-trials", "64"]),
        ]
        .concat())
        .unwrap();
        // Append a second world run to the same store.
        run(&[
            vec!["write".to_string()],
            small_world(&out, &["--append", "--seed", "7", "--engine", "parallel"]),
        ]
        .concat())
        .unwrap();
        // And query it back.
        run(&strings(&[
            "query",
            "--in",
            &out,
            "--select",
            "mean,tvar(0.9),aep(4)",
            "--where",
            "peril=HU|FL loss>=0",
            "--group-by",
            "region",
            "--json",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn catalog_inspects_shards_and_rejects_mismatches() {
        let a = temp_store("catalog-a");
        let b = temp_store("catalog-b");
        run(&[vec!["write".to_string()], small_world(&a, &[])].concat()).unwrap();
        run(&[vec!["write".to_string()], small_world(&b, &["--seed", "9"])].concat()).unwrap();
        run(&strings(&["catalog", "--store", &a, "--store", &b])).unwrap();

        // A shard with a different trial count cannot join the catalog.
        let c = temp_store("catalog-c");
        let mut mismatched = small_world(&c, &[]);
        let trials_at = mismatched.iter().position(|arg| arg == "120").unwrap();
        mismatched[trials_at] = "64".to_string();
        run(&[vec!["write".to_string()], mismatched].concat()).unwrap();
        assert!(run(&strings(&["catalog", "--store", &a, "--store", &c])).is_err());

        assert!(run(&strings(&["catalog"])).is_err(), "--store is required");
        assert!(run(&strings(&["catalog", "--store", "/nonexistent/x.clm"])).is_err());
        for path in [&a, &b, &c] {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn store_errors_are_graceful() {
        let out = temp_store("errors");
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&["write"])).is_err(), "--out is required");
        assert!(run(&strings(&["query"])).is_err(), "--in is required");
        assert!(run(&strings(&["query", "--in", "/nonexistent/x.clm"])).is_err());
        assert!(run(&[
            vec!["write".to_string()],
            small_world(&out, &["--engine", "quantum"])
        ]
        .concat())
        .is_err());
        // Appending with a mismatched trial count is rejected.
        run(&[vec!["write".to_string()], small_world(&out, &[])].concat()).unwrap();
        let mut mismatched = small_world(&out, &["--append"]);
        let trials_at = mismatched.iter().position(|a| a == "120").unwrap();
        mismatched[trials_at] = "64".to_string();
        assert!(run(&[vec!["write".to_string()], mismatched].concat()).is_err());
        // So is trying to change the page size of an existing store.
        assert!(run(&[
            vec!["write".to_string()],
            small_world(&out, &["--append", "--page-trials", "64"]),
        ]
        .concat())
        .is_err());
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn store_help_prints() {
        run(&[]).unwrap();
        run(&strings(&["--help"])).unwrap();
        run(&strings(&["write", "--help"])).unwrap();
        run(&strings(&["query", "--help"])).unwrap();
    }
}
