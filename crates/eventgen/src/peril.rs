//! Perils and regions covered by the synthetic global event catalog.

use serde::{Deserialize, Serialize};

/// Catastrophe peril classes covered by the catalog.
///
/// The paper's catalog "covers multiple perils" — hurricanes, tornadoes,
/// severe winter storms, earthquakes and floods are the examples named in
/// §I/§II.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Peril {
    /// Tropical cyclone / hurricane wind and surge.
    Hurricane,
    /// Earthquake ground shaking.
    Earthquake,
    /// Riverine and flash flood.
    Flood,
    /// Severe convective storm / tornado outbreaks.
    Tornado,
    /// Winter storm (wind, snow load, freeze).
    WinterStorm,
    /// Wildfire.
    Wildfire,
}

impl Peril {
    /// All perils, in catalog order.
    pub const ALL: [Peril; 6] = [
        Peril::Hurricane,
        Peril::Earthquake,
        Peril::Flood,
        Peril::Tornado,
        Peril::WinterStorm,
        Peril::Wildfire,
    ];

    /// Short code used in reports.
    pub fn code(&self) -> &'static str {
        match self {
            Peril::Hurricane => "HU",
            Peril::Earthquake => "EQ",
            Peril::Flood => "FL",
            Peril::Tornado => "TO",
            Peril::WinterStorm => "WS",
            Peril::Wildfire => "WF",
        }
    }

    /// Typical share of a global multi-peril catalog's annual event count
    /// attributable to this peril.  Used by the synthetic catalog generator;
    /// shares sum to 1.
    pub fn catalog_share(&self) -> f64 {
        match self {
            Peril::Hurricane => 0.10,
            Peril::Earthquake => 0.15,
            Peril::Flood => 0.25,
            Peril::Tornado => 0.30,
            Peril::WinterStorm => 0.15,
            Peril::Wildfire => 0.05,
        }
    }

    /// Over-dispersion of annual counts relative to Poisson
    /// (1.0 = Poisson; > 1 = clustered seasons).
    pub fn dispersion(&self) -> f64 {
        match self {
            Peril::Hurricane => 1.8,
            Peril::Earthquake => 1.0,
            Peril::Flood => 1.4,
            Peril::Tornado => 2.0,
            Peril::WinterStorm => 1.5,
            Peril::Wildfire => 1.6,
        }
    }
}

impl std::fmt::Display for Peril {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Broad geographic regions used by the synthetic exposure and catalog
/// generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// United States gulf and atlantic coast.
    NorthAmericaEast,
    /// United States west coast.
    NorthAmericaWest,
    /// Caribbean islands and Central America.
    Caribbean,
    /// Western and central Europe.
    Europe,
    /// Japan.
    Japan,
    /// Australia and New Zealand.
    Oceania,
}

impl Region {
    /// All regions, in catalog order.
    pub const ALL: [Region; 6] = [
        Region::NorthAmericaEast,
        Region::NorthAmericaWest,
        Region::Caribbean,
        Region::Europe,
        Region::Japan,
        Region::Oceania,
    ];

    /// Short code used in reports.
    pub fn code(&self) -> &'static str {
        match self {
            Region::NorthAmericaEast => "NAE",
            Region::NorthAmericaWest => "NAW",
            Region::Caribbean => "CAR",
            Region::Europe => "EUR",
            Region::Japan => "JPN",
            Region::Oceania => "OCE",
        }
    }

    /// Which perils are active in this region (used by the catalog and
    /// exposure generators to keep the synthetic world geographically
    /// plausible).
    pub fn active_perils(&self) -> &'static [Peril] {
        match self {
            Region::NorthAmericaEast => &[
                Peril::Hurricane,
                Peril::Tornado,
                Peril::WinterStorm,
                Peril::Flood,
            ],
            Region::NorthAmericaWest => &[Peril::Earthquake, Peril::Wildfire, Peril::Flood],
            Region::Caribbean => &[Peril::Hurricane, Peril::Earthquake, Peril::Flood],
            Region::Europe => &[Peril::WinterStorm, Peril::Flood, Peril::Earthquake],
            Region::Japan => &[Peril::Earthquake, Peril::Hurricane, Peril::Flood],
            Region::Oceania => &[
                Peril::Earthquake,
                Peril::Wildfire,
                Peril::Hurricane,
                Peril::Flood,
            ],
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peril_shares_sum_to_one() {
        let total: f64 = Peril::ALL.iter().map(|p| p.catalog_share()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peril_codes_unique() {
        let mut codes: Vec<&str> = Peril::ALL.iter().map(|p| p.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Peril::ALL.len());
        assert_eq!(Peril::Hurricane.to_string(), "HU");
    }

    #[test]
    fn dispersion_at_least_poisson() {
        for p in Peril::ALL {
            assert!(p.dispersion() >= 1.0, "{p}");
        }
    }

    #[test]
    fn every_region_has_active_perils() {
        for r in Region::ALL {
            assert!(!r.active_perils().is_empty(), "{r}");
            assert_eq!(r.code().len(), 3);
        }
        assert_eq!(Region::Japan.to_string(), "JPN");
    }

    #[test]
    fn every_peril_active_somewhere() {
        for p in Peril::ALL {
            assert!(
                Region::ALL.iter().any(|r| r.active_perils().contains(&p)),
                "{p} not active in any region"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&Peril::Earthquake).unwrap();
        assert_eq!(
            serde_json::from_str::<Peril>(&json).unwrap(),
            Peril::Earthquake
        );
        let json = serde_json::to_string(&Region::Caribbean).unwrap();
        assert_eq!(
            serde_json::from_str::<Region>(&json).unwrap(),
            Region::Caribbean
        );
    }
}
